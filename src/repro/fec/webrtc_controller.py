"""WebRTC's table-driven, application-level FEC controller.

Operates on the *aggregate* loss across all paths (the paper's
"application-level protection", §3.3) and keeps protecting at the
table rate regardless of whether the FEC is ever used.
"""

from __future__ import annotations

import math

from repro.fec.tables import webrtc_protection_factor

_LOSS_SMOOTHING = 0.3


class WebRtcFecController:
    """Static table lookup on smoothed aggregate loss."""

    def __init__(self) -> None:
        self._aggregate_loss = 0.0

    def on_loss_report(self, fraction_lost: float) -> None:
        """Feed the combined loss rate reported across all paths."""
        if not 0.0 <= fraction_lost <= 1.0:
            raise ValueError(f"fraction lost out of range: {fraction_lost}")
        self._aggregate_loss += _LOSS_SMOOTHING * (
            fraction_lost - self._aggregate_loss
        )

    @property
    def aggregate_loss(self) -> float:
        return self._aggregate_loss

    def num_fec_packets(self, num_media: int, is_keyframe: bool) -> int:
        """FEC packets to generate for a frame of ``num_media`` packets."""
        if num_media <= 0:
            return 0
        factor = webrtc_protection_factor(self._aggregate_loss, is_keyframe)
        return int(math.ceil(factor * num_media - 1e-9))
