"""Forward error correction: XOR codec and the two rate controllers.

WebRTC protects media with XOR-based FEC (ULPFEC/FlexFEC style [31]):
one FEC packet is the XOR of a group of media packets and can recover
exactly one loss within the group.  The paper contrasts WebRTC's static
loss-rate-table controller — aggressive and application-level — with
Converge's path-specific controller ``FEC_i = l_i * P_i * beta`` whose
``beta`` adapts to observed NACKs (§4.3).
"""

from repro.fec.xor import XorCodec, XorFecGroup
from repro.fec.tables import webrtc_protection_factor
from repro.fec.webrtc_controller import WebRtcFecController
from repro.fec.converge_controller import ConvergeFecController

__all__ = [
    "ConvergeFecController",
    "WebRtcFecController",
    "XorCodec",
    "XorFecGroup",
    "webrtc_protection_factor",
]
