"""WebRTC's static FEC protection table.

WebRTC's media-optimization module picks a protection factor from an
empirically derived table keyed by the measured loss rate, and doubles
it for keyframes (§3.3).  The paper measures this table to be
aggressive: ~40 extra FEC packets per 100 media packets already at 1%
loss (Fig. 12), climbing with loss.  The table below reproduces that
measured envelope.
"""

from __future__ import annotations

# (loss-rate upper bound, delta-frame protection factor).
_PROTECTION_TABLE = (
    (0.002, 0.00),
    (0.005, 0.30),
    (0.010, 0.40),
    (0.020, 0.43),
    (0.030, 0.45),
    (0.050, 0.48),
    (0.070, 0.50),
    (0.100, 0.55),
    (0.150, 0.60),
    (1.000, 0.65),
)

KEYFRAME_MULTIPLIER = 2.0


def webrtc_protection_factor(loss_rate: float, is_keyframe: bool = False) -> float:
    """Protection factor (FEC packets per media packet) from the table."""
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError(f"loss rate out of range: {loss_rate}")
    factor = _PROTECTION_TABLE[-1][1]
    for bound, value in _PROTECTION_TABLE:
        if loss_rate <= bound:
            factor = value
            break
    if is_keyframe:
        factor = min(factor * KEYFRAME_MULTIPLIER, 1.0)
    return factor
