"""Converge's path-specific, NACK-adaptive FEC controller (§4.3).

For path ``i`` carrying ``P_i`` packets with loss estimate ``l_i`` the
controller generates ``FEC_i = ceil(l_i * P_i * beta_i)`` packets.
``beta_i`` starts at 1 and is bumped whenever NACKs show the FEC was
insufficient: ``beta = 1 + NACK_i / (P_i - FEC_i)`` where ``P_i`` and
``FEC_i`` are the most recent scheduling round's counts and ``NACK_i``
the NACKs observed within the recent window — so a loss burst that
XOR groups could not cover raises protection within a round trip,
and the boost decays once NACKs stop.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

_BETA_DECAY_PER_SECOND = 0.35
_BETA_MAX = 4.0
_NACK_WINDOW = 0.5


@dataclass
class _PathFecState:
    beta: float = 1.0
    last_update: float = 0.0
    last_round_packets: int = 0
    last_round_fec: int = 0
    # Fractional FEC carried between rounds: ceil()-ing every small
    # round would floor the overhead at one packet per stream per
    # path per frame, which at 3 streams x 2 paths x 30 fps is ~1.7
    # Mbps of pure rounding error.
    fec_carry: float = 0.0
    nack_times: Deque[float] = field(default_factory=deque)


@dataclass
class ConvergeFecController:
    """Per-path FEC rate control with NACK-driven beta."""

    min_loss_for_fec: float = 0.002
    max_protected_loss: float = 0.2
    # Hard ceiling on the protection fraction per path: past ~25% the
    # FEC bytes cost more QoE than the losses they might repair.
    max_protection: float = 0.25
    # Expected-losses-per-round level above which a round is protected
    # with one FEC packet even when the proportional count floors to 0.
    round_up_threshold: float = 0.15
    _paths: Dict[int, _PathFecState] = field(default_factory=dict)

    def _state(self, path_id: int) -> _PathFecState:
        return self._paths.setdefault(path_id, _PathFecState())

    def num_fec_packets(
        self, path_id: int, num_packets: int, loss_rate: float, now: float
    ) -> int:
        """FEC packets for ``num_packets`` scheduled on ``path_id``."""
        if num_packets <= 0:
            return 0
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss rate out of range: {loss_rate}")
        state = self._state(path_id)
        self._decay_beta(state, now)
        if loss_rate < self.min_loss_for_fec:
            state.last_round_packets = num_packets
            state.last_round_fec = 0
            return 0
        # Congestion loss is GCC's problem, not FEC's: protecting
        # against queue-overflow loss just adds load to the queue.
        loss_rate = min(loss_rate, self.max_protected_loss)
        protection = min(loss_rate * state.beta, self.max_protection)
        exact = protection * num_packets + state.fec_carry
        fec = min(int(exact), num_packets)  # never more FEC than media
        if fec == 0 and protection * num_packets >= self.round_up_threshold:
            # A frame with a meaningful chance of losing a packet gets
            # at least one FEC packet: recovering inline is worth far
            # more than an RTX racing the playout deadline.  This is
            # what puts Converge at ~5% overhead at 1% loss (Fig. 12).
            fec = 1
        state.fec_carry = min(max(exact - fec, 0.0), 1.0)
        state.last_round_packets = num_packets
        state.last_round_fec = fec
        return fec

    def on_nack(self, path_id: int, nack_count: int, now: float) -> None:
        """NACKs mean FEC under-protected this path: raise beta (§4.3)."""
        if nack_count <= 0:
            return
        state = self._state(path_id)
        self._decay_beta(state, now)
        for _ in range(nack_count):
            state.nack_times.append(now)
        while state.nack_times and state.nack_times[0] < now - _NACK_WINDOW:
            state.nack_times.popleft()
        uncovered = max(state.last_round_packets - state.last_round_fec, 1)
        proposed = 1.0 + len(state.nack_times) / uncovered
        state.beta = min(max(state.beta, proposed), _BETA_MAX)

    def beta(self, path_id: int) -> float:
        return self._state(path_id).beta

    def forget_path(self, path_id: int) -> None:
        """Drop FEC state for a removed path.

        A later path reusing the id must start at beta = 1 instead of
        inheriting the dead path's NACK history and carry.
        """
        self._paths.pop(path_id, None)

    def _decay_beta(self, state: _PathFecState, now: float) -> None:
        elapsed = max(now - state.last_update, 0.0)
        state.last_update = now
        if elapsed > 0 and state.beta > 1.0:
            state.beta = 1.0 + (state.beta - 1.0) * math.exp(
                -_BETA_DECAY_PER_SECOND * elapsed
            )
