"""XOR FEC codec.

Two layers:

- :class:`XorCodec` operates on real bytes (pad to the longest payload,
  XOR everything) and is the wire-faithful implementation; it can
  recover any single missing payload of a group.
- :class:`XorFecGroup` carries the same single-loss-recovery semantics
  at the packet-metadata level for the discrete-event simulation, where
  shuffling megabytes of payload per call would only burn CPU without
  changing any measured behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set


class XorCodec:
    """Byte-level XOR FEC encode/recover."""

    @staticmethod
    def encode(payloads: Sequence[bytes]) -> bytes:
        """Return the FEC payload protecting ``payloads``.

        The FEC payload is the bytewise XOR of all payloads padded with
        zeros to the longest one, prefixed by nothing — length recovery
        metadata lives in the FEC header in real ULPFEC; the simulation
        carries sizes separately.
        """
        if not payloads:
            raise ValueError("cannot protect an empty group")
        length = max(len(p) for p in payloads)
        result = bytearray(length)
        for payload in payloads:
            for i, byte in enumerate(payload):
                result[i] ^= byte
        return bytes(result)

    @staticmethod
    def recover(
        received: Sequence[Optional[bytes]], fec_payload: bytes
    ) -> List[bytes]:
        """Fill in the single missing payload of a protected group.

        ``received`` holds the group's payloads with ``None`` marking
        the missing one.  Raises if zero or more than one is missing
        (XOR FEC cannot recover multiple losses per group).
        """
        missing = [i for i, p in enumerate(received) if p is None]
        if len(missing) != 1:
            raise ValueError(
                f"XOR FEC recovers exactly one loss, got {len(missing)}"
            )
        length = len(fec_payload)
        result = bytearray(fec_payload)
        for payload in received:
            if payload is None:
                continue
            for i, byte in enumerate(payload):
                result[i] ^= byte
        out = list(received)
        out[missing[0]] = bytes(result[:length])
        return [p for p in out if p is not None]  # type: ignore[misc]


@dataclass
class XorFecGroup:
    """Single-loss-recovery bookkeeping for one FEC group in the sim."""

    fec_seq: int
    protected_seqs: List[int]
    received_seqs: Set[int] = field(default_factory=set)
    fec_received: bool = False
    recovered_seq: Optional[int] = None

    def mark_media_received(self, seq: int) -> None:
        if seq in self.protected_seqs:
            self.received_seqs.add(seq)

    def mark_fec_received(self) -> None:
        self.fec_received = True

    @property
    def missing_seqs(self) -> List[int]:
        return [s for s in self.protected_seqs if s not in self.received_seqs]

    def try_recover(self) -> Optional[int]:
        """Return the seq recovered by the FEC packet, if exactly one
        media packet of the group is missing and the FEC arrived."""
        if not self.fec_received or self.recovered_seq is not None:
            return None
        missing = self.missing_seqs
        if len(missing) == 1:
            self.recovered_seq = missing[0]
            self.received_seqs.add(missing[0])
            return missing[0]
        return None
