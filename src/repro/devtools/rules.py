"""The simulation-safety lint rules (R001-R007).

Each rule is an :class:`ast.NodeVisitor` subclass with a class-level
``rule_id`` and ``summary``; :func:`run_rules` instantiates the enabled
rules for one parsed module and collects their
:class:`~repro.devtools.diagnostics.Diagnostic` findings.

The rules encode invariants this repository's correctness rests on and
that no off-the-shelf tool checks:

- R001  simulated code must read :attr:`Simulator.now`, never the wall
        clock — one stray ``time.time()`` breaks byte-identical goldens;
- R002  all randomness flows through per-cell seeded streams
        (:class:`repro.simulation.random.RandomStreams`), never the
        module-global ``random`` or unseeded ``numpy.random``;
- R003  arithmetic must not silently mix unit-suffixed identifiers
        (``*_ms`` vs ``*_s``, ``*_bytes`` vs ``*_bits``, ...) — Eq. 1-3
        of the paper mix ``rtt_i/2``, FCD and pacing intervals where a
        ms-vs-s slip skews path selection without crashing anything;
- R004  no float ``==``/``!=`` on times or rates;
- R005  classes in designated hot-path modules carry ``__slots__``;
- R006  no lambdas or nested functions into process-pool submissions
        (picklability) or the event queue (per-packet closure
        allocation — PR 3's closure elimination stays enforced);
- R007  no mutable default arguments.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.devtools.diagnostics import Diagnostic, Severity


class Rule(ast.NodeVisitor):
    """Base class: a visitor that appends diagnostics for one file."""

    rule_id = "R000"
    summary = ""

    def __init__(self, rel_path: str, severity: Severity) -> None:
        self.rel_path = rel_path
        self.severity = severity
        self.diagnostics: List[Diagnostic] = []

    def check(self, tree: ast.Module) -> List[Diagnostic]:
        self.visit(tree)
        return self.diagnostics

    def report(self, node: ast.AST, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                file=self.rel_path,
                line=getattr(node, "lineno", 1),
                rule=self.rule_id,
                message=message,
                severity=self.severity,
            )
        )


# ---------------------------------------------------------------------------
# Shared identifier helpers


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to a dotted string."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


# Unit vocabulary for R003/R004.  Each suffix maps to a (dimension,
# canonical unit) pair; suffixes sharing a canonical unit are aliases.
_UNIT_SUFFIXES: Dict[str, Tuple[str, str]] = {
    "_ns": ("time", "ns"),
    "_us": ("time", "us"),
    "_ms": ("time", "ms"),
    "_s": ("time", "s"),
    "_sec": ("time", "s"),
    "_secs": ("time", "s"),
    "_seconds": ("time", "s"),
    "_bytes": ("size", "bytes"),
    "_bits": ("size", "bits"),
    "_bps": ("rate", "bps"),
    "_kbps": ("rate", "kbps"),
    "_mbps": ("rate", "mbps"),
}

# Identifier tokens that mark a value as a time or a rate for R004.
_TEMPORAL_TOKENS = frozenset(
    {
        "time",
        "timestamp",
        "now",
        "rtt",
        "srtt",
        "deadline",
        "delay",
        "elapsed",
        "duration",
        "rate",
        "bitrate",
        "goodput",
        "throughput",
    }
)


def _identifier_of(node: ast.expr) -> Optional[str]:
    """The bare identifier an expression reads, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _unit_of(node: ast.expr) -> Optional[Tuple[str, str]]:
    """The (dimension, unit) an expression carries, if any.

    Names and attributes declare units via their suffix; a unit
    survives negation and scaling by a unit-less factor
    (``2 * rtt_ms`` is still milliseconds), which is what lets the
    rule see through smoothing-filter arithmetic.
    """
    if isinstance(node, ast.UnaryOp):
        return _unit_of(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        left = _unit_of(node.left)
        right = _unit_of(node.right)
        if (left is None) != (right is None):
            return left if left is not None else right
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        # Dividing a united value by a unit-less factor keeps the unit;
        # anything else (ratios, rates) is out of scope.
        left = _unit_of(node.left)
        if left is not None and _unit_of(node.right) is None:
            return left
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        # A sum carries whatever unit its operands agree on, so mixes
        # inside chained arithmetic (`a() + x_ms - y_s`) still surface.
        left = _unit_of(node.left)
        right = _unit_of(node.right)
        if left == right:
            return left
        if (left is None) != (right is None):
            return left if left is not None else right
        return None
    name = _identifier_of(node)
    if name is None:
        return None
    # Longest suffix wins: ``_seconds`` before ``_s``.
    for suffix in sorted(_UNIT_SUFFIXES, key=len, reverse=True):
        if name.endswith(suffix) and len(name) > len(suffix):
            return _UNIT_SUFFIXES[suffix]
    return None


def _is_temporal(node: ast.expr) -> bool:
    """True when the expression names a time- or rate-valued quantity."""
    if _unit_of(node) is not None:
        return True
    name = _identifier_of(node)
    if name is None:
        return False
    tokens = name.lower().lstrip("_").split("_")
    return any(token in _TEMPORAL_TOKENS for token in tokens)


class _ImportTracker(ast.NodeVisitor):
    """Resolves module and symbol aliases for import-sensitive rules."""

    def __init__(self, modules: Sequence[str]) -> None:
        # module dotted-name -> set of local aliases
        self.module_aliases: Dict[str, Set[str]] = {m: set() for m in modules}
        # local name -> "module.symbol" it was imported from
        self.symbol_aliases: Dict[str, str] = {}
        self._tracked = set(modules)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self._tracked and (
                alias.asname is not None or "." not in alias.name
            ):
                self.module_aliases[alias.name].add(
                    alias.asname or alias.name
                )
            # ``import numpy.random`` (no alias) binds ``numpy``.
            root = alias.name.split(".")[0]
            if root in self._tracked and alias.asname is None:
                self.module_aliases[root].add(root)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            full = f"{node.module}.{alias.name}"
            self.symbol_aliases[local] = full
            if full in self._tracked:
                self.module_aliases[full].add(local)


# ---------------------------------------------------------------------------
# R001 — wall clock


_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    """R001: no wall-clock reads inside simulated code.

    Simulation time is :attr:`Simulator.now`; a single ``time.time()``
    in a component makes results depend on host speed and breaks the
    golden determinism fixtures.  Profiling/benchmark modules are
    excluded via config.
    """

    rule_id = "R001"
    summary = "wall-clock read in simulated code (use Simulator.now)"

    def visit_Module(self, node: ast.Module) -> None:
        tracker = _ImportTracker(["time", "datetime", "datetime.datetime"])
        tracker.visit(node)
        self._time_aliases = tracker.module_aliases.get("time", set())
        self._flagged_symbols = {
            local
            for local, full in tracker.symbol_aliases.items()
            if full in _WALL_CLOCK_CALLS
        }
        self._datetime_class_aliases = {
            local
            for local, full in tracker.symbol_aliases.items()
            if full in ("datetime.datetime", "datetime.date")
        }
        self._datetime_module_aliases = tracker.module_aliases.get(
            "datetime", set()
        )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._flagged_symbols:
            self.report(node, f"call to wall clock '{func.id}()'")
        dotted = _dotted_name(func)
        if dotted is not None:
            self._check_dotted(node, dotted)
        self.generic_visit(node)

    def _check_dotted(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        root, rest = parts[0], ".".join(parts[1:])
        if root in self._time_aliases and f"time.{rest}" in _WALL_CLOCK_CALLS:
            self.report(node, f"call to wall clock '{dotted}()'")
        elif (
            root in self._datetime_class_aliases
            and rest in ("now", "utcnow", "today")
        ):
            self.report(node, f"call to wall clock '{dotted}()'")
        elif (
            root in self._datetime_module_aliases
            and f"datetime.{rest}" in _WALL_CLOCK_CALLS
        ):
            self.report(node, f"call to wall clock '{dotted}()'")


# ---------------------------------------------------------------------------
# R002 — module-global randomness


# random.Random / SystemRandom construction is fine (that is how the
# seeded streams are built); drawing from the module-global instance or
# reseeding it is not.
_RANDOM_ALLOWED_ATTRS = {"Random", "SystemRandom"}
_NUMPY_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    # Legacy MT19937 stream, constructed with an explicit key: the
    # flow batch backend uses it to replay random.Random's exact
    # double stream across a whole cell batch.
    "RandomState",
}


class GlobalRandomRule(Rule):
    """R002: randomness must flow through per-cell seeded streams.

    A draw from the module-global ``random`` (or a bare
    ``numpy.random.*`` call) shares hidden state across cells, so a
    worker that reorders two cells changes both results and parallel
    sweeps stop being byte-identical to serial ones.
    """

    rule_id = "R002"
    summary = "module-global RNG draw (use seeded RandomStreams)"

    def visit_Module(self, node: ast.Module) -> None:
        tracker = _ImportTracker(["random", "numpy", "numpy.random"])
        tracker.visit(node)
        self._random_aliases = tracker.module_aliases.get("random", set())
        self._numpy_aliases = tracker.module_aliases.get("numpy", set())
        self._numpy_random_aliases = tracker.module_aliases.get(
            "numpy.random", set()
        )
        # ``from random import randint`` — any drawing symbol.
        self._drawing_symbols = {
            local
            for local, full in tracker.symbol_aliases.items()
            if full.startswith("random.")
            and full.split(".")[1] not in _RANDOM_ALLOWED_ATTRS
        }
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._drawing_symbols:
            self.report(
                node, f"draw from module-global random ('{func.id}()')"
            )
        dotted = _dotted_name(func)
        if dotted is not None:
            parts = dotted.split(".")
            root = parts[0]
            if (
                root in self._random_aliases
                and len(parts) == 2
                and parts[1] not in _RANDOM_ALLOWED_ATTRS
            ):
                self.report(
                    node, f"draw from module-global random ('{dotted}()')"
                )
            elif (
                root in self._numpy_aliases
                and len(parts) >= 3
                and parts[1] == "random"
                and parts[2] not in _NUMPY_RANDOM_ALLOWED
            ):
                self.report(
                    node, f"unseeded numpy.random draw ('{dotted}()')"
                )
            elif (
                root in self._numpy_random_aliases
                and len(parts) == 2
                and parts[1] not in _NUMPY_RANDOM_ALLOWED
            ):
                self.report(
                    node, f"unseeded numpy.random draw ('{dotted}()')"
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R003 — unit-suffix consistency


class UnitMixRule(Rule):
    """R003: additive arithmetic must not mix unit suffixes.

    ``delay_ms + rtt_s`` type-checks, runs, and silently skews every
    scheduler decision downstream.  Only additive operators and
    comparisons are checked — multiplication and division are how unit
    conversions are legitimately written (``size_bytes * 8``).
    """

    rule_id = "R003"
    summary = "arithmetic mixes unit-suffixed identifiers"

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_pair(node, node.left, node.right)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for left, right in zip(operands, operands[1:]):
            self._check_pair(node, left, right)
        self.generic_visit(node)

    def _check_pair(
        self, node: ast.AST, left: ast.expr, right: ast.expr
    ) -> None:
        left_unit = _unit_of(left)
        right_unit = _unit_of(right)
        if left_unit is None or right_unit is None:
            return
        if left_unit == right_unit:
            return
        left_name = _identifier_of(left) or "<expression>"
        right_name = _identifier_of(right) or "<expression>"
        if left_unit[0] == right_unit[0]:
            detail = f"'{left_unit[1]}' vs '{right_unit[1]}'"
        else:
            detail = f"'{left_unit[0]}' vs '{right_unit[0]}' dimensions"
        self.report(
            node,
            f"'{left_name}' and '{right_name}' mix {detail}; "
            "convert explicitly",
        )


# ---------------------------------------------------------------------------
# R004 — float equality on times/rates


class FloatEqualityRule(Rule):
    """R004: no ``==``/``!=`` on time- or rate-valued floats.

    Simulation timestamps and rates are accumulated floats; exact
    equality silently stops matching after any reordering of the
    arithmetic.  Comparisons against integer sentinels (``seq == -1``)
    stay allowed.
    """

    rule_id = "R004"
    summary = "float ==/!= on a time or rate value"

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                self._check_pair(node, left, right)
        self.generic_visit(node)

    @staticmethod
    def _is_int_sentinel(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            value = node.value
            return value is None or isinstance(value, (int, str, bytes))
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.operand, ast.Constant
        ):
            return isinstance(node.operand.value, int) and not isinstance(
                node.operand.value, bool
            )
        return False

    def _check_pair(
        self, node: ast.AST, left: ast.expr, right: ast.expr
    ) -> None:
        left_temporal = _is_temporal(left)
        right_temporal = _is_temporal(right)
        if not (left_temporal or right_temporal):
            return
        # A compare against an int/None/str sentinel is exact by
        # construction; everything else (float literals, other names,
        # call results) is the bug this rule exists for.
        if self._is_int_sentinel(left) or self._is_int_sentinel(right):
            return
        name = _identifier_of(left if left_temporal else right)
        self.report(
            node,
            f"exact float equality on '{name}'; compare with a tolerance "
            "or restructure",
        )


# ---------------------------------------------------------------------------
# R005 — __slots__ in hot-path modules


_SLOTS_EXEMPT_BASES = {
    "Exception",
    "BaseException",
    "RuntimeError",
    "ValueError",
    "Enum",
    "IntEnum",
    "Flag",
    "IntFlag",
    "NamedTuple",
    "Protocol",
    "TypedDict",
}


class SlotsRule(Rule):
    """R005: classes in designated hot-path modules need ``__slots__``.

    These modules allocate one object per packet or per event; a
    ``__dict__`` per instance costs both memory and attribute-lookup
    time in the hottest loops (PR 3 measured this).  Accepted forms:
    a literal ``__slots__`` in the class body or
    ``@dataclass(slots=True)``.
    """

    rule_id = "R005"
    summary = "hot-path class lacks __slots__"

    # Only instantiated for files matching config.slots_modules; the
    # engine handles that gating.

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._needs_slots(node):
            self.generic_visit(node)
            return
        if not self._has_slots(node):
            self.report(
                node,
                f"class '{node.name}' in a hot-path module has no "
                "__slots__ (add one or use @dataclass(slots=True))",
            )
        self.generic_visit(node)

    @staticmethod
    def _needs_slots(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = _identifier_of(base)
            if name in _SLOTS_EXEMPT_BASES:
                return False
        return True

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for statement in node.body:
            targets: List[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                name = _identifier_of(decorator.func)
                if name == "dataclass":
                    for keyword in decorator.keywords:
                        if (
                            keyword.arg == "slots"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            return True
        return False


# ---------------------------------------------------------------------------
# R006 — closures into pools and the event queue


_POOL_METHODS = {"submit", "map", "apply_async"}
_SCHEDULE_METHODS = {"schedule", "schedule_at", "push"}


class ClosureCaptureRule(Rule):
    """R006: no lambdas/nested functions into pools or the event queue.

    A lambda submitted to a :class:`ProcessPoolExecutor` dies at pickle
    time — but only when a sweep actually goes parallel, which is how
    it slips through serial tests.  Lambdas scheduled on the event
    queue allocate one closure per packet; PR 3 removed exactly those,
    and ``Event.arg`` exists so they stay gone.

    Wrapping the closure in :func:`functools.partial` does not launder
    it: the partial object pickles only if everything it captures
    does, and on the event queue it still allocates per event — so
    ``partial(lambda: ...)`` and ``partial(nested_fn, x)`` are flagged
    exactly like the bare forms.
    """

    rule_id = "R006"
    summary = "lambda/nested function into pool submit or event queue"

    def visit_Module(self, node: ast.Module) -> None:
        self._function_depth = 0
        self._nested_functions: List[Set[str]] = []
        self.generic_visit(node)

    def _visit_function(self, node: ast.AST) -> None:
        name = getattr(node, "name", None)
        if self._function_depth > 0 and self._nested_functions and name:
            self._nested_functions[-1].add(name)
        self._function_depth += 1
        self._nested_functions.append(set())
        self.generic_visit(node)
        self._nested_functions.pop()
        self._function_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _is_nested_function(self, name: str) -> bool:
        return any(name in scope for scope in self._nested_functions)

    @staticmethod
    def _is_partial(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "partial"
        if isinstance(func, ast.Attribute):
            return func.attr == "partial"
        return False

    def _partial_closure(self, node: ast.expr) -> Optional[str]:
        """Describe the closure a ``partial(...)`` wraps, if any."""
        if not (self._is_partial(node) and isinstance(node, ast.Call)):
            return None
        inner = list(node.args) + [kw.value for kw in node.keywords]
        for argument in inner:
            if isinstance(argument, ast.Lambda):
                return "a lambda"
            if isinstance(argument, ast.Name) and self._is_nested_function(
                argument.id
            ):
                return f"nested function '{argument.id}'"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        method = None
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
        elif isinstance(node.func, ast.Name):
            method = node.func.id
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        if method in _POOL_METHODS and isinstance(node.func, ast.Attribute):
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    self.report(
                        node,
                        f"lambda passed to '{method}()' cannot be pickled "
                        "into a worker process",
                    )
                elif isinstance(
                    argument, ast.Name
                ) and self._is_nested_function(argument.id):
                    self.report(
                        node,
                        f"nested function '{argument.id}' passed to "
                        f"'{method}()' cannot be pickled into a worker "
                        "process",
                    )
                else:
                    wrapped = self._partial_closure(argument)
                    if wrapped is not None:
                        self.report(
                            node,
                            f"partial() wrapping {wrapped} passed to "
                            f"'{method}()' cannot be pickled into a "
                            "worker process",
                        )
        elif method in _SCHEDULE_METHODS or method == "Event":
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    self.report(
                        node,
                        f"lambda into '{method}()' allocates a closure per "
                        "event; use a bound method plus Event.arg",
                    )
                else:
                    wrapped = self._partial_closure(argument)
                    if wrapped is not None:
                        self.report(
                            node,
                            f"partial() wrapping {wrapped} into "
                            f"'{method}()' allocates per event; use a "
                            "bound method plus Event.arg",
                        )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R007 — mutable default arguments


_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
}


class MutableDefaultRule(Rule):
    """R007: no mutable default arguments.

    A shared default list/dict is cross-call (and in the runner,
    cross-cell) hidden state — the same class of bug R002 bans for
    RNGs.
    """

    rule_id = "R007"
    summary = "mutable default argument"

    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.report(
                    default,
                    "mutable default argument (literal); default to None "
                    "and build inside",
                )
            elif isinstance(default, ast.Call):
                name = _identifier_of(default.func)
                if name in _MUTABLE_FACTORIES:
                    self.report(
                        default,
                        f"mutable default argument ('{name}()'); default "
                        "to None and build inside",
                    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)


ALL_RULES: Tuple[Type[Rule], ...] = (
    WallClockRule,
    GlobalRandomRule,
    UnitMixRule,
    FloatEqualityRule,
    SlotsRule,
    ClosureCaptureRule,
    MutableDefaultRule,
)

RULES_BY_ID: Dict[str, Type[Rule]] = {rule.rule_id: rule for rule in ALL_RULES}


def run_rules(
    tree: ast.Module,
    rel_path: str,
    enabled: Iterable[Type[Rule]],
    warn_rules: Iterable[str] = (),
) -> List[Diagnostic]:
    """Run ``enabled`` rules over one parsed module."""
    warn_set = set(warn_rules)
    diagnostics: List[Diagnostic] = []
    for rule_class in enabled:
        severity = (
            Severity.WARNING
            if rule_class.rule_id in warn_set
            else Severity.ERROR
        )
        diagnostics.extend(rule_class(rel_path, severity).check(tree))
    diagnostics.sort(key=lambda d: (d.file, d.line, d.rule))
    return diagnostics
