"""The shared diagnostic model every lint rule emits."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.Enum):
    """How a diagnostic affects the exit code.

    ``ERROR`` diagnostics fail the run (exit code 1); ``WARNING``
    diagnostics are printed but do not gate.  Every built-in rule
    defaults to ``ERROR`` — the whole point of a determinism linter is
    that violations block merges — but a rule can be soft-enabled via
    ``[tool.repro-lint] warn = ["Rxxx"]`` while a cleanup is staged.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule firing at a specific file and line."""

    file: str
    line: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        """Render as the conventional ``file:line: RULE message`` line."""
        return (
            f"{self.file}:{self.line}: {self.rule} "
            f"[{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (used by ``repro lint --format json``)."""
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity.value,
        }
