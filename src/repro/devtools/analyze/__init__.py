"""Whole-program determinism analyzer (``repro analyze``).

Interprocedural companion to the per-function linter
(:mod:`repro.devtools.lint`): builds a package-wide symbol table and
call graph, then checks the global invariants the linter cannot see —
transitive nondeterminism taint (R101), unit flow across function
boundaries (R102) and dual-implementation drift (R103).  See the
"Interprocedural analysis" chapter of DEVTOOLS.md.
"""

from repro.devtools.analyze.baseline import (
    Baseline,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.devtools.analyze.callgraph import Edge, ProgramIndex
from repro.devtools.analyze.engine import (
    AnalysisResult,
    add_analyze_arguments,
    analyze_tree,
    main,
    run_analyze,
)
from repro.devtools.analyze.model import (
    RULE_SUMMARIES,
    Finding,
    Location,
    sort_findings,
)
from repro.devtools.analyze.output import render_sarif, sarif_document
from repro.devtools.analyze.symbols import (
    ModuleSummary,
    extract_module,
    module_name_of,
)
from repro.devtools.analyze.units import UnitTables

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Edge",
    "Finding",
    "Location",
    "ModuleSummary",
    "ProgramIndex",
    "RULE_SUMMARIES",
    "UnitTables",
    "add_analyze_arguments",
    "analyze_tree",
    "apply_baseline",
    "extract_module",
    "load_baseline",
    "main",
    "module_name_of",
    "render_sarif",
    "run_analyze",
    "sarif_document",
    "save_baseline",
    "sort_findings",
]
