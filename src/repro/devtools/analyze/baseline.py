"""Committed analyzer baseline (`.repro-analyze-baseline.json`).

Works like a lockfile for findings: pre-existing findings listed here
pass CI, anything new fails it, and entries whose finding disappeared
are reported as *stale* so the file shrinks over time instead of
rotting.  The same file acknowledges dual-implementation pair hashes
for R103 (see :mod:`.drift`).

Finding identity is the line-number-free fingerprint from
:meth:`repro.devtools.analyze.model.Finding.fingerprint`, so moving
code around does not churn the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.devtools.analyze.model import Finding
from repro.devtools.diagnostics import Severity

FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Raised for an unreadable/malformed baseline file."""


@dataclass
class Baseline:
    findings: Dict[str, str] = field(default_factory=dict)
    pairs: Dict[str, Dict[str, str]] = field(default_factory=dict)


def load_baseline(path: Path) -> Baseline:
    if not path.exists():
        return Baseline()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise BaselineError(f"baseline {path} must hold a JSON object")
    findings = data.get("findings", {})
    pairs = data.get("pairs", {})
    if not isinstance(findings, dict) or not isinstance(pairs, dict):
        raise BaselineError(
            f"baseline {path}: 'findings' and 'pairs' must be objects"
        )
    return Baseline(
        findings={str(k): str(v) for k, v in findings.items()},
        pairs={
            str(name): {str(s): str(h) for s, h in sides.items()}
            for name, sides in pairs.items()
            if isinstance(sides, dict)
        },
    )


def save_baseline(path: Path, baseline: Baseline) -> None:
    payload = {
        "version": FORMAT_VERSION,
        "findings": dict(sorted(baseline.findings.items())),
        "pairs": {
            name: dict(sorted(sides.items()))
            for name, sides in sorted(baseline.pairs.items())
        },
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def describe(finding: Finding) -> str:
    """Human hint stored next to a fingerprint in the baseline."""
    return f"{finding.rule} {finding.file}: {finding.message}"


def apply_baseline(
    findings: List[Finding], baseline: Baseline
) -> Tuple[List[Finding], int, List[Finding]]:
    """Split findings into (new, baselined-count, stale-warnings).

    Stale baseline entries — fingerprints with no matching finding —
    come back as WARNING findings anchored at the baseline file so the
    report nudges toward pruning them.
    """
    current = {f.fingerprint(): f for f in findings}
    fresh = [
        f for f in findings if f.fingerprint() not in baseline.findings
    ]
    matched = len(findings) - len(fresh)
    stale = [
        Finding(
            file=".repro-analyze-baseline.json",
            line=1,
            rule="R100",
            message=(
                f"stale baseline entry {fingerprint} ({hint}); the "
                "finding no longer occurs — refresh with "
                "`repro analyze --update-baseline`"
            ),
            severity=Severity.WARNING,
        )
        for fingerprint, hint in sorted(baseline.findings.items())
        if fingerprint not in current
    ]
    return fresh, matched, stale
