"""R102 — unit-flow inference across function boundaries.

The linter's R003 sees unit-suffix mixing inside one expression; this
pass follows values *between* functions.  Units come from three layers
(most specific wins):

1. the ``units.toml`` overlay — per-function parameter/return units
   and a global variable table for names with no suffix (``now``,
   ``deadline``);
2. naming conventions — the shared ``_UNIT_SUFFIXES`` vocabulary
   (``_ms``, ``_s``, ``_bytes``, ``_kbps``, ...), applied to the last
   dotted segment of a display or to a function's own name;
3. nothing — unknown units never produce findings.

Three checks run over the resolved call graph: call arguments against
callee parameter units, return expressions against the function's
declared return unit, and additive/compare arithmetic mixing a
package call's return unit with a differently-united operand.  Only
*strict single-target* call resolutions are checked — fallback edges
are for reachability, not for typing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.devtools.analyze.callgraph import ProgramIndex
from repro.devtools.analyze.model import Finding
from repro.devtools.analyze.symbols import CallSite, FunctionInfo, ModuleSummary
from repro.devtools.analyze.taint import ExcludeCheck, WaiverCheck
from repro.devtools.diagnostics import Severity
from repro.devtools.rules import _UNIT_SUFFIXES

Unit = Tuple[str, str]  # (dimension, unit), e.g. ("time", "ms")

#: unit string -> dimension, for the units.toml overlay.
_DIMENSION_OF: Dict[str, str] = {
    unit: dimension for dimension, unit in _UNIT_SUFFIXES.values()
}


class UnitsError(ValueError):
    """Raised for a malformed units.toml (becomes an R100 finding)."""


def _parse_unit(value: object, context: str) -> Unit:
    if not isinstance(value, str) or value not in _DIMENSION_OF:
        known = ", ".join(sorted(_DIMENSION_OF))
        raise UnitsError(
            f"{context}: unknown unit {value!r} (expected one of {known})"
        )
    return (_DIMENSION_OF[value], value)


class UnitTables:
    """Parsed ``units.toml`` overlay."""

    def __init__(self, data: Optional[Dict[str, object]] = None) -> None:
        self.variables: Dict[str, Unit] = {}
        self.params: Dict[str, Dict[str, Unit]] = {}  # qualname -> name -> u
        self.returns: Dict[str, Unit] = {}
        if not data:
            return
        variables = data.get("variables", {})
        if not isinstance(variables, dict):
            raise UnitsError("[variables] must be a table")
        for name, value in variables.items():
            self.variables[name] = _parse_unit(value, f"variables.{name}")
        functions = data.get("functions", {})
        if not isinstance(functions, dict):
            raise UnitsError("[functions] must be a table")
        for qualname, entry in functions.items():
            if not isinstance(entry, dict):
                raise UnitsError(f"functions.{qualname} must be a table")
            params = entry.get("params", {})
            if not isinstance(params, dict):
                raise UnitsError(f"functions.{qualname}.params must be a "
                                 "table")
            if params:
                self.params[qualname] = {
                    name: _parse_unit(
                        value, f"functions.{qualname}.params.{name}"
                    )
                    for name, value in params.items()
                }
            if "returns" in entry:
                self.returns[qualname] = _parse_unit(
                    entry["returns"], f"functions.{qualname}.returns"
                )
            unknown = set(entry) - {"params", "returns"}
            if unknown:
                raise UnitsError(
                    f"functions.{qualname}: unknown key(s) "
                    f"{', '.join(sorted(unknown))}"
                )


def suffix_unit(name: str) -> Optional[Unit]:
    """Unit implied by the naming convention, on the last dotted leaf."""
    leaf = name.split(".")[-1]
    for suffix in sorted(_UNIT_SUFFIXES, key=len, reverse=True):
        if leaf.endswith(suffix) and len(leaf) > len(suffix):
            return _UNIT_SUFFIXES[suffix]
    return None


class UnitChecker:
    """Runs the three R102 checks over a program index."""

    def __init__(
        self,
        index: ProgramIndex,
        tables: UnitTables,
        is_waived: WaiverCheck,
        is_excluded: ExcludeCheck,
    ) -> None:
        self.index = index
        self.tables = tables
        self.is_waived = is_waived
        self.is_excluded = is_excluded
        self.findings: List[Finding] = []

    # -- unit lookup layers ------------------------------------------------

    def display_unit(self, caller: str, display: str) -> Optional[Unit]:
        """Unit of an identifier display in a caller's context."""
        _summary, info = self.index.functions[caller]
        leaf = display.split(".")[-1]
        overlay = self.tables.params.get(caller)
        if overlay is not None and display in info.params:
            declared = overlay.get(display)
            if declared is not None:
                return declared
        from_suffix = suffix_unit(display)
        if from_suffix is not None:
            return from_suffix
        if display in self.tables.variables:
            return self.tables.variables[display]
        if leaf in self.tables.variables:
            return self.tables.variables[leaf]
        return None

    def param_unit(self, callee: str, param: str) -> Optional[Unit]:
        overlay = self.tables.params.get(callee)
        if overlay is not None and param in overlay:
            return overlay[param]
        return suffix_unit(param)

    def return_unit(self, callee: str) -> Optional[Unit]:
        if callee in self.tables.returns:
            return self.tables.returns[callee]
        _summary, info = self.index.functions[callee]
        return suffix_unit(info.name)

    # -- resolution helper -------------------------------------------------

    def _strict_target(
        self, summary: ModuleSummary, caller: FunctionInfo, site: CallSite
    ) -> Optional[str]:
        resolved = self.index.resolve_call(summary, caller, site)
        strict = [t for t, kind in resolved if kind == "call"]
        if len(strict) == 1:
            return strict[0]
        return None

    # -- checks ------------------------------------------------------------

    def _report(
        self, summary: ModuleSummary, line: int, message: str
    ) -> None:
        if self.is_excluded("R102", summary.rel_path):
            return
        if self.is_waived("R102", summary.module, line):
            return
        self.findings.append(
            Finding(
                file=summary.rel_path,
                line=line,
                rule="R102",
                message=message,
                severity=Severity.ERROR,
            )
        )

    def _check_call_args(
        self,
        caller_key: str,
        summary: ModuleSummary,
        info: FunctionInfo,
        site: CallSite,
        callee: str,
    ) -> None:
        _callee_summary, callee_info = self.index.functions[callee]
        params = list(callee_info.params)
        if (
            callee_info.class_name is not None
            and params
            and params[0] in ("self", "cls")
        ):
            params = params[1:]
        pairs: List[Tuple[Optional[str], str]] = list(zip(site.args, params))
        for name, display in site.kwargs.items():
            if name in callee_info.params:
                pairs.append((display, name))
        for display, param in pairs:
            if display is None:
                continue
            actual = self.display_unit(caller_key, display)
            expected = self.param_unit(callee, param)
            if actual is None or expected is None or actual == expected:
                continue
            self._report(
                summary,
                site.line,
                f"argument `{display}` ({actual[1]}) of a call to "
                f"`{callee}` in `{summary.module}.{info.qualname}` does "
                f"not match parameter `{param}` ({expected[1]})",
            )

    def _check_returns(
        self, caller_key: str, summary: ModuleSummary, info: FunctionInfo
    ) -> None:
        declared = self.return_unit(caller_key)
        if declared is None:
            return
        for line, display in info.returns:
            if display is None:
                continue
            actual = self.display_unit(caller_key, display)
            if actual is None or actual == declared:
                continue
            self._report(
                summary,
                line,
                f"`{summary.module}.{info.qualname}` declares return unit "
                f"{declared[1]} but returns `{display}` ({actual[1]})",
            )

    def _check_arith(
        self, caller_key: str, summary: ModuleSummary, info: FunctionInfo
    ) -> None:
        for entry in info.arith:
            callee = self._strict_target(summary, info, entry.call)
            if callee is None:
                continue
            ret = self.return_unit(callee)
            other = self.display_unit(caller_key, entry.other)
            if ret is None or other is None or ret == other:
                continue
            op_text = (
                "compared with" if entry.op == "cmp"
                else f"combined via `{entry.op}` with"
            )
            self._report(
                summary,
                entry.line,
                f"result of `{callee}` ({ret[1]}) {op_text} "
                f"`{entry.other}` ({other[1]}) in "
                f"`{summary.module}.{info.qualname}`",
            )

    def run(self) -> List[Finding]:
        for caller_key in sorted(self.index.functions):
            summary, info = self.index.functions[caller_key]
            for site in info.calls:
                if not site.args and not site.kwargs:
                    continue
                callee = self._strict_target(summary, info, site)
                if callee is None:
                    continue
                self._check_call_args(
                    caller_key, summary, info, site, callee
                )
            self._check_returns(caller_key, summary, info)
            self._check_arith(caller_key, summary, info)
        return self.findings


def run_units(
    index: ProgramIndex,
    tables: UnitTables,
    is_waived: WaiverCheck,
    is_excluded: ExcludeCheck,
) -> List[Finding]:
    return UnitChecker(index, tables, is_waived, is_excluded).run()
