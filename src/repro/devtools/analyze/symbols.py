"""Per-module symbol extraction for the whole-program analyzer.

One call to :func:`extract_module` turns one source file into a
:class:`ModuleSummary`: every function/method with its calls, taint
source hits, unit-relevant facts and declared drift regions, plus the
module's import tables and class layout.  Summaries are plain-data and
JSON-serializable — the sha256-keyed cache (:mod:`.cache`) stores them
verbatim, which is what makes warm ``repro analyze`` runs skip parsing
entirely.  Everything that depends on *other* modules (call
resolution, unit tables, pair matching) happens later, on top of the
summaries, so a cached summary never goes stale because a different
file changed.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import textwrap
import tokenize
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.devtools.lint import parse_waivers
from repro.devtools.rules import (
    _NUMPY_RANDOM_ALLOWED,
    _RANDOM_ALLOWED_ATTRS,
    _WALL_CLOCK_CALLS,
)

#: Bump to invalidate cached summaries when extraction semantics change.
SCHEMA_VERSION = 1

#: Taint source categories (R101).
WALL_CLOCK = "wall-clock"
GLOBAL_RNG = "global-rng"
ENV_READ = "env-read"
OS_ENTROPY = "os-entropy"

_ENV_CALLS = {"os.getenv", "os.environ.get", "os.environb.get"}
_ENTROPY_CALLS = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Generic container/stdlib method names the conservative
#: dynamic-dispatch fallback must not resolve by name: linking every
#: ``x.get(...)`` to every in-package ``get`` method would flood the
#: call graph with meaningless edges.
FALLBACK_BLOCKLIST: Set[str] = {
    "add", "append", "appendleft", "as_posix", "clear", "close", "copy",
    "count", "decode", "digest", "discard", "dump", "dumps", "encode",
    "endswith", "exists", "extend", "format", "get", "group", "hexdigest",
    "index", "insert", "is_dir", "is_file", "items", "join", "keys",
    "load", "loads", "lower", "lstrip", "match", "mkdir", "open", "pop",
    "popleft", "popitem", "read", "read_bytes", "read_text", "remove",
    "resolve", "rstrip", "search", "setdefault", "sort", "split",
    "splitlines", "startswith", "strip", "sub", "unlink", "update",
    "upper", "values", "write", "write_text",
}


@dataclass
class CallSite:
    """One call expression inside a function, unresolved."""

    line: int
    raw: str  # dotted display of the callee ("self.foo", "mod.fn", "fn")
    recv_kind: Optional[str] = None  # "self" | "var" | "selfattr" | None
    recv_info: Optional[str] = None  # type text / attribute name
    args: List[Optional[str]] = field(default_factory=list)
    kwargs: Dict[str, Optional[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "raw": self.raw,
            "recv_kind": self.recv_kind,
            "recv_info": self.recv_info,
            "args": list(self.args),
            "kwargs": dict(self.kwargs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(
            line=data["line"],
            raw=data["raw"],
            recv_kind=data["recv_kind"],
            recv_info=data["recv_info"],
            args=list(data["args"]),
            kwargs=dict(data["kwargs"]),
        )


@dataclass
class SourceHit:
    """One nondeterminism source call inside a function."""

    line: int
    category: str
    call: str  # canonical dotted name, e.g. "time.time"

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "category": self.category, "call": self.call}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SourceHit":
        return cls(
            line=data["line"], category=data["category"], call=data["call"]
        )


@dataclass
class UnitArith:
    """Additive arithmetic / comparison mixing a call with a name."""

    line: int
    call: CallSite  # the call operand (args unused, callee matters)
    other: str  # identifier display of the non-call operand
    op: str  # "+", "-", "cmp"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "call": self.call.to_dict(),
            "other": self.other,
            "op": self.op,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UnitArith":
        return cls(
            line=data["line"],
            call=CallSite.from_dict(data["call"]),
            other=data["other"],
            op=data["op"],
        )


@dataclass
class FunctionInfo:
    """Everything the analyses need to know about one function."""

    name: str
    qualname: str  # module-relative: "func" or "Class.method"
    line: int
    end_line: int
    class_name: Optional[str] = None
    params: List[str] = field(default_factory=list)
    param_annotations: Dict[str, str] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    source_hits: List[SourceHit] = field(default_factory=list)
    returns: List[Tuple[int, Optional[str]]] = field(default_factory=list)
    arith: List[UnitArith] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "line": self.line,
            "end_line": self.end_line,
            "class_name": self.class_name,
            "params": list(self.params),
            "param_annotations": dict(self.param_annotations),
            "calls": [c.to_dict() for c in self.calls],
            "source_hits": [h.to_dict() for h in self.source_hits],
            "returns": [[line, disp] for line, disp in self.returns],
            "arith": [a.to_dict() for a in self.arith],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            name=data["name"],
            qualname=data["qualname"],
            line=data["line"],
            end_line=data["end_line"],
            class_name=data["class_name"],
            params=list(data["params"]),
            param_annotations=dict(data["param_annotations"]),
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            source_hits=[SourceHit.from_dict(h) for h in data["source_hits"]],
            returns=[(line, disp) for line, disp in data["returns"]],
            arith=[UnitArith.from_dict(a) for a in data["arith"]],
        )


@dataclass
class ClassInfo:
    """One class: bases (raw text), methods and attribute types."""

    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    attr_types: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "attr_types": dict(self.attr_types),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassInfo":
        return cls(
            name=data["name"],
            line=data["line"],
            bases=list(data["bases"]),
            methods=list(data["methods"]),
            attr_types=dict(data["attr_types"]),
        )


@dataclass
class DriftRegion:
    """One side-region of a declared dual-implementation pair."""

    pair: str
    side: str  # "impl" | "ref"
    line: int
    end_line: int
    hash: str
    label: str = ""  # attached function qualname, if def-attached

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pair": self.pair,
            "side": self.side,
            "line": self.line,
            "end_line": self.end_line,
            "hash": self.hash,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DriftRegion":
        return cls(
            pair=data["pair"],
            side=data["side"],
            line=data["line"],
            end_line=data["end_line"],
            hash=data["hash"],
            label=data["label"],
        )


@dataclass
class ModuleSummary:
    """The cached per-module analysis unit."""

    rel_path: str
    module: str  # dotted name, e.g. "repro.flow.session"
    sha256: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    symbol_aliases: Dict[str, str] = field(default_factory=dict)
    regions: List[DriftRegion] = field(default_factory=list)
    waivers: Dict[int, List[str]] = field(default_factory=dict)
    marker_errors: List[Tuple[int, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rel_path": self.rel_path,
            "module": self.module,
            "sha256": self.sha256,
            "functions": {
                k: v.to_dict() for k, v in sorted(self.functions.items())
            },
            "classes": {
                k: v.to_dict() for k, v in sorted(self.classes.items())
            },
            "module_aliases": dict(self.module_aliases),
            "symbol_aliases": dict(self.symbol_aliases),
            "regions": [r.to_dict() for r in self.regions],
            "waivers": {
                str(line): rules for line, rules in sorted(self.waivers.items())
            },
            "marker_errors": [[line, msg] for line, msg in self.marker_errors],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            rel_path=data["rel_path"],
            module=data["module"],
            sha256=data["sha256"],
            functions={
                k: FunctionInfo.from_dict(v)
                for k, v in data["functions"].items()
            },
            classes={
                k: ClassInfo.from_dict(v) for k, v in data["classes"].items()
            },
            module_aliases=dict(data["module_aliases"]),
            symbol_aliases=dict(data["symbol_aliases"]),
            regions=[DriftRegion.from_dict(r) for r in data["regions"]],
            waivers={
                int(line): list(rules)
                for line, rules in data["waivers"].items()
            },
            marker_errors=[
                (line, msg) for line, msg in data["marker_errors"]
            ],
        )


# ---------------------------------------------------------------------------
# Helpers


def module_name_of(rel_path: str) -> str:
    """Dotted module name for a /-separated relative path.

    A leading ``src/`` layout component is dropped so paths resolve to
    importable names (``src/repro/flow/session.py`` →
    ``repro.flow.session``); ``__init__.py`` names the package itself.
    """
    parts = rel_path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def dotted_display(node: ast.expr) -> Optional[str]:
    """Flatten ``a.b.c`` chains rooted at a Name to a dotted string."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


_GENERIC_WRAPPERS = ("Optional", "Final", "ClassVar")
_CONTAINER_PREFIXES = (
    "List", "Dict", "Tuple", "Set", "FrozenSet", "Sequence", "Iterable",
    "Iterator", "Mapping", "MutableMapping", "Callable", "Union", "Type",
    "list", "dict", "tuple", "set", "frozenset", "type",
)


def strip_type_text(text: Optional[str]) -> Optional[str]:
    """Reduce an annotation to a plain (possibly dotted) class name.

    ``Optional["FlowLink"]`` → ``FlowLink``; containers and unions are
    out of scope and collapse to ``None``.
    """
    if text is None:
        return None
    text = text.strip().strip("'\"")
    for wrapper in _GENERIC_WRAPPERS:
        prefix = wrapper + "["
        if text.startswith(prefix) and text.endswith("]"):
            return strip_type_text(text[len(prefix):-1])
    if "[" in text or "|" in text:
        return None
    if not text or not all(
        part.isidentifier() for part in text.split(".")
    ):
        return None
    if text.split(".")[-1][:1].islower():
        return None
    if text.startswith(_CONTAINER_PREFIXES) and "." not in text:
        return None
    return text


def _region_hash(lines: List[str]) -> Optional[str]:
    """Normalized-AST hash of a source region.

    The region is dedented and wrapped in a synthetic function + loop
    (so fragments containing ``return``/``break``/``continue`` parse),
    docstrings are dropped, and the AST is dumped without location
    attributes — comments, blank lines and pure re-formatting therefore
    do not change the hash, while any semantic edit does.
    """
    body = textwrap.dedent("\n".join(lines))
    wrapped = "def _region():\n    while True:\n" + textwrap.indent(
        body, " " * 8
    )
    try:
        tree = ast.parse(wrapped)
    except SyntaxError:
        return None
    _strip_docstrings(tree)
    dump = ast.dump(tree, include_attributes=False)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()[:24]


def _strip_docstrings(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        body = getattr(node, "body", None)
        if not isinstance(body, list) or not body:
            continue
        first = body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            del body[0]


# ---------------------------------------------------------------------------
# Drift-marker parsing

_PAIR_PATTERN = re.compile(
    r"#\s*drift:\s*pair\(([A-Za-z0-9_.-]+)\)\s*(impl|ref)\s*$"
)
_END_PATTERN = re.compile(r"#\s*drift:\s*end\s*$")
_ANY_DRIFT = re.compile(r"#\s*drift:")


def _extract_regions(
    source: str, tree: ast.Module
) -> Tuple[List[DriftRegion], List[Tuple[int, str]]]:
    """Parse ``# drift: pair(name) side`` markers into regions.

    A marker on the comment line(s) immediately above a ``def`` (or its
    decorators) covers the whole function; a marker anywhere else opens
    a block region closed by ``# drift: end``.  Multiple markers may
    stack on one function.
    """
    lines = source.splitlines()
    errors: List[Tuple[int, str]] = []
    regions: List[DriftRegion] = []

    # Map def start lines (first decorator or the def itself) to
    # (qualname, def_line, end_line).
    def_spans: Dict[int, Tuple[str, int, int]] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                start = child.lineno
                if child.decorator_list:
                    start = min(d.lineno for d in child.decorator_list)
                def_spans[start] = (
                    qual, child.lineno, child.end_lineno or child.lineno
                )
                visit(child, qual + ".")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")

    visit(tree, "")

    # Markers only count inside real comment tokens: marker-looking
    # text in a docstring or a string literal is documentation, not a
    # declaration.
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.strip()
    except tokenize.TokenError:  # pragma: no cover - file already parsed
        pass

    pending: List[Tuple[int, str, str]] = []  # (line, pair, side)
    open_block: Optional[Tuple[int, str, str]] = None
    for lineno, text in enumerate(lines, start=1):
        stripped = text.strip()
        comment = comments.get(lineno, "")
        if not _ANY_DRIFT.search(comment):
            if open_block is not None:
                continue
            if not pending:
                continue
            if not stripped or stripped.startswith("#"):
                continue
            span = def_spans.get(lineno)
            if span is not None:
                qual, def_line, end_line = span
                for marker_line, pair, side in pending:
                    fragment = lines[def_line - 1:end_line]
                    digest = _region_hash(fragment)
                    if digest is None:
                        errors.append(
                            (marker_line, f"unparseable region for pair "
                             f"'{pair}'")
                        )
                        continue
                    regions.append(
                        DriftRegion(
                            pair=pair,
                            side=side,
                            line=def_line,
                            end_line=end_line,
                            hash=digest,
                            label=qual,
                        )
                    )
                pending = []
            else:
                # Markers not attached to a def open a block region;
                # only a single marker may open one.
                if len(pending) > 1:
                    for marker_line, pair, _side in pending[1:]:
                        errors.append(
                            (marker_line,
                             f"stacked block markers for pair '{pair}'; "
                             "only one block region may open at a time")
                        )
                open_block = pending[0]
                pending = []
            continue

        if stripped != comment:
            errors.append(
                (lineno, "drift markers must be standalone comment lines")
            )
            continue
        match = _PAIR_PATTERN.search(comment)
        if match:
            if open_block is not None:
                errors.append(
                    (lineno, "drift marker inside an open block region "
                     f"(opened at line {open_block[0]})")
                )
                continue
            pending.append((lineno, match.group(1), match.group(2)))
            continue
        if _END_PATTERN.search(comment):
            if open_block is None:
                errors.append((lineno, "'# drift: end' without an open "
                               "block region"))
                continue
            start_line, pair, side = open_block
            fragment = lines[start_line:lineno - 1]
            digest = _region_hash(fragment)
            if digest is None:
                errors.append(
                    (start_line, f"unparseable region for pair '{pair}'")
                )
            else:
                regions.append(
                    DriftRegion(
                        pair=pair,
                        side=side,
                        line=start_line,
                        end_line=lineno,
                        hash=digest,
                    )
                )
            open_block = None
            continue
        errors.append((lineno, "unrecognised drift marker (expected "
                       "'# drift: pair(<name>) impl|ref' or "
                       "'# drift: end')"))

    if open_block is not None:
        errors.append(
            (open_block[0],
             f"block region for pair '{open_block[1]}' never closed "
             "(missing '# drift: end')")
        )
    for marker_line, pair, _side in pending:
        errors.append(
            (marker_line,
             f"dangling drift marker for pair '{pair}' (no def or block "
             "follows)")
        )
    return regions, errors


# ---------------------------------------------------------------------------
# Import tracking (relative-import aware)


class _Imports(ast.NodeVisitor):
    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.module_aliases: Dict[str, str] = {}  # alias -> dotted module
        self.symbol_aliases: Dict[str, str] = {}  # name -> module.symbol

    def _resolve_relative(self, level: int, target: Optional[str]) -> str:
        parts = self.module.split(".") if self.module else []
        if not self.is_package:
            parts = parts[:-1]
        if level > 1:
            parts = parts[: len(parts) - (level - 1)]
        if target:
            parts = parts + target.split(".")
        return ".".join(parts)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.module_aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = (
            self._resolve_relative(node.level, node.module)
            if node.level
            else (node.module or "")
        )
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.symbol_aliases[local] = f"{base}.{alias.name}"


# ---------------------------------------------------------------------------
# Function-body extraction


class _FunctionScanner(ast.NodeVisitor):
    """Collects calls, source hits and unit facts for one function.

    Nested functions and lambdas are flattened into their enclosing
    function: a wall-clock read inside a local helper is still a read
    performed by the function that defines (and presumably calls) it.
    """

    def __init__(
        self,
        info: FunctionInfo,
        imports: _Imports,
        local_types: Dict[str, str],
        class_attr_sink: Optional[Dict[str, str]],
    ) -> None:
        self.info = info
        self.imports = imports
        self.local_types = local_types
        self.class_attr_sink = class_attr_sink

    # -- canonicalization --------------------------------------------------

    def _canonical(self, raw: str) -> str:
        parts = raw.split(".")
        root = parts[0]
        if root in self.imports.module_aliases:
            parts[0] = self.imports.module_aliases[root]
        elif root in self.imports.symbol_aliases:
            parts[0] = self.imports.symbol_aliases[root]
        return ".".join(parts)

    def _classify_source(self, canonical: str) -> Optional[Tuple[str, str]]:
        if canonical in _WALL_CLOCK_CALLS:
            return WALL_CLOCK, canonical
        parts = canonical.split(".")
        if (
            parts[0] == "random"
            and len(parts) == 2
            and parts[1] not in _RANDOM_ALLOWED_ATTRS
        ):
            return GLOBAL_RNG, canonical
        if (
            len(parts) >= 2
            and parts[0] == "numpy"
            and parts[1] == "random"
            and (len(parts) < 3 or parts[2] not in _NUMPY_RANDOM_ALLOWED)
        ):
            return GLOBAL_RNG, canonical
        if canonical in _ENV_CALLS:
            return ENV_READ, canonical
        if canonical in _ENTROPY_CALLS or parts[0] == "secrets":
            return OS_ENTROPY, canonical
        return None

    # -- type bookkeeping --------------------------------------------------

    def _record_assign_type(self, target: ast.expr, value: ast.expr) -> None:
        type_text: Optional[str] = None
        if isinstance(value, ast.Call):
            callee = dotted_display(value.func)
            if callee is not None and callee.split(".")[-1][:1].isupper():
                type_text = callee
        elif isinstance(value, ast.Name):
            type_text = strip_type_text(
                self.info.param_annotations.get(value.id)
            )
        if type_text is None:
            return
        if isinstance(target, ast.Name):
            self.local_types.setdefault(target.id, type_text)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.class_attr_sink is not None
        ):
            self.class_attr_sink.setdefault(target.attr, type_text)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_assign_type(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        type_text = strip_type_text(ast.unparse(node.annotation))
        if type_text is not None:
            if isinstance(node.target, ast.Name):
                self.local_types.setdefault(node.target.id, type_text)
            elif (
                isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
                and self.class_attr_sink is not None
            ):
                self.class_attr_sink.setdefault(node.target.attr, type_text)
        self.generic_visit(node)

    # -- the interesting nodes ---------------------------------------------

    @staticmethod
    def _arg_display(node: ast.expr) -> Optional[str]:
        return dotted_display(node)

    def visit_Call(self, node: ast.Call) -> None:
        raw = dotted_display(node.func)
        if raw is not None:
            site = CallSite(
                line=node.lineno,
                raw=raw,
                args=[self._arg_display(a) for a in node.args],
                kwargs={
                    kw.arg: self._arg_display(kw.value)
                    for kw in node.keywords
                    if kw.arg is not None
                },
            )
            if isinstance(node.func, ast.Attribute):
                recv = node.func.value
                if isinstance(recv, ast.Name):
                    if recv.id == "self":
                        site.recv_kind = "self"
                    elif recv.id in self.local_types:
                        site.recv_kind = "var"
                        site.recv_info = self.local_types[recv.id]
                elif (
                    isinstance(recv, ast.Attribute)
                    and isinstance(recv.value, ast.Name)
                    and recv.value.id == "self"
                ):
                    site.recv_kind = "selfattr"
                    site.recv_info = recv.attr
            self.info.calls.append(site)
            classified = self._classify_source(self._canonical(raw))
            if classified is not None:
                category, canonical = classified
                self.info.source_hits.append(
                    SourceHit(
                        line=node.lineno, category=category, call=canonical
                    )
                )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``os.environ["X"]`` reads the environment without a call.
        raw = dotted_display(node.value)
        if raw is not None and self._canonical(raw) in (
            "os.environ",
            "os.environb",
        ):
            self.info.source_hits.append(
                SourceHit(
                    line=node.lineno,
                    category=ENV_READ,
                    call=self._canonical(raw),
                )
            )
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.info.returns.append(
                (node.lineno, dotted_display(node.value))
            )
        self.generic_visit(node)

    def _record_arith(
        self, node: ast.AST, left: ast.expr, right: ast.expr, op: str
    ) -> None:
        call_node: Optional[ast.Call] = None
        other: Optional[ast.expr] = None
        if isinstance(left, ast.Call) and not isinstance(right, ast.Call):
            call_node, other = left, right
        elif isinstance(right, ast.Call) and not isinstance(left, ast.Call):
            call_node, other = right, left
        if call_node is None or other is None:
            return
        raw = dotted_display(call_node.func)
        display = dotted_display(other)
        if raw is None or display is None:
            return
        site = CallSite(line=call_node.lineno, raw=raw)
        if isinstance(call_node.func, ast.Attribute):
            recv = call_node.func.value
            if isinstance(recv, ast.Name):
                if recv.id == "self":
                    site.recv_kind = "self"
                elif recv.id in self.local_types:
                    site.recv_kind = "var"
                    site.recv_info = self.local_types[recv.id]
            elif (
                isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self"
            ):
                site.recv_kind = "selfattr"
                site.recv_info = recv.attr
        self.info.arith.append(
            UnitArith(
                line=getattr(node, "lineno", call_node.lineno),
                call=site,
                other=display,
                op=op,
            )
        )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Add):
            self._record_arith(node, node.left, node.right, "+")
        elif isinstance(node.op, ast.Sub):
            self._record_arith(node, node.left, node.right, "-")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for left, right in zip(operands, operands[1:]):
            self._record_arith(node, left, right, "cmp")
        self.generic_visit(node)

    # Nested defs are flattened into this scanner (see class docstring).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.generic_visit(node)


def _function_info(
    node: ast.AST,
    qualname: str,
    class_name: Optional[str],
) -> FunctionInfo:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    params = [a.arg for a in ordered]
    annotations = {
        a.arg: ast.unparse(a.annotation)
        for a in ordered
        if a.annotation is not None
    }
    return FunctionInfo(
        name=node.name,
        qualname=qualname,
        line=node.lineno,
        end_line=node.end_lineno or node.lineno,
        class_name=class_name,
        params=params,
        param_annotations=annotations,
    )


def extract_module(
    source: str, rel_path: str, sha256: str = ""
) -> ModuleSummary:
    """Parse one file into its :class:`ModuleSummary`.

    Raises ``SyntaxError`` if the file does not parse — callers turn
    that into an R100 finding.
    """
    module = module_name_of(rel_path)
    tree = ast.parse(source, filename=rel_path)
    is_package = rel_path.replace("\\", "/").endswith("__init__.py")

    imports = _Imports(module, is_package)
    imports.visit(tree)

    summary = ModuleSummary(
        rel_path=rel_path,
        module=module,
        sha256=sha256,
        module_aliases=dict(imports.module_aliases),
        symbol_aliases=dict(imports.symbol_aliases),
        waivers={
            line: sorted(rules)
            for line, rules in parse_waivers(source).items()
        },
    )
    regions, marker_errors = _extract_regions(source, tree)
    summary.regions = regions
    summary.marker_errors = marker_errors

    module_info = FunctionInfo(
        name="<module>",
        qualname="<module>",
        line=1,
        end_line=len(source.splitlines()) or 1,
    )
    summary.functions["<module>"] = module_info
    module_scanner = _FunctionScanner(module_info, imports, {}, None)

    def scan_function(
        node: ast.AST, qualname: str, class_info: Optional[ClassInfo]
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        info = _function_info(
            node, qualname, class_info.name if class_info else None
        )
        local_types = {
            name: stripped
            for name, text in info.param_annotations.items()
            if (stripped := strip_type_text(text)) is not None
        }
        if class_info is not None:
            local_types.setdefault("self", class_info.name)
        sink = class_info.attr_types if class_info is not None else None
        scanner = _FunctionScanner(info, imports, local_types, sink)
        for statement in node.body:
            scanner.visit(statement)
        summary.functions[qualname] = info

    def walk_body(
        body: List[ast.stmt],
        prefix: str,
        class_info: Optional[ClassInfo],
    ) -> None:
        for statement in body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                qualname = f"{prefix}{statement.name}"
                if class_info is not None:
                    class_info.methods.append(statement.name)
                scan_function(statement, qualname, class_info)
            elif isinstance(statement, ast.ClassDef):
                info = ClassInfo(
                    name=f"{prefix}{statement.name}",
                    line=statement.lineno,
                    bases=[
                        base
                        for base_node in statement.bases
                        if (base := dotted_display(base_node)) is not None
                    ],
                )
                # Class-level annotations type the attributes
                # (dataclass fields included).
                for item in statement.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        stripped = strip_type_text(
                            ast.unparse(item.annotation)
                        )
                        if stripped is not None:
                            info.attr_types[item.target.id] = stripped
                summary.classes[info.name] = info
                walk_body(statement.body, f"{info.name}.", info)
            else:
                module_scanner.visit(statement)

    walk_body(tree.body, "", None)
    return summary
