"""Per-module summary cache for warm analyzer runs.

Keyed by file sha256 + the extraction schema version: a warm run over
an unchanged tree deserializes summaries instead of re-parsing every
file, which is what keeps ``repro analyze`` under the 2-second budget
on the full package.  The cache file (`.repro-analyze-cache.json`,
gitignored) is a plain JSON object so a corrupt or stale file simply
degrades to a cold run — never an error.

Summaries must not embed anything that depends on *other* files
(units.toml, baseline, sibling modules); all cross-module resolution
happens after loading, in :mod:`.callgraph` and the rule passes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.devtools.analyze.symbols import SCHEMA_VERSION, ModuleSummary


class SummaryCache:
    def __init__(self, path: Optional[Path]) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        if path is None or not path.exists():
            return
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if (
            isinstance(data, dict)
            and data.get("schema") == SCHEMA_VERSION
            and isinstance(data.get("entries"), dict)
        ):
            self._entries = data["entries"]

    def get(self, rel_path: str, sha256: str) -> Optional[ModuleSummary]:
        entry = self._entries.get(rel_path)
        if entry is None or entry.get("sha256") != sha256:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, summary: ModuleSummary) -> None:
        self._entries[summary.rel_path] = {
            "sha256": summary.sha256,
            "summary": summary.to_dict(),
        }
        self._dirty = True

    def prune(self, live_rel_paths: "set[str]") -> None:
        """Drop entries for files that no longer exist."""
        dead = [p for p in self._entries if p not in live_rel_paths]
        for p in dead:
            del self._entries[p]
            self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "schema": SCHEMA_VERSION,
            "entries": dict(sorted(self._entries.items())),
        }
        try:
            self.path.write_text(
                json.dumps(payload) + "\n", encoding="utf-8"
            )
        except OSError:
            # A read-only checkout just stays cold.
            return
        self._dirty = False
