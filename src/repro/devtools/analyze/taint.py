"""R101 — transitive nondeterminism taint.

Seeds: wall-clock reads, global-RNG draws, environment reads and OS
entropy (collected per function by :mod:`.symbols`).  The analysis
walks the call graph breadth-first from the configured simulation
roots (``Simulator.run``, ``FlowCall``, ``_BatchFlowRun``,
``run_call`` by default); every reachable function containing a source
hit yields one finding per distinct source call, carrying the full
root→sink call chain.

This replaces the local-only view of lint rules R001/R002: a
``time.time()`` two calls below the event loop is invisible to a
single-function linter but still breaks golden determinism.  Existing
``# lint: ok(R001)`` / ``ok(R002)`` waivers on the source line are
honoured (see ``WAIVER_ALIASES``), as are per-rule path excludes from
``[tool.repro-analyze]``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.devtools.analyze.callgraph import ProgramIndex
from repro.devtools.analyze.model import Finding, Location
from repro.devtools.diagnostics import Severity

#: ``(rule, module, line) -> waived?`` — supplied by the engine, which
#: owns the waiver tables and the rule-alias mapping.
WaiverCheck = Callable[[str, str, int], bool]
#: ``(rule, rel_path) -> excluded?`` from ``[tool.repro-analyze]``.
ExcludeCheck = Callable[[str, str], bool]

#: Human wording per source category.
_CATEGORY_TEXT = {
    "wall-clock": "wall-clock read",
    "global-rng": "global RNG draw",
    "env-read": "environment read",
    "os-entropy": "OS entropy read",
}


def reachable_from(
    index: ProgramIndex, roots: Sequence[str]
) -> Dict[str, Optional[Tuple[str, int]]]:
    """BFS reachability with parent pointers.

    Returns ``{function: (parent, call line) | None-for-roots}`` for
    every function reachable from ``roots``.  Iteration order is made
    deterministic by visiting sorted roots and per-function edge lists
    in recorded order.
    """
    parents: Dict[str, Optional[Tuple[str, int]]] = {}
    queue: List[str] = []
    for root in sorted(set(roots)):
        if root in index.functions and root not in parents:
            parents[root] = None
            queue.append(root)
    while queue:
        current = queue.pop(0)
        for edge in index.edges.get(current, []):
            if edge.callee in parents:
                continue
            parents[edge.callee] = (current, edge.line)
            queue.append(edge.callee)
    return parents


def _chain_to(
    index: ProgramIndex,
    parents: Dict[str, Optional[Tuple[str, int]]],
    sink: str,
) -> Tuple[Location, ...]:
    """Root→sink chain of :class:`Location` steps."""
    hops: List[Tuple[str, Optional[int]]] = []  # (fn, line called from)
    current: Optional[str] = sink
    call_line: Optional[int] = None
    while current is not None:
        hops.append((current, call_line))
        parent = parents.get(current)
        if parent is None:
            break
        current, call_line = parent[0], parent[1]
    hops.reverse()
    chain: List[Location] = []
    for position, (fn, _line) in enumerate(hops):
        file, line, label = index.location_of(fn)
        if position + 1 < len(hops):
            next_call_line = hops[position + 1][1]
            if next_call_line is not None:
                line = next_call_line
        chain.append(Location(file=file, line=line, label=label))
    return tuple(chain)


def run_taint(
    index: ProgramIndex,
    roots: Sequence[str],
    is_waived: WaiverCheck,
    is_excluded: ExcludeCheck,
) -> List[Finding]:
    """Produce R101 findings for every reachable, unwaived source."""
    parents = reachable_from(index, roots)
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for fn in sorted(parents):
        summary, info = index.functions[fn]
        if not info.source_hits:
            continue
        if is_excluded("R101", summary.rel_path):
            continue
        chain = _chain_to(index, parents, fn)
        for hit in info.source_hits:
            key = (summary.rel_path, hit.line, hit.call)
            if key in seen:
                continue
            seen.add(key)
            if is_waived("R101", summary.module, hit.line):
                continue
            category = _CATEGORY_TEXT.get(hit.category, hit.category)
            root_label = chain[0].label if chain else "?"
            findings.append(
                Finding(
                    file=summary.rel_path,
                    line=hit.line,
                    rule="R101",
                    message=(
                        f"{category} `{hit.call}` in "
                        f"`{summary.module}.{info.qualname}` is reachable "
                        f"from simulation root `{root_label}` "
                        f"({len(chain) - 1} call(s) deep); simulated code "
                        "must be deterministic"
                    ),
                    severity=Severity.ERROR,
                    chain=chain,
                )
            )
    return findings
