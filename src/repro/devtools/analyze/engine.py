"""The ``repro analyze`` engine and command line.

Usage::

    repro analyze [paths ...] [--format text|json|sarif]
    python -m repro.devtools.analyze

Builds the whole-package symbol table + call graph (:mod:`.symbols`,
:mod:`.callgraph`) and runs the interprocedural rules on top:

* R101 — transitive nondeterminism taint from the simulation roots;
* R102 — unit-flow inference (``units.toml`` overlay + suffixes);
* R103 — dual-implementation drift over ``# drift: pair(...)`` regions.

Findings already recorded in the committed baseline
(`.repro-analyze-baseline.json`) pass; new ones fail with exit code 1.
Per-module summaries are cached keyed by file sha256, which is what
keeps warm runs under the 2-second budget on the full tree.  Exit
codes match ``repro lint``: 0 clean, 1 findings, 2 invocation error.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.devtools.analyze.baseline import (
    Baseline,
    BaselineError,
    apply_baseline,
    describe,
    load_baseline,
    save_baseline,
)
from repro.devtools.analyze.cache import SummaryCache
from repro.devtools.analyze.callgraph import ProgramIndex
from repro.devtools.analyze.drift import run_drift
from repro.devtools.analyze.model import (
    RULE_SUMMARIES,
    WAIVER_ALIASES,
    Finding,
    sort_findings,
)
from repro.devtools.analyze.output import (
    render_json,
    render_sarif,
    render_text,
)
from repro.devtools.analyze.symbols import ModuleSummary, extract_module
from repro.devtools.analyze.taint import run_taint
from repro.devtools.analyze.units import UnitsError, UnitTables, run_units
from repro.devtools.config import (
    AnalyzeConfig,
    find_pyproject,
    load_analyze_config,
)
from repro.devtools.diagnostics import Severity
from repro.devtools.lint import _display_path, _iter_python_files

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - 3.9/3.10 fallback
    try:
        import tomli as _toml  # type: ignore[import-not-found,no-redef]
    except ImportError:
        _toml = None  # type: ignore[assignment]


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    findings: List[Finding] = field(default_factory=list)  # post-baseline
    raw_findings: List[Finding] = field(default_factory=list)
    baselined: int = 0
    modules: int = 0
    parsed: int = 0
    cached: int = 0
    elapsed_seconds: float = 0.0
    summaries: List[ModuleSummary] = field(default_factory=list)
    index: Optional[ProgramIndex] = None
    current_pairs: Dict[str, Dict[str, str]] = field(default_factory=dict)
    baseline: Baseline = field(default_factory=Baseline)

    @property
    def summary_line(self) -> str:
        return (
            f"repro analyze: {self.modules} module(s) "
            f"({self.parsed} parsed, {self.cached} cached) "
            f"in {self.elapsed_seconds:.2f}s"
        )

    def stats(self) -> Dict[str, object]:
        return {
            "modules": self.modules,
            "parsed": self.parsed,
            "cached": self.cached,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "baselined": self.baselined,
        }


def _load_units(base: Path, config: AnalyzeConfig) -> "tuple[UnitTables, List[Finding]]":
    path = base / config.units
    if not path.is_file() or _toml is None:
        return UnitTables(), []
    try:
        with open(path, "rb") as handle:
            data = _toml.load(handle)
        return UnitTables(data), []
    except (UnitsError, ValueError, OSError) as exc:
        return UnitTables(), [
            Finding(
                file=config.units,
                line=1,
                rule="R100",
                message=f"cannot load units overlay: {exc}",
                severity=Severity.ERROR,
            )
        ]


def analyze_tree(
    paths: Sequence[str],
    config: Optional[AnalyzeConfig] = None,
    base: Optional[Path] = None,
    use_cache: bool = True,
) -> AnalysisResult:
    """Run the full analysis over every ``.py`` file under ``paths``."""
    config = config if config is not None else AnalyzeConfig()
    base = base if base is not None else Path.cwd()
    result = AnalysisResult()
    started = time.perf_counter()  # lint: ok(R001)

    cache = SummaryCache(base / config.cache if use_cache else None)
    findings: List[Finding] = []
    summaries: List[ModuleSummary] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"no such path: {raw}")
        for file_path in _iter_python_files(root):
            rel = _display_path(file_path, base)
            blob = file_path.read_bytes()
            sha256 = hashlib.sha256(blob).hexdigest()
            summary = cache.get(rel, sha256)
            if summary is not None:
                result.cached += 1
            else:
                result.parsed += 1
                try:
                    summary = extract_module(
                        blob.decode("utf-8"), rel, sha256
                    )
                except SyntaxError as exc:
                    findings.append(
                        Finding(
                            file=rel,
                            line=exc.lineno or 1,
                            rule="R100",
                            message=f"syntax error: {exc.msg}",
                            severity=Severity.ERROR,
                        )
                    )
                    continue
                cache.put(summary)
            summaries.append(summary)
    cache.prune({s.rel_path for s in summaries})
    cache.save()
    result.modules = len(summaries)
    result.summaries = summaries

    index = ProgramIndex(summaries)
    result.index = index
    by_module = {s.module: s for s in summaries}

    def is_waived(rule: str, module: str, line: int) -> bool:
        summary = by_module.get(module)
        if summary is None:
            return False
        waived = set(summary.waivers.get(line, []))
        aliases = WAIVER_ALIASES.get(rule, (rule,))
        return bool(waived.intersection(aliases))

    def is_excluded(rule: str, rel_path: str) -> bool:
        return config.rule_excluded(rule, rel_path)

    if config.rule_enabled("R101"):
        roots, missing = index.resolve_roots(config.roots)
        for spec in missing:
            findings.append(
                Finding(
                    file="pyproject.toml",
                    line=1,
                    rule="R100",
                    message=(
                        f"analysis root '{spec}' does not resolve to a "
                        "function or class in the analyzed tree"
                    ),
                    severity=Severity.WARNING,
                )
            )
        findings.extend(run_taint(index, roots, is_waived, is_excluded))

    units_tables, units_findings = _load_units(base, config)
    findings.extend(units_findings)
    if config.rule_enabled("R102"):
        findings.extend(
            run_units(index, units_tables, is_waived, is_excluded)
        )

    try:
        baseline = load_baseline(base / config.baseline)
    except BaselineError as exc:
        baseline = Baseline()
        findings.append(
            Finding(
                file=config.baseline,
                line=1,
                rule="R100",
                message=str(exc),
                severity=Severity.ERROR,
            )
        )
    result.baseline = baseline

    if config.rule_enabled("R103"):
        drift_findings, current_pairs = run_drift(
            summaries, baseline.pairs
        )
        result.current_pairs = current_pairs
        drift_findings = [
            f
            for f in drift_findings
            if not is_excluded(f.rule, f.file)
            and not any(
                is_waived(f.rule, s.module, f.line)
                for s in summaries
                if s.rel_path == f.file
            )
        ]
        findings.extend(drift_findings)
    else:
        # R103 off: keep the acknowledged hashes so --update-pairs
        # does not silently wipe them.
        result.current_pairs = dict(baseline.pairs)

    demoted = [
        dataclasses.replace(f, severity=Severity.WARNING)
        if f.rule in config.warn
        else f
        for f in findings
    ]
    result.raw_findings = sort_findings(demoted)

    fresh, matched, stale = apply_baseline(result.raw_findings, baseline)
    result.baselined = matched
    result.findings = sort_findings([*fresh, *stale])
    result.elapsed_seconds = time.perf_counter() - started  # lint: ok(R001)
    return result


def update_baseline_file(
    result: AnalysisResult,
    base: Path,
    config: AnalyzeConfig,
    update_findings: bool,
    update_pairs: bool,
) -> None:
    """Rewrite the committed baseline from this run's results.

    ``--update-baseline`` records every current finding *except* R103
    drift: drifted pairs must be fixed (or re-acknowledged via
    ``--update-pairs``), never silenced.
    """
    baseline = result.baseline
    if update_findings:
        baseline.findings = {
            f.fingerprint(): describe(f)
            for f in result.raw_findings
            if f.rule != "R103"
        }
    if update_pairs:
        baseline.pairs = dict(result.current_pairs)
    save_baseline(base / config.baseline, baseline)


# ---------------------------------------------------------------------------
# Command line


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the analyze flags (shared with the ``repro`` CLI)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: "
        "[tool.repro-analyze] paths from pyproject.toml)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format",
    )
    parser.add_argument(
        "--config", metavar="PYPROJECT", default=None,
        help="explicit pyproject.toml (default: nearest ancestor)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml; run built-in defaults",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the per-module summary cache (always re-parse)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to accept current findings "
        "(except R103 drift)",
    )
    parser.add_argument(
        "--update-pairs", action="store_true",
        help="re-acknowledge current dual-implementation pair hashes",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def run_analyze(args: argparse.Namespace) -> int:
    """Execute a parsed analyze invocation; returns the exit code."""
    if args.list_rules:
        for rule_id, summary in sorted(RULE_SUMMARIES.items()):
            print(f"{rule_id}  {summary}")
        return 0
    if args.no_config:
        config = AnalyzeConfig()
        base = Path.cwd()
    else:
        pyproject = (
            Path(args.config) if args.config else find_pyproject(Path.cwd())
        )
        config = load_analyze_config(pyproject)
        base = pyproject.parent if pyproject is not None else Path.cwd()
    unknown = [
        r
        for r in [*config.disable, *config.warn]
        if r not in RULE_SUMMARIES
    ]
    if unknown:
        print(
            "repro analyze: unknown rule id(s) in config: "
            f"{', '.join(unknown)}",
            file=sys.stderr,
        )
        return 2
    paths = list(args.paths) or [
        str(base / p) if not Path(p).is_absolute() else p
        for p in config.paths
    ]
    try:
        result = analyze_tree(
            paths, config, base=base, use_cache=not args.no_cache
        )
    except (FileNotFoundError, OSError) as exc:
        print(f"repro analyze: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline or args.update_pairs:
        update_baseline_file(
            result, base, config,
            update_findings=args.update_baseline,
            update_pairs=args.update_pairs,
        )
        # Re-run against the freshly written baseline so the report
        # reflects it; drift verdicts depend on the acknowledged pair
        # hashes, not just on finding fingerprints, and the second
        # pass is nearly free with a warm cache.
        result = analyze_tree(
            paths, config, base=base, use_cache=not args.no_cache
        )

    if args.format == "json":
        print(render_json(result.findings, result.stats()))
    elif args.format == "sarif":
        print(render_sarif(result.findings))
    else:
        print(render_text(result.findings, result.summary_line))
    has_errors = any(
        f.severity is Severity.ERROR for f in result.findings
    )
    return 1 if has_errors else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "whole-program determinism analysis (rules R100-R103)"
        ),
    )
    add_analyze_arguments(parser)
    return run_analyze(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
