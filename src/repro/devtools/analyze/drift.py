"""R103 — dual-implementation drift detection.

The repo keeps deliberately duplicated logic: ``FlowCall.run`` inlines
its reference methods for speed, and ``repro.flow.batch`` re-derives
the same math vectorized.  Runtime suites (``tests/test_flow_drift.py``,
``tests/test_flow_batch.py``) prove the sides agree *today*; this pass
makes an edit that touches one side and not the other fail statically,
before anyone waits on a test matrix.

Pairs are declared in-source with marker comments::

    # drift: pair(flow-single-stream) ref
    def _encode_frame(self) -> EncodedFrame:
        ...

A marker above a ``def`` (stackable, several pairs per function)
covers the whole function; elsewhere it opens a block closed by
``# drift: end``.  Each side's *hash* is the sha256 over its regions'
normalized-AST hashes — whitespace and comments don't count, semantic
edits do.  The committed baseline stores the acknowledged hash per
side; the rule fires when exactly one side moved (drift), when both
moved without re-acknowledgement, and on structural errors
(single-sided or unknown pairs, stale baseline entries).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro.devtools.analyze.model import Finding
from repro.devtools.analyze.symbols import DriftRegion, ModuleSummary
from repro.devtools.diagnostics import Severity

SIDES = ("impl", "ref")

#: pair name -> side -> list of (rel_path, region)
PairMap = Dict[str, Dict[str, List[Tuple[str, DriftRegion]]]]


def collect_pairs(summaries: List[ModuleSummary]) -> PairMap:
    pairs: PairMap = {}
    for summary in sorted(summaries, key=lambda s: s.rel_path):
        for region in summary.regions:
            side_map = pairs.setdefault(region.pair, {})
            side_map.setdefault(region.side, []).append(
                (summary.rel_path, region)
            )
    return pairs


def side_hash(regions: List[Tuple[str, DriftRegion]]) -> str:
    """Order-stable hash of one side: all region hashes, in file/line
    order, digested together."""
    ordered = sorted(regions, key=lambda item: (item[0], item[1].line))
    payload = "\n".join(
        f"{path}#{region.hash}" for path, region in ordered
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def current_pair_hashes(pairs: PairMap) -> Dict[str, Dict[str, str]]:
    return {
        name: {
            side: side_hash(regions)
            for side, regions in sorted(sides.items())
        }
        for name, sides in sorted(pairs.items())
    }


def _anchor(regions: List[Tuple[str, DriftRegion]]) -> Tuple[str, int]:
    path, region = sorted(
        regions, key=lambda item: (item[0], item[1].line)
    )[0]
    return path, region.line


def run_drift(
    summaries: List[ModuleSummary],
    acknowledged: Dict[str, Dict[str, str]],
) -> Tuple[List[Finding], Dict[str, Dict[str, str]]]:
    """Compare declared pairs against acknowledged hashes.

    Returns (findings, current-hashes).  ``current-hashes`` is what
    ``--update-pairs`` writes back into the baseline.
    """
    findings: List[Finding] = []

    for summary in summaries:
        for line, message in summary.marker_errors:
            findings.append(
                Finding(
                    file=summary.rel_path,
                    line=line,
                    rule="R100",
                    message=f"drift marker error: {message}",
                    severity=Severity.ERROR,
                )
            )

    pairs = collect_pairs(summaries)
    current = current_pair_hashes(pairs)

    for name in sorted(pairs):
        sides = pairs[name]
        missing = [side for side in SIDES if side not in sides]
        if missing:
            present = [side for side in SIDES if side in sides]
            path, line = _anchor(sides[present[0]])
            findings.append(
                Finding(
                    file=path,
                    line=line,
                    rule="R103",
                    message=(
                        f"pair '{name}' declares only its "
                        f"'{present[0]}' side; add the matching "
                        f"'{missing[0]}' marker(s)"
                    ),
                    severity=Severity.ERROR,
                )
            )
            continue

        known = acknowledged.get(name)
        if known is None:
            path, line = _anchor(sides["impl"])
            findings.append(
                Finding(
                    file=path,
                    line=line,
                    rule="R103",
                    message=(
                        f"pair '{name}' is not acknowledged in the "
                        "baseline; verify both sides agree at runtime "
                        "(tests/test_flow_drift.py and friends), then "
                        "run `repro analyze --update-pairs`"
                    ),
                    severity=Severity.ERROR,
                )
            )
            continue

        changed = [
            side
            for side in SIDES
            if current[name].get(side) != known.get(side)
        ]
        if len(changed) == 1:
            moved = changed[0]
            frozen = SIDES[0] if moved == SIDES[1] else SIDES[1]
            path, line = _anchor(sides[moved])
            findings.append(
                Finding(
                    file=path,
                    line=line,
                    rule="R103",
                    message=(
                        f"pair '{name}' drifted: its '{moved}' side "
                        f"changed but its '{frozen}' side did not; "
                        "apply the matching edit to the other side "
                        "(the runtime equivalence suite pins them "
                        "byte-identical), then run "
                        "`repro analyze --update-pairs`"
                    ),
                    severity=Severity.ERROR,
                )
            )
        elif len(changed) == 2:
            path, line = _anchor(sides["impl"])
            findings.append(
                Finding(
                    file=path,
                    line=line,
                    rule="R103",
                    message=(
                        f"pair '{name}': both sides changed since last "
                        "acknowledgement; re-run the runtime "
                        "equivalence suite, then `repro analyze "
                        "--update-pairs` to re-acknowledge"
                    ),
                    severity=Severity.ERROR,
                )
            )

    for name in sorted(acknowledged):
        if name not in pairs:
            findings.append(
                Finding(
                    file=".repro-analyze-baseline.json",
                    line=1,
                    rule="R103",
                    message=(
                        f"baseline acknowledges pair '{name}' but no "
                        "such markers exist in the tree; remove the "
                        "entry with `repro analyze --update-pairs`"
                    ),
                    severity=Severity.ERROR,
                )
            )

    return findings, current
