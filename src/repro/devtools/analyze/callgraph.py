"""Whole-program index and call graph over module summaries.

The :class:`ProgramIndex` stitches per-module summaries
(:mod:`.symbols`) into package-wide tables, then resolves every
recorded call site to concrete in-package functions:

* exact resolution when the receiver is typed — ``self`` methods (with
  inheritance and subclass overrides, since dispatch may land in
  either), ``self.attr`` via recorded attribute types, annotated or
  constructor-assigned locals, module-alias and from-import names;
* a *conservative fallback* for untyped attribute calls: the callee
  name is matched against every in-package method of that name, except
  ubiquitous container-protocol names (``get``, ``append``, ...) which
  would only produce noise edges.

Function references passed as call arguments (``sim.schedule(...,
self._on_tick)``) become "ref" edges — this is how the event loop's
dynamic ``event.callback()`` dispatch stays visible to the taint pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.devtools.analyze.symbols import (
    FALLBACK_BLOCKLIST,
    CallSite,
    FunctionInfo,
    ModuleSummary,
    strip_type_text,
)


@dataclass(frozen=True)
class Edge:
    """One resolved call-graph edge."""

    caller: str  # full qualname "repro.flow.session.FlowCall.run"
    callee: str
    line: int  # call-site line in the caller's file
    kind: str  # "call" (strict), "fallback" (by-name), "ref" (argument)


class ProgramIndex:
    """Package-wide symbol tables + call graph."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        #: full function qualname -> (owning summary, info)
        self.functions: Dict[str, Tuple[ModuleSummary, FunctionInfo]] = {}
        #: full class qualname -> owning summary
        self.classes: Dict[str, ModuleSummary] = {}
        self.class_short: Dict[str, List[str]] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        self.bases: Dict[str, List[str]] = {}
        self.subclasses: Dict[str, List[str]] = {}
        self.edges: Dict[str, List[Edge]] = {}

        for summary in summaries:
            self.modules[summary.module] = summary
            for qualname, info in summary.functions.items():
                full = f"{summary.module}.{qualname}"
                self.functions[full] = (summary, info)
                if info.class_name is not None:
                    self.methods_by_name.setdefault(info.name, []).append(
                        full
                    )
            for class_name in summary.classes:
                full = f"{summary.module}.{class_name}"
                self.classes[full] = summary
                short = class_name.split(".")[-1]
                self.class_short.setdefault(short, []).append(full)

        self._link_hierarchy()
        self._build_edges()

    # -- hierarchy ---------------------------------------------------------

    def _link_hierarchy(self) -> None:
        for full, summary in self.classes.items():
            class_name = full[len(summary.module) + 1:]
            info = summary.classes[class_name]
            resolved: List[str] = []
            for base in info.bases:
                base_full = self._resolve_type_text(summary, base)
                if base_full is not None:
                    resolved.append(base_full)
            self.bases[full] = resolved
            for base_full in resolved:
                self.subclasses.setdefault(base_full, []).append(full)

    def _resolve_type_text(
        self, summary: ModuleSummary, text: Optional[str]
    ) -> Optional[str]:
        """Resolve an annotation/base-class text to a full class name."""
        text = strip_type_text(text)
        if text is None:
            return None
        parts = text.split(".")
        root = parts[0]
        candidates: List[str] = []
        if len(parts) == 1:
            candidates.append(f"{summary.module}.{text}")
        if root in summary.symbol_aliases:
            candidates.append(
                ".".join([summary.symbol_aliases[root], *parts[1:]])
            )
        if root in summary.module_aliases:
            candidates.append(
                ".".join([summary.module_aliases[root], *parts[1:]])
            )
        candidates.append(text)
        for candidate in candidates:
            if candidate in self.classes:
                return candidate
        if len(parts) == 1:
            shorts = self.class_short.get(text, [])
            if len(shorts) == 1:
                return shorts[0]
        return None

    def _ancestors(self, cls: str) -> List[str]:
        """``cls`` plus transitive bases, breadth-first, deduplicated."""
        out: List[str] = []
        seen: Set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            queue.extend(self.bases.get(current, []))
        return out

    def _descendants(self, cls: str) -> List[str]:
        out: List[str] = []
        seen: Set[str] = set()
        queue = list(self.subclasses.get(cls, []))
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            queue.extend(self.subclasses.get(current, []))
        return out

    def resolve_method(self, cls: str, name: str) -> List[str]:
        """Targets of ``instance_of_cls.name()``: the first definition up
        the inheritance chain, plus every subclass override (dynamic
        dispatch may land in either)."""
        targets: List[str] = []
        for ancestor in self._ancestors(cls):
            key = f"{ancestor}.{name}"
            if key in self.functions:
                targets.append(key)
                break
        for descendant in self._descendants(cls):
            key = f"{descendant}.{name}"
            if key in self.functions and key not in targets:
                targets.append(key)
        return targets

    def _attr_type(
        self, summary: ModuleSummary, cls: str, attr: str
    ) -> Optional[str]:
        for ancestor in self._ancestors(cls):
            owner = self.classes.get(ancestor)
            if owner is None:
                continue
            class_name = ancestor[len(owner.module) + 1:]
            info = owner.classes.get(class_name)
            if info is not None and attr in info.attr_types:
                return self._resolve_type_text(owner, info.attr_types[attr])
        return None

    # -- call resolution ---------------------------------------------------

    def _class_targets(self, cls: str) -> List[str]:
        """Calling a class: edge into its ``__init__`` (if defined)."""
        return self.resolve_method(cls, "__init__")

    def _resolve_dotted(
        self, summary: ModuleSummary, parts: List[str]
    ) -> List[str]:
        """Strictly resolve a dotted name rooted at an import alias or a
        same-module symbol.  Returns full function qualnames."""
        root = parts[0]
        bases: List[str] = []
        if len(parts) == 1:
            local = f"{summary.module}.{root}"
            if local in self.functions:
                return [local]
            if local in self.classes:
                return self._class_targets(local)
        if root in summary.symbol_aliases:
            bases.append(summary.symbol_aliases[root])
        if root in summary.module_aliases:
            bases.append(summary.module_aliases[root])
        if len(parts) == 1 and not bases:
            return []
        for base in bases:
            full = ".".join([base, *parts[1:]])
            if full in self.functions:
                return [full]
            if full in self.classes:
                return self._class_targets(full)
            if base in self.classes and len(parts) == 2:
                targets = self.resolve_method(base, parts[1])
                if targets:
                    return targets
            if len(parts) >= 3:
                cls = ".".join([base, *parts[1:-1]])
                if cls in self.classes:
                    targets = self.resolve_method(cls, parts[-1])
                    if targets:
                        return targets
        return []

    def resolve_call(
        self, summary: ModuleSummary, caller: FunctionInfo, site: CallSite
    ) -> List[Tuple[str, str]]:
        """Resolve one call site to [(callee, kind)] pairs."""
        parts = site.raw.split(".")
        name = parts[-1]

        if site.recv_kind == "self" and caller.class_name is not None:
            cls = f"{summary.module}.{caller.class_name}"
            targets = self.resolve_method(cls, name)
            if targets:
                return [(t, "call") for t in targets]
        elif site.recv_kind == "selfattr" and caller.class_name is not None:
            cls = f"{summary.module}.{caller.class_name}"
            if site.recv_info is not None:
                attr_cls = self._attr_type(summary, cls, site.recv_info)
                if attr_cls is not None:
                    targets = self.resolve_method(attr_cls, name)
                    if targets:
                        return [(t, "call") for t in targets]
        elif site.recv_kind == "var":
            attr_cls = self._resolve_type_text(summary, site.recv_info)
            if attr_cls is not None:
                targets = self.resolve_method(attr_cls, name)
                if targets:
                    return [(t, "call") for t in targets]

        if site.recv_kind is None:
            targets = self._resolve_dotted(summary, parts)
            if targets:
                return [(t, "call") for t in targets]

        # Conservative fallback: untyped attribute call — link by
        # method name unless it is a ubiquitous container-protocol name.
        if len(parts) > 1 and name not in FALLBACK_BLOCKLIST:
            return [
                (t, "fallback")
                for t in self.methods_by_name.get(name, [])
            ]
        return []

    def resolve_ref(
        self, summary: ModuleSummary, caller: FunctionInfo, display: str
    ) -> List[str]:
        """Strictly resolve a function *reference* (call argument)."""
        parts = display.split(".")
        if (
            parts[0] == "self"
            and len(parts) == 2
            and caller.class_name is not None
        ):
            cls = f"{summary.module}.{caller.class_name}"
            return self.resolve_method(cls, parts[1])
        targets = self._resolve_dotted(summary, parts)
        return targets

    # -- edge construction -------------------------------------------------

    def _build_edges(self) -> None:
        for full, (summary, info) in self.functions.items():
            edges: List[Edge] = []
            for site in info.calls:
                for callee, kind in self.resolve_call(summary, info, site):
                    edges.append(
                        Edge(
                            caller=full,
                            callee=callee,
                            line=site.line,
                            kind=kind,
                        )
                    )
                for display in [*site.args, *site.kwargs.values()]:
                    if display is None or display == site.raw:
                        continue
                    for callee in self.resolve_ref(summary, info, display):
                        edges.append(
                            Edge(
                                caller=full,
                                callee=callee,
                                line=site.line,
                                kind="ref",
                            )
                        )
            self.edges[full] = edges

    # -- roots -------------------------------------------------------------

    def resolve_roots(
        self, specs: Sequence[str]
    ) -> Tuple[List[str], List[str]]:
        """Resolve root specs (functions or classes) to function keys.

        A class spec roots every method the class itself defines.
        Returns (resolved, unmatched-specs).
        """
        resolved: List[str] = []
        missing: List[str] = []
        for spec in specs:
            if spec in self.functions:
                resolved.append(spec)
                continue
            if spec in self.classes:
                summary = self.classes[spec]
                class_name = spec[len(summary.module) + 1:]
                info = summary.classes[class_name]
                for method in info.methods:
                    key = f"{spec}.{method}"
                    if key in self.functions:
                        resolved.append(key)
                continue
            missing.append(spec)
        # Deterministic, deduplicated order.
        seen: Set[str] = set()
        unique = [
            key for key in resolved
            if not (key in seen or seen.add(key))
        ]
        return unique, missing

    def location_of(self, full: str) -> Tuple[str, int, str]:
        """(file, line, display label) for a function key."""
        summary, info = self.functions[full]
        label = f"{summary.module}.{info.qualname}"
        return summary.rel_path, info.line, label
