"""Report rendering for ``repro analyze``: text, JSON and SARIF.

SARIF output targets the 2.1.0 schema so CI systems (GitHub code
scanning included) can ingest the findings directly; taint call chains
are rendered as ``relatedLocations`` (root first, sink last) and every
result carries the same stable fingerprint the baseline file uses.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.devtools.analyze.model import RULE_SUMMARIES, Finding
from repro.devtools.diagnostics import Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-analyze"
TOOL_VERSION = "1.0.0"
FINGERPRINT_KEY = "reproAnalyze/v1"


def render_text(
    findings: Sequence[Finding],
    summary_line: str,
) -> str:
    lines = [finding.format() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        lines.append(
            f"repro analyze: {errors} error(s), {warnings} warning(s)"
        )
    else:
        lines.append("repro analyze: clean")
    lines.append(summary_line)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    stats: Dict[str, Any],
) -> str:
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    payload = {
        "tool": TOOL_NAME,
        "errors": errors,
        "warnings": len(findings) - errors,
        "findings": [f.to_dict() for f in findings],
        "stats": stats,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_location(
    file: str, line: int, text: str = ""
) -> Dict[str, Any]:
    location: Dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": file},
            "region": {"startLine": max(line, 1)},
        }
    }
    if text:
        location["message"] = {"text": text}
    return location


def sarif_document(findings: Sequence[Finding]) -> Dict[str, Any]:
    """Build the SARIF 2.1.0 document as a plain dict."""
    rules = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": summary},
        }
        for rule_id, summary in sorted(RULE_SUMMARIES.items())
    ]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": (
                "error"
                if finding.severity is Severity.ERROR
                else "warning"
            ),
            "message": {"text": finding.message},
            "locations": [_sarif_location(finding.file, finding.line)],
            "fingerprints": {FINGERPRINT_KEY: finding.fingerprint()},
        }
        if finding.chain:
            result["relatedLocations"] = [
                _sarif_location(step.file, step.line, step.label)
                for step in finding.chain
            ]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    return json.dumps(sarif_document(findings), indent=2, sort_keys=True)
