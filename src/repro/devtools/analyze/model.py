"""Finding model for the whole-program analyzer.

The interprocedural rules (R101-R103, see DEVTOOLS.md) need more than
the linter's file/line/message triple: a taint finding carries the full
source-to-sink call chain, and every finding carries a *stable
fingerprint* so the committed baseline file keeps matching it across
unrelated edits (fingerprints deliberately exclude line numbers).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.devtools.diagnostics import Severity

#: Rule identifiers, kept stable for SARIF consumers and baselines.
RULE_SUMMARIES: Dict[str, str] = {
    "R100": "analysis configuration or marker error",
    "R101": "nondeterminism source reachable from a simulation core",
    "R102": "unit mismatch across a function boundary",
    "R103": "dual-implementation pair drifted",
}

#: Legacy per-line waiver ids honoured by each interprocedural rule: a
#: deliberate wall-clock read waived for the local linter (R001) must
#: not re-fire through the whole-program view of the same invariant.
WAIVER_ALIASES: Dict[str, Tuple[str, ...]] = {
    "R100": ("R100",),
    "R101": ("R101", "R001", "R002"),
    "R102": ("R102", "R003"),
    "R103": ("R103",),
}


@dataclass(frozen=True)
class Location:
    """One step of a call chain: a function (or call site) in a file."""

    file: str
    line: int
    label: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"file": self.file, "line": self.line, "label": self.label}


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, optionally carrying a call chain.

    ``chain`` runs from the analysis root (e.g. ``Simulator.run``) to
    the function containing the sink; the finding's own ``file:line``
    is the sink itself.
    """

    file: str
    line: int
    rule: str
    message: str
    severity: Severity = Severity.ERROR
    chain: Tuple[Location, ...] = field(default_factory=tuple)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes line numbers (and the chain, which embeds
        them): adding an import must not invalidate the baseline.
        Messages are written line-free for the same reason.
        """
        payload = f"{self.rule}|{self.file}|{self.message}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    def format(self) -> str:
        head = (
            f"{self.file}:{self.line}: {self.rule} "
            f"[{self.severity.value}] {self.message}"
        )
        if not self.chain:
            return head
        steps = "\n".join(
            f"    {'->' if i else '  '} {loc.label} ({loc.file}:{loc.line})"
            for i, loc in enumerate(self.chain)
        )
        return f"{head}\n{steps}"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity.value,
            "fingerprint": self.fingerprint(),
        }
        if self.chain:
            payload["chain"] = [loc.to_dict() for loc in self.chain]
        return payload


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic report order: file, line, rule, message."""
    return sorted(
        findings, key=lambda f: (f.file, f.line, f.rule, f.message)
    )
