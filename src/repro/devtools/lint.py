"""The ``repro lint`` engine and command line.

Usage::

    repro lint [paths ...] [--format text|json] [--list-rules]
    python -m repro.devtools.lint src/repro

Runs the simulation-safety rules (R001-R007, see
:mod:`repro.devtools.rules` and DEVTOOLS.md) over every ``.py`` file
under the given paths (default: the ``paths`` key of
``[tool.repro-lint]`` in the nearest ``pyproject.toml``).  A finding on
a line carrying ``# lint: ok(Rxxx)`` is waived.  Exit code 0 means no
error-severity findings; 1 means at least one; 2 means the invocation
itself failed (unreadable path, unknown rule).
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Type

from repro.devtools.config import LintConfig, find_pyproject, load_config
from repro.devtools.diagnostics import Diagnostic, Severity
from repro.devtools.rules import ALL_RULES, RULES_BY_ID, Rule, run_rules

# ``# lint: ok(R003)`` or ``# lint: ok(R003, R006)`` waives those rules
# on the line the comment sits on.
_WAIVER_PATTERN = re.compile(r"#\s*lint:\s*ok\(([^)]*)\)")


def parse_waivers(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule IDs waived on that line."""
    waivers: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _WAIVER_PATTERN.search(line)
        if match:
            rules = {
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            }
            if rules:
                waivers[lineno] = rules
    return waivers


def _enabled_rules(
    config: LintConfig, rel_path: str
) -> List[Type[Rule]]:
    enabled: List[Type[Rule]] = []
    for rule_class in ALL_RULES:
        rule_id = rule_class.rule_id
        if not config.rule_enabled(rule_id):
            continue
        if config.rule_excluded(rule_id, rel_path):
            continue
        if rule_id == "R005" and not config.is_slots_module(rel_path):
            continue
        enabled.append(rule_class)
    return enabled


def lint_source(
    source: str,
    rel_path: str,
    config: Optional[LintConfig] = None,
) -> List[Diagnostic]:
    """Lint one file's text; ``rel_path`` is used for config matching."""
    config = config if config is not None else LintConfig()
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                file=rel_path,
                line=exc.lineno or 1,
                rule="R000",
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
            )
        ]
    diagnostics = run_rules(
        tree, rel_path, _enabled_rules(config, rel_path), config.warn
    )
    waivers = parse_waivers(source)
    if not waivers:
        return diagnostics
    return [
        diagnostic
        for diagnostic in diagnostics
        if diagnostic.rule not in waivers.get(diagnostic.line, set())
    ]


def _iter_python_files(root: Path) -> List[Path]:
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
        and not any(part.startswith(".") for part in path.parts)
    )


def _display_path(path: Path, base: Path) -> str:
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    base: Optional[Path] = None,
) -> List[Diagnostic]:
    """Lint every ``.py`` file under ``paths``; diagnostics sorted."""
    config = config if config is not None else LintConfig()
    base = base if base is not None else Path.cwd()
    diagnostics: List[Diagnostic] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"no such path: {raw}")
        for file_path in _iter_python_files(root):
            rel = _display_path(file_path, base)
            source = file_path.read_text(encoding="utf-8")
            diagnostics.extend(lint_source(source, rel, config))
    diagnostics.sort(key=lambda d: (d.file, d.line, d.rule))
    return diagnostics


def _print_text(diagnostics: Sequence[Diagnostic]) -> None:
    for diagnostic in diagnostics:
        print(diagnostic.format())
    errors = sum(
        1 for d in diagnostics if d.severity is Severity.ERROR
    )
    warnings = len(diagnostics) - errors
    if diagnostics:
        print(f"repro lint: {errors} error(s), {warnings} warning(s)")
    else:
        print("repro lint: clean")


def _print_json(diagnostics: Sequence[Diagnostic]) -> None:
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    payload = {
        "tool": "repro-lint",
        "errors": errors,
        "warnings": len(diagnostics) - errors,
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    print(json.dumps(payload, indent=2, sort_keys=True))


def _print_rules() -> None:
    for rule_class in ALL_RULES:
        print(f"{rule_class.rule_id}  {rule_class.summary}")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint flags (shared with the ``repro lint`` CLI)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: [tool.repro-lint] "
        "paths from pyproject.toml)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format",
    )
    parser.add_argument(
        "--config", metavar="PYPROJECT", default=None,
        help="explicit pyproject.toml (default: nearest ancestor)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml; run built-in defaults",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        _print_rules()
        return 0
    if args.no_config:
        config = LintConfig()
        base = Path.cwd()
    else:
        pyproject = (
            Path(args.config) if args.config else find_pyproject(Path.cwd())
        )
        config = load_config(pyproject)
        base = pyproject.parent if pyproject is not None else Path.cwd()
    paths = list(args.paths) or [
        str(base / p) if not Path(p).is_absolute() else p
        for p in config.paths
    ]
    unknown = [r for r in [*config.disable, *config.warn]
               if r not in RULES_BY_ID and r != "R000"]
    if unknown:
        print(
            f"repro lint: unknown rule id(s) in config: {', '.join(unknown)}",
            file=sys.stderr,
        )
        return 2
    try:
        diagnostics = lint_paths(paths, config, base=base)
    except (FileNotFoundError, OSError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        _print_json(diagnostics)
    else:
        _print_text(diagnostics)
    has_errors = any(d.severity is Severity.ERROR for d in diagnostics)
    return 1 if has_errors else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simulation-safety static analysis (rules R001-R007)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
