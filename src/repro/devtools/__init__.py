"""Static-analysis tooling for the simulator's own invariants.

The correctness of this reproduction rests on properties no generic
linter checks: byte-identical determinism of the event loop, seeded-RNG
discipline in the process-pool runner, and consistent time/size units
across the GCC and scheduler math.  :mod:`repro.devtools.lint` enforces
them as AST-level rules (R001-R007) runnable as ``repro lint`` or
``python -m repro.devtools.lint``; see DEVTOOLS.md for the rule
catalogue and waiver syntax.
"""

from typing import Any

from repro.devtools.diagnostics import Diagnostic, Severity

__all__ = ["Diagnostic", "Severity", "lint_paths", "lint_source"]


def __getattr__(name: str) -> Any:
    # Lazy re-export: importing the package must not pre-import the
    # lint module, or `python -m repro.devtools.lint` trips runpy's
    # found-in-sys.modules warning.
    if name in ("lint_paths", "lint_source"):
        from repro.devtools import lint

        return getattr(lint, name)
    raise AttributeError(name)
