"""Configuration for ``repro lint``, read from ``pyproject.toml``.

The ``[tool.repro-lint]`` block controls which rules run where::

    [tool.repro-lint]
    paths = ["src/repro"]          # default lint targets
    disable = []                   # rule IDs switched off entirely
    warn = []                      # rule IDs demoted to warnings

    [tool.repro-lint.exclude]
    # Per-rule glob patterns (matched against /-separated paths).
    R001 = ["src/repro/simulation/profiling.py", "benchmarks/*"]

    [tool.repro-lint.slots-modules]
    # R005 only applies inside these modules.
    patterns = ["src/repro/simulation/events.py"]

TOML parsing uses :mod:`tomllib` (Python 3.11+) and degrades
gracefully: on older interpreters without ``tomli`` the built-in
defaults below — which mirror the repository's pyproject block — are
used instead, so the linter's verdict on this tree is identical either
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Dict, List, Optional

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - 3.9/3.10 fallback
    try:
        import tomli as _toml  # type: ignore[import-not-found,no-redef]
    except ImportError:
        _toml = None  # type: ignore[assignment]

# Built-in defaults, kept in sync with [tool.repro-lint] in
# pyproject.toml so a missing TOML parser does not change the verdict.
DEFAULT_PATHS = ["src/repro"]
DEFAULT_EXCLUDE: Dict[str, List[str]] = {
    # Wall-clock reads are the *job* of the profiling module, the
    # runner's wall/cache statistics, and the result cache's age
    # accounting; everything else must use Simulator.now.
    "R001": [
        "src/repro/simulation/profiling.py",
        "benchmarks/*",
    ],
    # The seeded-stream factory is the one place the stdlib RNG is
    # constructed.
    "R002": ["src/repro/simulation/random.py"],
}
DEFAULT_SLOTS_MODULES = [
    "src/repro/simulation/events.py",
    "src/repro/rtp/packets.py",
    "src/repro/net/path.py",
    "src/repro/receiver/packet_buffer.py",
]


@dataclass
class LintConfig:
    """Resolved configuration the rule engine consumes."""

    paths: List[str] = field(default_factory=lambda: list(DEFAULT_PATHS))
    disable: List[str] = field(default_factory=list)
    warn: List[str] = field(default_factory=list)
    exclude: Dict[str, List[str]] = field(
        default_factory=lambda: {k: list(v) for k, v in DEFAULT_EXCLUDE.items()}
    )
    slots_modules: List[str] = field(
        default_factory=lambda: list(DEFAULT_SLOTS_MODULES)
    )

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disable

    def rule_excluded(self, rule_id: str, rel_path: str) -> bool:
        """True when ``rel_path`` matches an exclude pattern for the rule."""
        return any(
            _path_match(rel_path, pattern)
            for pattern in self.exclude.get(rule_id, [])
        )

    def is_slots_module(self, rel_path: str) -> bool:
        return any(
            _path_match(rel_path, pattern) for pattern in self.slots_modules
        )


def _path_match(rel_path: str, pattern: str) -> bool:
    """Glob-match on /-separated paths; also accept suffix matches.

    ``src/repro/net/path.py`` matches both the full pattern and the
    bare ``net/path.py`` form, so configs stay readable and lint runs
    from any working directory agree.
    """
    path = rel_path.replace("\\", "/")
    if fnmatch(path, pattern) or fnmatch(path, f"*/{pattern}"):
        return True
    return False


def _as_str_list(value: Any) -> List[str]:
    if isinstance(value, list):
        return [str(item) for item in value]
    if isinstance(value, str):
        return [value]
    return []


def config_from_dict(data: Dict[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed ``[tool.repro-lint]``."""
    config = LintConfig()
    if "paths" in data:
        config.paths = _as_str_list(data["paths"])
    if "disable" in data:
        config.disable = _as_str_list(data["disable"])
    if "warn" in data:
        config.warn = _as_str_list(data["warn"])
    if "exclude" in data and isinstance(data["exclude"], dict):
        config.exclude = {
            str(rule): _as_str_list(patterns)
            for rule, patterns in data["exclude"].items()
        }
    slots = data.get("slots-modules")
    if isinstance(slots, dict):
        config.slots_modules = _as_str_list(slots.get("patterns", []))
    elif slots is not None:
        config.slots_modules = _as_str_list(slots)
    return config


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: Optional[Path]) -> LintConfig:
    """Load ``[tool.repro-lint]`` from ``pyproject``, else defaults."""
    if pyproject is None or _toml is None or not pyproject.is_file():
        return LintConfig()
    with open(pyproject, "rb") as handle:
        data = _toml.load(handle)
    section = data.get("tool", {}).get("repro-lint")
    if not isinstance(section, dict):
        return LintConfig()
    return config_from_dict(section)


# ---------------------------------------------------------------------------
# [tool.repro-analyze] — whole-program analyzer (repro analyze)


#: Simulation cores the taint pass (R101) walks from.  A class spec
#: roots every method it defines.
DEFAULT_ANALYZE_ROOTS = [
    "repro.simulation.simulator.Simulator.run",
    "repro.flow.session.FlowCall",
    "repro.flow.batch._BatchFlowRun",
    "repro.core.api.run_call",
]
DEFAULT_ANALYZE_EXCLUDE: Dict[str, List[str]] = {
    # Same deliberate wall-clock surfaces the linter excludes.
    "R101": [
        "src/repro/simulation/profiling.py",
        "benchmarks/*",
    ],
}


@dataclass
class AnalyzeConfig:
    """Resolved ``[tool.repro-analyze]`` configuration."""

    paths: List[str] = field(default_factory=lambda: list(DEFAULT_PATHS))
    roots: List[str] = field(
        default_factory=lambda: list(DEFAULT_ANALYZE_ROOTS)
    )
    disable: List[str] = field(default_factory=list)
    warn: List[str] = field(default_factory=list)
    exclude: Dict[str, List[str]] = field(
        default_factory=lambda: {
            k: list(v) for k, v in DEFAULT_ANALYZE_EXCLUDE.items()
        }
    )
    units: str = "units.toml"
    baseline: str = ".repro-analyze-baseline.json"
    cache: str = ".repro-analyze-cache.json"

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disable

    def rule_excluded(self, rule_id: str, rel_path: str) -> bool:
        return any(
            _path_match(rel_path, pattern)
            for pattern in self.exclude.get(rule_id, [])
        )


def analyze_config_from_dict(data: Dict[str, Any]) -> AnalyzeConfig:
    """Build an :class:`AnalyzeConfig` from ``[tool.repro-analyze]``."""
    config = AnalyzeConfig()
    if "paths" in data:
        config.paths = _as_str_list(data["paths"])
    if "roots" in data:
        config.roots = _as_str_list(data["roots"])
    if "disable" in data:
        config.disable = _as_str_list(data["disable"])
    if "warn" in data:
        config.warn = _as_str_list(data["warn"])
    if "exclude" in data and isinstance(data["exclude"], dict):
        config.exclude = {
            str(rule): _as_str_list(patterns)
            for rule, patterns in data["exclude"].items()
        }
    for key in ("units", "baseline", "cache"):
        if key in data:
            setattr(config, key, str(data[key]))
    return config


def load_analyze_config(pyproject: Optional[Path]) -> AnalyzeConfig:
    """Load ``[tool.repro-analyze]`` from ``pyproject``, else defaults."""
    if pyproject is None or _toml is None or not pyproject.is_file():
        return AnalyzeConfig()
    with open(pyproject, "rb") as handle:
        data = _toml.load(handle)
    section = data.get("tool", {}).get("repro-analyze")
    if not isinstance(section, dict):
        return AnalyzeConfig()
    return analyze_config_from_dict(section)
