"""Terminal plotting: sparklines, bar charts, block time-series.

No matplotlib in the sandbox; these render well enough in any terminal
to eyeball the Fig. 9/11 time series and the Fig. 14 bars.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_BAR_CHAR = "█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line unicode sparkline of ``values``.

    ``width`` resamples the series to that many columns (mean-pooled).
    """
    if not values:
        return ""
    data = list(values)
    if width is not None and width > 0 and len(data) > width:
        data = _resample(data, width)
    lo, hi = min(data), max(data)
    span = hi - lo
    if span == 0:
        return _SPARK_LEVELS[0] * len(data)
    out = []
    for v in data:
        level = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def _resample(data: List[float], width: int) -> List[float]:
    """Mean-pool ``data`` down to ``width`` buckets."""
    out = []
    n = len(data)
    for i in range(width):
        start = i * n // width
        end = max((i + 1) * n // width, start + 1)
        bucket = data[start:end]
        out.append(sum(bucket) / len(bucket))
    return out


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart; one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return ""
    peak = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = _BAR_CHAR * max(int(value / peak * width), 0)
        lines.append(
            f"{label.ljust(label_width)}  {bar} {value:.3f}{unit}"
        )
    return "\n".join(lines)


def render_series(
    samples: Sequence[Tuple[float, float]],
    height: int = 8,
    width: int = 72,
    title: str = "",
) -> str:
    """Multi-row block chart of a (time, value) series."""
    if not samples:
        return title
    values = _resample([v for _, v in samples], width)
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    rows = []
    for row in range(height, 0, -1):
        threshold = lo + span * (row - 0.5) / height
        line = "".join(_BAR_CHAR if v >= threshold else " " for v in values)
        rows.append(line)
    t0, t1 = samples[0][0], samples[-1][0]
    header = f"{title}  [{lo:.2f} .. {hi:.2f}]" if title else f"[{lo:.2f} .. {hi:.2f}]"
    footer = f"t={t0:.0f}s{' ' * max(width - 16, 1)}t={t1:.0f}s"
    return "\n".join([header, *rows, footer])
