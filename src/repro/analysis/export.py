"""JSON export of call results and runner reports."""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Union

from repro.core.session import CallResult
from repro.metrics.collector import TimeSeries
from repro.metrics.recovery import compute_churn_recovery, compute_recovery

if TYPE_CHECKING:  # deferred: the runner itself imports this module
    from repro.experiments.runner import RunReport


def result_to_dict(result: CallResult) -> Dict[str, Any]:
    """Flatten a :class:`CallResult` into JSON-serializable data.

    Includes the full QoE summary, the time series the experiments
    plot, and per-path send accounting — everything needed to redraw
    the paper's figures outside this package.
    """
    summary = result.summary
    metrics = result.metrics
    payload: Dict[str, Any] = {
        "label": result.label,
        "config": {
            "system": result.config.system.value,
            "fec_mode": result.config.fec_mode.value,
            "duration": result.config.duration,
            "num_streams": result.config.num_streams,
            "seed": result.config.seed,
            "qoe_feedback_enabled": result.config.qoe_feedback_enabled,
        },
        "summary": {
            "frames_rendered": summary.frames_rendered,
            "average_fps": summary.average_fps,
            "throughput_bps": summary.throughput_bps,
            "e2e_mean": summary.e2e_mean,
            "e2e_std": summary.e2e_std,
            "e2e_p95": summary.e2e_p95,
            "freeze_count": summary.freeze.count,
            "freeze_total": summary.freeze.total_duration,
            "freeze_mean": summary.freeze.mean_duration,
            "average_qp": summary.average_qp,
            "average_psnr": summary.average_psnr,
            "psnr_samples": list(summary.psnr_samples),
            "fec_overhead": summary.fec_overhead,
            "fec_utilization": summary.fec_utilization,
            "frame_drops": summary.frame_drops,
            "keyframe_requests": summary.keyframe_requests,
        },
        "series": {
            "receive_rate": _series(metrics.receive_rate_series),
            "target_rate": _series(metrics.target_rate_series),
            "ifd": _series(metrics.ifd_series),
            "fcd": _series(metrics.fcd_series),
            "fps": _series(metrics.fps_series(result.config.duration)),
            "path_rates": {
                str(path_id): _series(series)
                for path_id, series in metrics.path_rate_series.items()
            },
        },
        "paths": {
            str(path_id): {
                "media_packets": record.media_packets,
                "media_bytes": record.media_bytes,
                "fec_packets": record.fec_packets,
                "fec_bytes": record.fec_bytes,
                "rtx_packets": record.rtx_packets,
                "rtx_bytes": record.rtx_bytes,
            }
            for path_id, record in metrics.path_sends.items()
        },
        "events": {
            "keyframe_requests": metrics.keyframe_requests,
            "feedback": metrics.feedback_events,
            "path_events": [
                {"time": time, "path_id": path_id, "event": event}
                for time, path_id, event in metrics.path_events
            ],
        },
        "faults": {
            "injected": [
                {
                    "kind": fault.kind,
                    "path_id": fault.path_id,
                    "start": fault.start,
                    "end": fault.end,
                }
                for fault in metrics.fault_events
            ],
            "recovery": [
                {
                    "kind": r.fault.kind,
                    "path_id": r.fault.path_id,
                    "start": r.fault.start,
                    "end": r.fault.end,
                    "reenable_time": r.reenable_time,
                    "rate_recovery_time": r.rate_recovery_time,
                    "qoe_recovery_time": r.qoe_recovery_time,
                    "recovered": r.recovered,
                }
                for r in compute_recovery(
                    metrics,
                    result.config.duration,
                    frame_rate=result.config.frame_rate,
                )
            ],
        },
    }
    if metrics.churn_events:
        # Conditional so churn-free payloads stay byte-identical to
        # their pre-lifecycle golden fixtures.
        report = compute_churn_recovery(metrics, result.config.duration)
        payload["churn"] = {
            "events": [
                {"time": time, "path_id": path_id, "action": action}
                for time, path_id, action in metrics.churn_events
            ],
            "recovery": [
                {
                    "time": e.time,
                    "path_id": e.path_id,
                    "action": e.action,
                    "time_to_next_render": e.time_to_next_render,
                    "render_gap": e.render_gap,
                    "survived": e.survived,
                }
                for e in report.events
            ],
            "session_survived": report.session_survived,
            "max_render_gap": report.max_render_gap,
            "worst_migration_latency": report.worst_migration_latency,
        }
    return payload


def _series(series: TimeSeries) -> Dict[str, List[float]]:
    return {"times": list(series.times), "values": list(series.values)}


def save_result_json(result: CallResult, path: Union[str, Path]) -> Path:
    """Write ``result`` to ``path`` as JSON; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(result_to_dict(result), indent=2))
    return target


def run_report_to_dict(report: "RunReport") -> Dict[str, Any]:
    """Flatten a :class:`repro.experiments.runner.RunReport` to JSON data.

    Includes the runner's wall-clock/cache statistics — the numbers the
    perf trajectory (``BENCH_*.json``) tracks — plus every cell summary.
    """
    return {
        "stats": {
            "cells_total": report.stats.cells_total,
            "cells_unique": report.stats.cells_unique,
            "executed": report.stats.executed,
            "cache_hits": report.stats.cache_hits,
            "cache_hit_rate": report.stats.cache_hit_rate,
            "errors": report.stats.errors,
            "jobs": report.stats.jobs,
            "wall_seconds": report.stats.wall_seconds,
            "simulated_seconds": report.stats.simulated_seconds,
            "executed_wall_seconds": report.stats.executed_wall_seconds,
            "timeouts": report.stats.timeouts,
            "retried": report.stats.retried,
            "quarantined": list(report.stats.quarantined),
        },
        "cells": [
            {
                "key": outcome.key,
                "cell": outcome.cell.resolved(),
                "cached": outcome.cached,
                "wall_seconds": outcome.wall_seconds,
                "error": outcome.error,
                "summary": outcome.summary.data if outcome.summary else None,
            }
            for outcome in report.outcomes
        ],
    }


def save_run_report_json(report: "RunReport", path: Union[str, Path]) -> Path:
    """Write a runner report (stats + all cell summaries) as JSON."""
    target = Path(path)
    target.write_text(json.dumps(run_report_to_dict(report), indent=2))
    return target
