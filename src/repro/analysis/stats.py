"""Statistics over experiment series."""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Empirical percentile with linear interpolation, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100]: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def describe(values: Sequence[float]) -> Dict[str, float]:
    """Mean / std / min / p50 / p95 / max of a sample."""
    if not values:
        raise ValueError("describe of empty sequence")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return {
        "n": float(n),
        "mean": mean,
        "std": math.sqrt(variance),
        "min": min(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "max": max(values),
    }


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed_label: str = "bootstrap",
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for the sample mean.

    Resampling is driven by a :class:`random.Random` seeded from
    ``seed_label`` (hashed, not Python's salted ``hash``), so the
    interval is a deterministic function of the sample and the label —
    fleet reports are byte-identical run to run, and independent of
    resample order across shard merges because the statistics are
    computed after aggregation.
    """
    if not values:
        raise ValueError("bootstrap_ci of empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1): {confidence}")
    if resamples < 1:
        raise ValueError("need at least one resample")
    n = len(values)
    if n == 1:
        return values[0], values[0]
    digest = hashlib.sha256(seed_label.encode("utf-8")).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    means = []
    for _ in range(resamples):
        total = 0.0
        for _ in range(n):
            total += values[rng.randrange(n)]
        means.append(total / n)
    alpha = 1.0 - confidence
    return (
        percentile(means, 100.0 * (alpha / 2.0)),
        percentile(means, 100.0 * (1.0 - alpha / 2.0)),
    )


def rolling_mean(
    samples: Sequence[Tuple[float, float]], window: float
) -> List[Tuple[float, float]]:
    """Trailing-window mean over ``(time, value)`` samples.

    Each output point is the mean of input values whose timestamps fall
    within ``(t - window, t]``.  Used to smooth FPS/rate series before
    plotting, like the paper's per-second aggregation.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    out: List[Tuple[float, float]] = []
    start = 0
    acc = 0.0
    count = 0
    times = [t for t, _ in samples]
    values = [v for _, v in samples]
    for i, t in enumerate(times):
        acc += values[i]
        count += 1
        while times[start] <= t - window:
            acc -= values[start]
            count -= 1
            start += 1
        out.append((t, acc / count))
    return out


@dataclass
class Cdf:
    """Empirical cumulative distribution of a sample."""

    values: List[float]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("CDF of empty sample")
        self.values = sorted(self.values)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        import bisect

        return bisect.bisect_right(self.values, x) / len(self.values)

    def inverse(self, p: float) -> float:
        """The smallest x with P(X <= x) >= p."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1]: {p}")
        index = max(int(math.ceil(p * len(self.values))) - 1, 0)
        return self.values[index]

    def points(self, num: int = 50) -> List[Tuple[float, float]]:
        """``num`` evenly spaced (x, P(X<=x)) points for plotting."""
        if num < 2:
            raise ValueError("need at least two points")
        lo, hi = self.values[0], self.values[-1]
        if lo == hi:
            return [(lo, 1.0)]
        step = (hi - lo) / (num - 1)
        return [(lo + i * step, self.at(lo + i * step)) for i in range(num)]
