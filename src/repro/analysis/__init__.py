"""Analysis utilities: series statistics, CDFs, terminal plots, export.

The experiment harness prints tables; this package adds the pieces a
user needs to actually look at a run — windowed statistics over time
series, empirical CDFs (the paper plots E2E and PSNR distributions),
unicode terminal charts for quick inspection without matplotlib, and
JSON export so results can be post-processed elsewhere.
"""

from repro.analysis.stats import (
    Cdf,
    describe,
    percentile,
    rolling_mean,
)
from repro.analysis.plots import ascii_bars, sparkline, render_series
from repro.analysis.export import result_to_dict, save_result_json

__all__ = [
    "Cdf",
    "ascii_bars",
    "describe",
    "percentile",
    "render_series",
    "result_to_dict",
    "rolling_mean",
    "save_result_json",
    "sparkline",
]
