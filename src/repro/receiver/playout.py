"""Adaptive playout smoothing (optional, NetEQ-style).

Real receivers do not render a frame the instant it decodes: they hold
a small adaptive playout delay so that frame pacing stays smooth when
network jitter makes completion times uneven.  The delay tracks a high
quantile of recent network latency (capture to completion) plus a
margin, growing quickly on late frames and draining slowly — the same
asymmetry WebRTC's NetEQ/jitter-delay estimator uses.

Disabled by default in the reproduction (the paper's QoE metrics are
about delivery, and a smoothing buffer masks the IFD signal Converge
feeds on); enable via ``ReceiverConfig.adaptive_playout`` to study the
smoothness/latency trade.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque

from repro.video.decoder import AssembledFrame


@dataclass
class PlayoutConfig:
    """Tuning for the adaptive playout delay."""

    min_delay: float = 0.01
    max_delay: float = 0.5
    # Quantile of recent completion latency the delay must cover.
    quantile: float = 0.95
    margin: float = 0.01
    window: int = 120  # frames (~4 s at 30 fps)
    # Asymmetric adaptation: jump up fast, drain slowly.
    raise_gain: float = 1.0
    drain_gain: float = 0.05


@dataclass
class AdaptivePlayout:
    """Tracks a target playout delay and schedules render times."""

    config: PlayoutConfig = field(default_factory=PlayoutConfig)
    _latencies: Deque[float] = field(default_factory=deque)
    _delay: float = 0.0
    _last_render_time: float = -1.0

    def __post_init__(self) -> None:
        self._delay = self.config.min_delay

    @property
    def delay(self) -> float:
        """The current target playout delay in seconds."""
        return self._delay

    def observe(self, frame: AssembledFrame, now: float) -> None:
        """Record a completed frame's network latency and adapt."""
        latency = max(now - frame.capture_time, 0.0)
        self._latencies.append(latency)
        while len(self._latencies) > self.config.window:
            self._latencies.popleft()
        # A frame later than the current delay would have underflowed
        # the playout buffer: react to it directly, not only to the
        # windowed quantile (NetEQ reacts to peaks the same way).
        target = max(self._quantile(), latency) + self.config.margin
        if target > self._delay:
            self._delay += self.config.raise_gain * (target - self._delay)
        else:
            self._delay += self.config.drain_gain * (target - self._delay)
        self._delay = min(
            max(self._delay, self.config.min_delay), self.config.max_delay
        )

    def render_time(self, frame: AssembledFrame, decode_done: float) -> float:
        """When to show ``frame``: honours the playout delay and never
        goes backwards (frames render in order, monotonically)."""
        scheduled = max(decode_done, frame.capture_time + self._delay)
        if self._last_render_time >= 0:
            scheduled = max(scheduled, self._last_render_time + 1e-6)
        self._last_render_time = scheduled
        return scheduled

    def _quantile(self) -> float:
        if not self._latencies:
            return self.config.min_delay
        ordered = sorted(self._latencies)
        index = min(
            int(self.config.quantile * len(ordered)), len(ordered) - 1
        )
        return ordered[index]
