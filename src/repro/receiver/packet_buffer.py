"""Bounded packet buffer assembling RTP packets into frames.

Faithful to the WebRTC semantics the paper leans on (§2.1/§3.2): the
buffer has a hard packet capacity; when full it evicts the packets of
the *oldest incomplete frame* to make room, which is exactly the
mechanism by which multipath asymmetry turns late packets into dropped
frames.  A frame is complete when every sequence number between its
first and last packet has arrived (retransmissions count under their
original sequence number, FEC recoveries are injected by the FEC
tracker).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.rtp.packets import PacketType, RtpPacket
from repro.rtp.sequence import seq_diff
from repro.video.decoder import AssembledFrame


@dataclass(slots=True)
class PacketBufferConfig:
    """Capacity and accounting knobs for the packet buffer."""

    # WebRTC's PacketBuffer grows to 2048 packets before evicting.
    capacity_packets: int = 2048

    def __post_init__(self) -> None:
        if self.capacity_packets < 8:
            raise ValueError("packet buffer must hold at least 8 packets")


@dataclass(slots=True)
class PacketArrival:
    """Arrival record kept per packet for QoE feedback computation."""

    seq: int
    path_id: int
    arrival_time: float
    packet_type: PacketType
    fec_recovered: bool = False


@dataclass(slots=True)
class _FrameAssembly:
    """Mutable per-frame assembly state."""

    frame_id: int
    ssrc: int
    frame_type: str = "delta"
    gop_id: int = -1
    capture_time: float = 0.0
    first_seq: Optional[int] = None
    last_seq: Optional[int] = None
    seqs: Set[int] = field(default_factory=set)
    arrivals: List[PacketArrival] = field(default_factory=list)
    first_arrival: float = 0.0
    has_pps: bool = False
    has_sps: bool = False
    media_bytes: int = 0
    any_fec_recovered: bool = False
    evicted: bool = False

    @property
    def expected_count(self) -> Optional[int]:
        if self.first_seq is None or self.last_seq is None:
            return None
        return seq_diff(self.last_seq, self.first_seq) + 1

    @property
    def complete(self) -> bool:
        expected = self.expected_count
        return expected is not None and len(self.seqs) >= expected


@dataclass(slots=True)
class PacketBufferStats:
    packets_inserted: int = 0
    duplicates: int = 0
    evicted_packets: int = 0
    evicted_frames: int = 0
    frames_completed: int = 0


class PacketBuffer:
    """Per-stream frame assembly with bounded capacity."""

    __slots__ = ("ssrc", "config", "stats", "_frames", "_packet_count",
                 "_dead_frames")

    def __init__(self, ssrc: int, config: PacketBufferConfig | None = None) -> None:
        self.ssrc = ssrc
        self.config = config or PacketBufferConfig()
        self.stats = PacketBufferStats()
        self._frames: Dict[int, _FrameAssembly] = {}
        self._packet_count = 0
        # Frames that were evicted or already delivered; packets for
        # them are dropped on arrival.
        self._dead_frames: Set[int] = set()

    def insert(
        self, packet: RtpPacket, now: float, fec_recovered: bool = False
    ) -> Optional[Tuple[AssembledFrame, List[PacketArrival]]]:
        """Add a packet; return the completed frame if this finished one."""
        frame_id = packet.frame_id
        if frame_id in self._dead_frames:
            return None
        packet_type = packet.packet_type
        seq = packet.seq
        if (
            packet_type is PacketType.RETRANSMISSION
            and packet.original_seq is not None
        ):
            seq = packet.original_seq
        assembly = self._frames.get(frame_id)
        if assembly is None:
            assembly = _FrameAssembly(frame_id=frame_id, ssrc=packet.ssrc)
            assembly.first_arrival = now
            self._frames[frame_id] = assembly
        seqs = assembly.seqs
        if seq in seqs:
            self.stats.duplicates += 1
            return None
        if self._packet_count >= self.config.capacity_packets:
            self._make_room(protect_frame=frame_id)
            if frame_id in self._dead_frames:
                # Making room can only kill other frames, but guard anyway.
                return None

        seqs.add(seq)
        assembly.arrivals.append(
            PacketArrival(
                seq=seq,
                path_id=packet.path_id,
                arrival_time=now,
                packet_type=packet_type,
                fec_recovered=fec_recovered,
            )
        )
        assembly.frame_type = packet.frame_type
        assembly.gop_id = packet.gop_id
        assembly.capture_time = packet.capture_time
        if fec_recovered:
            assembly.any_fec_recovered = True
        if packet.first_in_frame:
            assembly.first_seq = seq
        if packet.last_in_frame:
            assembly.last_seq = seq
        if packet_type is PacketType.PPS:
            assembly.has_pps = True
        elif packet_type is PacketType.SPS:
            assembly.has_sps = True
        else:
            assembly.media_bytes += packet.payload_size
        self._packet_count += 1
        self.stats.packets_inserted += 1

        # Inline of assembly.complete (this is the per-packet hot path).
        first_seq = assembly.first_seq
        last_seq = assembly.last_seq
        if (
            first_seq is not None
            and last_seq is not None
            and len(seqs) >= seq_diff(last_seq, first_seq) + 1
        ):
            return self._finish(assembly, now)
        return None

    def _finish(
        self, assembly: _FrameAssembly, now: float
    ) -> Tuple[AssembledFrame, List[PacketArrival]]:
        self._packet_count -= len(assembly.seqs)
        del self._frames[assembly.frame_id]
        self._dead_frames.add(assembly.frame_id)
        self._prune_dead()
        self.stats.frames_completed += 1
        frame = AssembledFrame(
            frame_id=assembly.frame_id,
            ssrc=assembly.ssrc,
            frame_type=assembly.frame_type,
            gop_id=assembly.gop_id,
            size_bytes=assembly.media_bytes,
            capture_time=assembly.capture_time,
            has_pps=assembly.has_pps,
            has_sps=assembly.has_sps,
            first_arrival=assembly.first_arrival,
            completed_at=now,
            fec_recovered=assembly.any_fec_recovered,
        )
        return frame, assembly.arrivals

    def _make_room(self, protect_frame: int) -> None:
        """Evict the oldest incomplete frame(s) when at capacity."""
        while self._packet_count >= self.config.capacity_packets:
            oldest = min(
                (
                    fid
                    for fid in self._frames
                    if fid != protect_frame and self._frames[fid].seqs
                ),
                default=None,
            )
            if oldest is None:
                # Only the protected frame holds packets; evict it too
                # rather than grow without bound.
                oldest = min(self._frames)
            self._evict(oldest)
            if oldest == protect_frame:
                break

    def _evict(self, frame_id: int) -> None:
        assembly = self._frames.pop(frame_id)
        self._packet_count -= len(assembly.seqs)
        self._dead_frames.add(frame_id)
        self.stats.evicted_packets += len(assembly.seqs)
        self.stats.evicted_frames += 1

    def _prune_dead(self) -> None:
        """Bound the dead-frame set; old ids can never reappear."""
        if len(self._dead_frames) > 4096:
            horizon = max(self._dead_frames) - 2048
            self._dead_frames = {f for f in self._dead_frames if f >= horizon}

    def drop_frame(self, frame_id: int) -> bool:
        """Drop a pending frame (frame-buffer purge of dependents, §2.1)."""
        if frame_id in self._frames:
            self._evict(frame_id)
            return True
        self._dead_frames.add(frame_id)
        return False

    def frame_pending(self, frame_id: int) -> bool:
        """Whether packets for an incomplete ``frame_id`` are buffered."""
        return frame_id in self._frames

    def is_dead(self, frame_id: int) -> bool:
        return frame_id in self._dead_frames

    @property
    def packet_count(self) -> int:
        return self._packet_count

    @property
    def pending_frames(self) -> List[int]:
        return sorted(self._frames)
