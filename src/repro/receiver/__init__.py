"""Receiver-side pipeline: buffers, recovery, and QoE feedback.

Mirrors the WebRTC receive path described in §2.1 of the paper: RTP
packets accumulate in a bounded *packet buffer* until a frame is
complete (possibly via FEC recovery), completed frames enter a bounded
*frame buffer* that feeds the decoder in dependency order, and the two
intermediate delays — Frame Construction Delay (FCD, "gathering
delay") and InterFrame Delay (IFD) — drive the Converge QoE feedback
of §4.2.  NACK generation and keyframe requests live here too.
"""

from repro.receiver.packet_buffer import PacketBuffer, PacketBufferConfig
from repro.receiver.frame_buffer import FrameBuffer, FrameBufferConfig
from repro.receiver.nack import NackGenerator, NackConfig
from repro.receiver.fec_tracker import FecTracker
from repro.receiver.feedback import QoeFeedbackGenerator, QoeFeedbackConfig
from repro.receiver.playout import AdaptivePlayout, PlayoutConfig
from repro.receiver.session import ReceiverConfig, ReceiverSession

__all__ = [
    "AdaptivePlayout",
    "FecTracker",
    "FrameBuffer",
    "FrameBufferConfig",
    "NackConfig",
    "NackGenerator",
    "PacketBuffer",
    "PacketBufferConfig",
    "PlayoutConfig",
    "QoeFeedbackConfig",
    "QoeFeedbackGenerator",
    "ReceiverConfig",
    "ReceiverSession",
]
