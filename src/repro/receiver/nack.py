"""NACK generation from stream-level sequence gaps.

Multipath reordering means a gap is not evidence of loss, so the
generator waits a reorder window before NACKing, retries a bounded
number of times, and abandons sequences that became irrelevant (their
frame was dropped) or too old to matter for real-time playback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.rtp.sequence import SEQ_MOD
from repro.simulation.process import PeriodicProcess
from repro.simulation.simulator import Simulator


@dataclass
class NackConfig:
    """Timing and retry policy for NACK generation."""

    # Multipath skew reorders stream-level sequence numbers routinely;
    # wait at least this long before treating a gap as loss.  The
    # effective window adapts upward to the observed reordering depth.
    reorder_window: float = 0.05
    max_reorder_window: float = 0.25
    retry_interval: float = 0.1
    max_retries: int = 4
    give_up_after: float = 1.0
    check_interval: float = 0.01
    max_gap: int = 500  # a gap larger than this is a stream reset
    # Cap on tracked missing sequences (WebRTC clears its NACK list on
    # overflow rather than flooding retransmissions).
    max_outstanding: int = 300

    def __post_init__(self) -> None:
        if self.reorder_window < 0 or self.retry_interval <= 0:
            raise ValueError("invalid NACK timing")


@dataclass
class _MissingSeq:
    unwrapped_seq: int
    first_seen: float
    retries: int = 0
    last_nack: Optional[float] = None


class NackGenerator:
    """Tracks missing sequence numbers for one stream and emits NACKs."""

    def __init__(
        self,
        sim: Simulator,
        ssrc: int,
        send_nack: Callable[[List[int]], None],
        config: NackConfig | None = None,
    ) -> None:
        self.sim = sim
        self.ssrc = ssrc
        self.config = config or NackConfig()
        self._send_nack = send_nack
        self._highest: Optional[int] = None
        self._missing: Dict[int, _MissingSeq] = {}
        self.nacks_sent = 0
        self.seqs_nacked = 0
        self.false_nacks = 0
        # Adaptive reorder window: tracks how late "missing" packets
        # that eventually showed up really were, so systematic
        # cross-path skew stops producing spurious NACKs.
        self._reorder_estimate = self.config.reorder_window
        self._process = PeriodicProcess(
            sim, self.config.check_interval, self._check
        )

    def on_packet(self, unwrapped: int, repaired: bool = False) -> None:
        """Record arrival of an unwrapped stream-level sequence number.

        ``repaired`` marks arrivals produced by recovery (an RTX or a
        FEC reconstruction): those clear the missing entry but say
        nothing about reordering — a NACK answered by its own
        retransmission was a *successful* NACK, not a false one.
        """
        entry = self._missing.pop(unwrapped, None)
        if entry is not None and not repaired:
            lateness = self.sim.now - entry.first_seen
            if entry.last_nack is not None:
                # We NACKed a packet that was merely reordered: widen
                # the window toward the observed depth.
                self.false_nacks += 1
                self._reorder_estimate = min(
                    max(self._reorder_estimate, lateness * 1.2),
                    self.config.max_reorder_window,
                )
            else:
                # Quietly shrink back when reordering calms down.
                self._reorder_estimate = max(
                    self.config.reorder_window,
                    self._reorder_estimate * 0.995,
                )
        if self._highest is None:
            self._highest = unwrapped
            return
        if unwrapped > self._highest:
            gap = unwrapped - self._highest - 1
            if 0 < gap <= self.config.max_gap:
                now = self.sim.now
                for missing in range(self._highest + 1, unwrapped):
                    self._missing[missing] = _MissingSeq(
                        unwrapped_seq=missing, first_seen=now
                    )
            if len(self._missing) > self.config.max_outstanding:
                # Overflow: a burst this large is congestion, not
                # isolated loss — drop the oldest entries and let the
                # frame-timeout path deal with it.
                for seq in sorted(self._missing)[
                    : len(self._missing) - self.config.max_outstanding
                ]:
                    del self._missing[seq]
            self._highest = unwrapped

    def cancel(self, unwrapped_seq: int) -> None:
        """Stop chasing a sequence whose frame was dropped."""
        self._missing.pop(unwrapped_seq, None)

    def _check(self) -> None:
        if not self._missing:
            return
        now = self.sim.now
        config = self.config
        to_nack: List[int] = []
        expired: List[int] = []
        for seq, entry in self._missing.items():
            age = now - entry.first_seen
            if age > config.give_up_after or entry.retries > config.max_retries:
                expired.append(seq)
                continue
            due = (
                entry.last_nack is None and age >= self._reorder_estimate
            ) or (
                entry.last_nack is not None
                and now - entry.last_nack >= config.retry_interval
            )
            if due:
                to_nack.append(seq)
                entry.retries += 1
                entry.last_nack = now
        for seq in expired:
            del self._missing[seq]
        if to_nack:
            self.nacks_sent += 1
            self.seqs_nacked += len(to_nack)
            self._send_nack([seq % SEQ_MOD for seq in sorted(to_nack)])

    def stop(self) -> None:
        self._process.stop()

    @property
    def outstanding(self) -> int:
        return len(self._missing)

    @property
    def reorder_window(self) -> float:
        """The current (adaptive) reorder window in seconds."""
        return self._reorder_estimate
