"""Bounded frame buffer feeding the decoder in dependency order.

Implements the WebRTC semantics of §2.1: completed frames queue here
until the decoder can consume them in order; the buffer purges old
frames when full, and when a frame goes missing it drops the dependent
delta frames and asks for a keyframe — the mechanism behind the frame
drop / keyframe-request explosions Table 1 shows for naive multipath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.simulation.events import Event
from repro.simulation.simulator import Simulator
from repro.video.decoder import AssembledFrame, DecoderModel


@dataclass
class FrameBufferConfig:
    """Capacity/timing knobs for the frame buffer and decode stage."""

    # WebRTC's frame buffer holds up to 800 frames; the bound exists
    # to cap memory, not to pace the decoder.  It must comfortably
    # exceed wait_timeout * frame_rate or purges cannibalize completed
    # frames while the decoder waits for a missing one.
    capacity_frames: int = 300
    # How long to wait for a missing frame before declaring it lost.
    # WebRTC's kMaxWaitForFrameMs is 3000: the decoder stalls (the
    # user sees a freeze) but the reference chain survives anything
    # NACK can eventually repair — hard drops and keyframe requests
    # are a last resort, which is why the paper's keyframe-request
    # counts are single digits over 3-minute calls.
    wait_timeout: float = 3.0
    # Fixed decoder processing time per frame.
    decode_delay: float = 0.010
    # Extra latency when a frame needed FEC recovery (§2.1: FEC
    # decoding incurs non-negligible latency).
    fec_decode_penalty: float = 0.015

    def __post_init__(self) -> None:
        if self.capacity_frames < 2:
            raise ValueError("frame buffer needs capacity >= 2")
        if self.wait_timeout <= 0:
            raise ValueError("wait timeout must be positive")


@dataclass
class FrameBufferStats:
    frames_inserted: int = 0
    frames_decoded: int = 0
    frames_dropped: int = 0
    purges: int = 0
    resyncs: int = 0


class FrameBuffer:
    """Orders assembled frames and drives the decoder."""

    def __init__(
        self,
        sim: Simulator,
        decoder: DecoderModel,
        config: FrameBufferConfig | None = None,
        on_render: Optional[Callable[[AssembledFrame, float], None]] = None,
        on_keyframe_needed: Optional[Callable[[], None]] = None,
        on_frame_declared_lost: Optional[Callable[[int], None]] = None,
        on_insert: Optional[Callable[[AssembledFrame, float], None]] = None,
    ) -> None:
        self.sim = sim
        self.decoder = decoder
        self.config = config or FrameBufferConfig()
        self.stats = FrameBufferStats()
        self._on_render = on_render
        self._on_keyframe_needed = on_keyframe_needed
        self._on_frame_declared_lost = on_frame_declared_lost
        self._on_insert = on_insert
        self._frames: Dict[int, AssembledFrame] = {}
        # Frames the session declared unrecoverable (e.g. completed
        # past the playout deadline): the decode loop treats a gap made
        # only of tombstones as a confirmed chain break instead of
        # waiting out the missing-frame timer.
        self._tombstones: Set[int] = set()
        self._last_insert_time: Optional[float] = None
        self.last_ifd: Optional[float] = None
        self._awaiting_keyframe = True  # nothing decoded yet
        self._timeout_event: Optional[Event] = None
        self._blocked_on: Optional[int] = None

    # -- ingest -----------------------------------------------------------

    def insert(self, frame: AssembledFrame) -> None:
        """Add a completed frame; may trigger decodes or drops."""
        now = self.sim.now
        if self._last_insert_time is not None:
            self.last_ifd = now - self._last_insert_time
        self._last_insert_time = now
        self.stats.frames_inserted += 1
        if self._on_insert is not None:
            self._on_insert(frame, now)

        already_passed = (
            self.decoder.last_decoded_frame_id is not None
            and frame.frame_id <= self.decoder.last_decoded_frame_id
        )
        if already_passed:
            self.stats.frames_dropped += 1
            return
        if self._awaiting_keyframe and not frame.is_keyframe:
            # Undecodable until a keyframe resynchronizes the chain.
            self.stats.frames_dropped += 1
            return

        self._frames[frame.frame_id] = frame
        self._purge_if_full()
        self._try_decode()

    # -- decode loop --------------------------------------------------------

    def _try_decode(self) -> None:
        progressed = True
        while progressed and self._frames:
            progressed = False
            head_id = min(self._frames)
            head = self._frames[head_id]
            if self._awaiting_keyframe:
                key_id = self._earliest_keyframe_id()
                if key_id is None:
                    break
                self._drop_frames_before(key_id)
                keyframe = self._frames.pop(key_id)
                self.decoder.reset_to_keyframe(keyframe)
                self._awaiting_keyframe = False
                self.stats.resyncs += 1
                self._render(keyframe)
                progressed = True
                continue
            if self.decoder.can_decode(head):
                del self._frames[head_id]
                self.decoder.decode(head)
                self._render(head)
                progressed = True
                continue
            key_id = self._earliest_keyframe_id()
            if key_id is not None:
                # A decodable keyframe lets us jump over any gap; the
                # frames before it are obsolete once it renders, so
                # resynchronize immediately instead of waiting out the
                # missing-frame timer.
                self._drop_frames_before(key_id)
                keyframe = self._frames.pop(key_id)
                self.decoder.reset_to_keyframe(keyframe)
                self.stats.resyncs += 1
                self._render(keyframe)
                progressed = True
                continue
            # Blocked: either a predecessor frame is missing or the
            # head frame is undecodable (missing SPS for its GOP).
            if self._gap_is_tombstoned(head_id):
                self._handle_confirmed_loss(head_id)
                progressed = True
                continue
            self._arm_timeout(head_id)
            break
        if not self._frames:
            self._disarm_timeout()

    def _render(self, frame: AssembledFrame) -> None:
        self.stats.frames_decoded += 1
        delay = self.config.decode_delay
        if frame.fec_recovered:
            delay += self.config.fec_decode_penalty
        render_time = self.sim.now + delay
        if self._on_render is not None:
            self._on_render(frame, render_time)

    # -- loss handling --------------------------------------------------------

    def _arm_timeout(self, blocked_on: int) -> None:
        if self._blocked_on == blocked_on and self._timeout_event is not None:
            return
        self._disarm_timeout()
        self._blocked_on = blocked_on
        self._timeout_event = self.sim.schedule(
            self.config.wait_timeout, self._on_timeout, blocked_on
        )

    def _disarm_timeout(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        self._blocked_on = None

    def _on_timeout(self, blocked_on: int) -> None:
        if self._blocked_on != blocked_on:
            return
        self._timeout_event = None
        self._blocked_on = None
        if blocked_on not in self._frames:
            return
        self._handle_confirmed_loss(blocked_on)

    def _handle_confirmed_loss(self, blocked_on: int) -> None:
        """The chain before (or into) ``blocked_on`` is broken for
        good: declare the missing predecessor lost and resynchronize."""
        missing_id = blocked_on
        if self.decoder.last_decoded_frame_id is not None:
            missing_id = self.decoder.last_decoded_frame_id + 1
        if self._on_frame_declared_lost is not None:
            self._on_frame_declared_lost(missing_id)
        key_id = self._earliest_keyframe_id()
        if key_id is not None:
            self._drop_frames_before(key_id)
            self._awaiting_keyframe = True
            self._try_decode()
            return
        # No keyframe buffered: drop the stale deltas, freeze, and ask
        # the sender for a keyframe.
        dropped = len(self._frames)
        self.stats.frames_dropped += dropped
        self._frames.clear()
        self._awaiting_keyframe = True
        if self._on_keyframe_needed is not None:
            self._on_keyframe_needed()

    def declare_unrecoverable(self, frame_id: int) -> None:
        """Tombstone a frame that will never be inserted (e.g. it
        completed past the playout deadline)."""
        last = self.decoder.last_decoded_frame_id
        if last is not None and frame_id <= last:
            return
        self._tombstones.add(frame_id)
        if len(self._tombstones) > 1024:
            horizon = max(self._tombstones) - 512
            self._tombstones = {f for f in self._tombstones if f >= horizon}
        self._try_decode()

    def _gap_is_tombstoned(self, head_id: int) -> bool:
        """True when every missing frame before ``head_id`` is known
        dead, so waiting for it is pointless."""
        last = self.decoder.last_decoded_frame_id
        if last is None:
            return False
        gap = range(last + 1, head_id)
        if not gap:
            return False
        return all(f in self._tombstones for f in gap)

    def _earliest_keyframe_id(self) -> Optional[int]:
        keys = [
            fid
            for fid, frame in self._frames.items()
            if frame.is_keyframe and frame.has_pps and frame.has_sps
        ]
        return min(keys) if keys else None

    def _drop_frames_before(self, frame_id: int) -> None:
        stale = [fid for fid in self._frames if fid < frame_id]
        for fid in stale:
            del self._frames[fid]
        self.stats.frames_dropped += len(stale)

    def _purge_if_full(self) -> None:
        while len(self._frames) > self.config.capacity_frames:
            oldest = min(self._frames)
            del self._frames[oldest]
            self.stats.frames_dropped += 1
            self.stats.purges += 1
            if self._on_frame_declared_lost is not None:
                self._on_frame_declared_lost(oldest)

    # -- introspection ---------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._frames)

    @property
    def awaiting_keyframe(self) -> bool:
        return self._awaiting_keyframe
