"""The full receiver session: ingress, recovery, feedback, RTCP.

Wires together, per stream: packet buffer -> frame buffer -> decoder,
with NACK generation, FEC tracking/recovery and the Converge QoE
feedback generator; and per path: transport-wide feedback and
receiver-report generation for the sender's per-path GCC instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.metrics.collector import MetricsCollector, RenderedFrame
from repro.net.multipath import PathSet
from repro.receiver.fec_tracker import FecTracker
from repro.receiver.feedback import (
    FeedbackDecision,
    QoeFeedbackConfig,
    QoeFeedbackGenerator,
)
from repro.receiver.frame_buffer import FrameBuffer, FrameBufferConfig
from repro.receiver.nack import NackConfig, NackGenerator
from repro.receiver.packet_buffer import (
    PacketArrival,
    PacketBuffer,
    PacketBufferConfig,
)
from repro.receiver.playout import AdaptivePlayout
from repro.rtp.packets import PacketType, RtpPacket
from repro.rtp.rtcp import (
    KeyframeRequest,
    Nack,
    QoeFeedback,
    ReceiverReport,
    RtcpMessage,
    SdesFrameRate,
    TransportFeedback,
)
from repro.rtp.sequence import SequenceUnwrapper, unwrap_near
from repro.simulation.process import PeriodicProcess
from repro.simulation.simulator import Simulator
from repro.video.decoder import AssembledFrame, DecoderModel


@dataclass
class ReceiverConfig:
    """All receiver-side knobs; ablation switches included."""

    packet_buffer: PacketBufferConfig = field(default_factory=PacketBufferConfig)
    frame_buffer: FrameBufferConfig = field(default_factory=FrameBufferConfig)
    nack: NackConfig = field(default_factory=NackConfig)
    feedback: QoeFeedbackConfig = field(default_factory=QoeFeedbackConfig)
    transport_feedback_interval: float = 0.05
    receiver_report_interval: float = 0.2
    keyframe_request_min_interval: float = 1.0
    # If nothing has rendered for this long while frames are stuck in
    # the buffer, ask for a keyframe to re-anchor (WebRTC requests a
    # keyframe when the decoder is starved rather than waiting out the
    # full missing-frame timeout).
    decoder_stall_timeout: float = 0.5
    # Playout deadline: conferencing is interactive, so a frame that
    # completes this long after capture is useless even if intact —
    # it is dropped and counts against QoE.  This is the real-time
    # budget that makes late packets equivalent to lost ones (§3.2).
    # 0.8 s matches the paper's own observations: their Fig. 14(c)
    # shows frames rendering at up to ~1 s on the naive multipath
    # variants, so the deadline must sit near there, not at the
    # 300-400 ms interactivity ideal.
    max_playout_latency: float = 0.8
    qoe_feedback_enabled: bool = True
    nack_enabled: bool = True
    # Per-path RTCP (transport feedback, receiver reports) rides its
    # own path's reverse channel, as a real per-interface RTCP socket
    # would — so a reverse-channel outage on one path silences exactly
    # that path's control loop.  Call-level RTCP (NACK, keyframe
    # requests, QoE feedback) always takes the most recently active
    # path.  Disable to route everything over the most active path.
    rtcp_per_path: bool = True
    # Optional NetEQ-style playout smoothing (see receiver/playout.py).
    adaptive_playout: bool = False


@dataclass
class _PathReceiveState:
    """Per-path accounting between RTCP reports."""

    transport_entries: List[Tuple[int, float]] = field(default_factory=list)
    mp_unwrapper: SequenceUnwrapper = field(default_factory=SequenceUnwrapper)
    highest_mp_seq: int = -1
    received_count: int = 0
    prev_highest_mp_seq: int = -1
    prev_received_count: int = 0
    cumulative_lost: int = 0
    last_activity: float = -1.0


class _StreamState:
    """Per-stream receive pipeline."""

    def __init__(
        self,
        session: "ReceiverSession",
        ssrc: int,
        config: ReceiverConfig,
    ) -> None:
        self.ssrc = ssrc
        self.session = session
        self.packet_buffer = PacketBuffer(ssrc, config.packet_buffer)
        self.decoder = DecoderModel()
        self.frame_buffer = FrameBuffer(
            session.sim,
            self.decoder,
            config.frame_buffer,
            on_render=lambda frame, t: session._on_render(self, frame, t),
            on_keyframe_needed=lambda: session._request_keyframe(self),
            on_frame_declared_lost=lambda fid: session._on_frame_lost(self, fid),
            on_insert=lambda frame, t: None,
        )
        self.fec_tracker = FecTracker()
        self.seq_unwrapper = SequenceUnwrapper()
        self.nack: Optional[NackGenerator] = None
        if config.nack_enabled:
            self.nack = NackGenerator(
                session.sim,
                ssrc,
                send_nack=lambda seqs: session._send_nack(self, seqs),
                config=config.nack,
            )
        self.feedback = QoeFeedbackGenerator(
            config.feedback,
            on_feedback=lambda d: session._send_qoe_feedback(self, d),
        )
        self.last_keyframe_request: float = -1e9
        self.last_render_time: float = 0.0
        # Running unwrapped position of the media sequence space, the
        # reference for unwrapping seqs carried inside FEC packets.
        self.last_unwrapped_seq: int = 0
        self.playout: Optional[AdaptivePlayout] = (
            AdaptivePlayout() if config.adaptive_playout else None
        )
        # Recent packets by unwrapped seq, so FEC recovery can locate
        # the original packet object (stand-in for XOR payload bytes).
        self.recent_packets: Dict[int, RtpPacket] = {}


class ReceiverSession:
    """Receives packets from all paths for all streams of one call."""

    def __init__(
        self,
        sim: Simulator,
        paths: PathSet,
        ssrcs: Iterable[int],
        config: ReceiverConfig | None = None,
        metrics: MetricsCollector | None = None,
        on_rtcp: Optional[Callable[[RtcpMessage], None]] = None,
    ) -> None:
        self.sim = sim
        self.paths = paths
        self.config = config or ReceiverConfig()
        self.metrics = metrics or MetricsCollector()
        self._on_rtcp = on_rtcp
        self._streams: Dict[int, _StreamState] = {
            ssrc: _StreamState(self, ssrc, self.config) for ssrc in ssrcs
        }
        self._path_states: Dict[int, _PathReceiveState] = {
            pid: _PathReceiveState() for pid in paths.path_ids
        }
        for path in paths:
            path.on_deliver = self.on_packet
        self._tf_process = PeriodicProcess(
            sim,
            self.config.transport_feedback_interval,
            self._emit_transport_feedback,
            start_delay=self.config.transport_feedback_interval,
        )
        self._rr_process = PeriodicProcess(
            sim,
            self.config.receiver_report_interval,
            self._emit_receiver_reports,
            start_delay=self.config.receiver_report_interval,
        )
        self._keyframe_watch = PeriodicProcess(sim, 0.25, self._watch_keyframes)

    # -- ingress ---------------------------------------------------------

    def on_packet(self, packet: RtpPacket) -> None:
        """Entry point for every packet delivered by any path."""
        now = self.sim.now
        path_state = self._path_states.get(packet.path_id)
        if path_state is None and packet.path_id in self.paths:
            # First packet from a path born mid-call: receive state is
            # created lazily.  The membership check keeps late stragglers
            # from an already-removed path from resurrecting its state.
            path_state = _PathReceiveState()
            self._path_states[packet.path_id] = path_state
        if path_state is not None:
            path_state.transport_entries.append((packet.mp_transport_seq, now))
            path_state.last_activity = now
            mp_seq = packet.mp_seq
            if mp_seq >= 0:
                unwrapped_mp = path_state.mp_unwrapper.unwrap(mp_seq)
                if unwrapped_mp > path_state.highest_mp_seq:
                    path_state.highest_mp_seq = unwrapped_mp
                path_state.received_count += 1
        stream = self._streams.get(packet.ssrc)
        if stream is None:
            return
        if packet.packet_type is PacketType.FEC:
            self._on_fec_packet(stream, packet, now)
            return
        self._on_media_packet(stream, packet, now)

    def _on_media_packet(
        self, stream: _StreamState, packet: RtpPacket, now: float
    ) -> None:
        is_rtx = packet.packet_type is PacketType.RETRANSMISSION
        original_seq = packet.seq
        if is_rtx and packet.original_seq is not None:
            original_seq = packet.original_seq
        unwrapped = stream.seq_unwrapper.unwrap(original_seq)
        stream.last_unwrapped_seq = unwrapped
        stream.recent_packets[unwrapped] = packet
        if len(stream.recent_packets) > 8192:
            self._prune_recent(stream)
        self.metrics.record_media_received(now, packet.payload_size)
        if stream.nack is not None:
            stream.nack.on_packet(unwrapped, repaired=is_rtx)
        recovered = stream.fec_tracker.on_media_packet(unwrapped)
        self._insert_packet(stream, packet, now, fec_recovered=False)
        if recovered is not None:
            self._inject_recovered(stream, recovered, now)

    def _on_fec_packet(
        self, stream: _StreamState, packet: RtpPacket, now: float
    ) -> None:
        # Protected seqs sit near the stream's current position; unwrap
        # them against it without perturbing the unwrapper's state.
        reference = stream.last_unwrapped_seq
        protected_unwrapped = [
            unwrap_near(seq, reference) for seq in packet.protected_seqs
        ]
        # Remember originals so a recovery can materialize the packet.
        for seq_unwrapped, original in zip(
            protected_unwrapped, packet.protected_packets
        ):
            stream.recent_packets.setdefault(seq_unwrapped, original)
        recovered = stream.fec_tracker.on_fec_packet(
            packet.seq, protected_unwrapped
        )
        if recovered is not None:
            self._inject_recovered(stream, recovered, now)

    def _inject_recovered(
        self, stream: _StreamState, unwrapped_seq: int, now: float
    ) -> None:
        original = stream.recent_packets.get(unwrapped_seq)
        if original is None:
            return
        if stream.nack is not None:
            stream.nack.on_packet(unwrapped_seq, repaired=True)
        self._insert_packet(stream, original, now, fec_recovered=True)

    def _insert_packet(
        self,
        stream: _StreamState,
        packet: RtpPacket,
        now: float,
        fec_recovered: bool,
    ) -> None:
        result = stream.packet_buffer.insert(packet, now, fec_recovered)
        if result is None:
            return
        frame, arrivals = result
        self._on_frame_complete(stream, frame, arrivals, now)

    # -- frame pipeline ------------------------------------------------------

    def _on_frame_complete(
        self,
        stream: _StreamState,
        frame: AssembledFrame,
        arrivals: List[PacketArrival],
        now: float,
    ) -> None:
        fcd = frame.completed_at - frame.first_arrival
        self.metrics.record_fcd(now, fcd)
        if (
            now - frame.capture_time > self.config.max_playout_latency
            and not frame.is_keyframe
        ):
            # Too late for interactive playout: the frame is dropped
            # even though it assembled (keyframes are exempt — they
            # re-anchor the chain and end freezes, late or not).
            self.metrics.record_frame_drop(
                now, stream.ssrc, frame.frame_id, "too-late"
            )
            stream.frame_buffer.declare_unrecoverable(frame.frame_id)
            return
        stream.frame_buffer.insert(frame)
        ifd = stream.frame_buffer.last_ifd
        if ifd is not None:
            self.metrics.record_ifd(now, ifd)
        if self.config.qoe_feedback_enabled:
            stream.feedback.on_frame_inserted(frame, arrivals, ifd, now)

    def _on_render(
        self, stream: _StreamState, frame: AssembledFrame, render_time: float
    ) -> None:
        if stream.playout is not None:
            stream.playout.observe(frame, self.sim.now)
            render_time = stream.playout.render_time(frame, render_time)
        stream.last_render_time = render_time
        self.metrics.record_render(
            RenderedFrame(
                ssrc=frame.ssrc,
                frame_id=frame.frame_id,
                capture_time=frame.capture_time,
                render_time=render_time,
                size_bytes=frame.size_bytes,
                is_keyframe=frame.is_keyframe,
                fec_recovered=frame.fec_recovered,
            )
        )

    def _on_frame_lost(self, stream: _StreamState, frame_id: int) -> None:
        stream.packet_buffer.drop_frame(frame_id)
        self.metrics.record_frame_drop(
            self.sim.now, stream.ssrc, frame_id, "declared-lost"
        )

    # -- RTCP out --------------------------------------------------------------

    def _send_rtcp(self, message: RtcpMessage) -> None:
        message.send_time = self.sim.now
        if self._on_rtcp is not None:
            self._on_rtcp(message)
            return
        if (
            self.config.rtcp_per_path
            and message.path_id >= 0
            and message.path_id in self._path_states
            and message.path_id in self.paths
        ):
            # Per-path reports ride their own path's reverse channel
            # (a per-interface RTCP socket): an outage there silences
            # that path's control loop, which the sender-side watchdog
            # must then survive.
            self.paths.get(message.path_id).send_feedback(message)
            return
        # Call-level RTCP rides the most recently active path: reports
        # about a failing path must not depend on it delivering them.
        # Only paths still in the call qualify — a removed path may
        # retain receive state only long enough for its final report.
        candidates = [pid for pid in self._path_states if pid in self.paths]
        if not candidates:
            return
        best = max(
            candidates,
            key=lambda pid: self._path_states[pid].last_activity,
        )
        self.paths.get(best).send_feedback(message)

    def _send_nack(self, stream: _StreamState, seqs: List[int]) -> None:
        self._send_rtcp(Nack(ssrc=stream.ssrc, path_id=-1, seqs=seqs))

    def _send_qoe_feedback(
        self, stream: _StreamState, decision: FeedbackDecision
    ) -> None:
        self.metrics.record_feedback(
            self.sim.now, decision.path_id, decision.alpha, decision.fcd
        )
        self._send_rtcp(
            QoeFeedback(
                ssrc=stream.ssrc,
                path_id=decision.path_id,
                alpha=decision.alpha,
                fcd=decision.fcd,
            )
        )

    def _request_keyframe(self, stream: _StreamState) -> None:
        now = self.sim.now
        if (
            now - stream.last_keyframe_request
            < self.config.keyframe_request_min_interval
        ):
            return
        stream.last_keyframe_request = now
        self.metrics.record_keyframe_request(now, stream.ssrc)
        self._send_rtcp(KeyframeRequest(ssrc=stream.ssrc, path_id=-1))

    def _watch_keyframes(self) -> None:
        """Request keyframes when the decoder is desynced or starved."""
        now = self.sim.now
        for stream in self._streams.values():
            desynced = (
                stream.frame_buffer.awaiting_keyframe
                and stream.decoder.frames_decoded > 0
            )
            starved = (
                stream.decoder.frames_decoded > 0
                and stream.frame_buffer.depth > 0
                and now - stream.last_render_time
                > self.config.decoder_stall_timeout
            )
            if desynced or starved:
                self._request_keyframe(stream)

    def _emit_transport_feedback(self) -> None:
        for path_id, state in self._path_states.items():
            if not state.transport_entries:
                continue
            entries = state.transport_entries
            state.transport_entries = []
            self._send_rtcp(
                TransportFeedback(ssrc=0, path_id=path_id, packets=entries)
            )

    def _emit_receiver_reports(self) -> None:
        for path_id, state in self._path_states.items():
            expected = state.highest_mp_seq - state.prev_highest_mp_seq
            received = state.received_count - state.prev_received_count
            if expected <= 0:
                continue
            lost = max(expected - received, 0)
            state.cumulative_lost += lost
            fraction = min(max(lost / expected, 0.0), 1.0)
            state.prev_highest_mp_seq = state.highest_mp_seq
            state.prev_received_count = state.received_count
            self._send_rtcp(
                ReceiverReport(
                    ssrc=0,
                    path_id=path_id,
                    fraction_lost=fraction,
                    cumulative_lost=state.cumulative_lost,
                    extended_highest_mp_seq=state.highest_mp_seq,
                )
            )

    # -- control in -------------------------------------------------------------

    def on_rtcp_from_sender(self, message: RtcpMessage) -> None:
        """Handle sender-to-receiver RTCP (the SDES frame-rate item)."""
        if isinstance(message, SdesFrameRate):
            stream = self._streams.get(message.ssrc)
            if stream is not None:
                stream.feedback.set_expected_frame_rate(message.frame_rate)

    # -- lifecycle -----------------------------------------------------------------

    def on_path_added(self, path_id: int) -> None:
        """Wire ingress for a path born mid-call."""
        self.paths.get(path_id).on_deliver = self.on_packet
        self._path_states.setdefault(path_id, _PathReceiveState())

    def on_path_removed(self, path_id: int) -> None:
        """Drop receive state for a dead path, flushing its last report.

        Call this *after* the path leaves the :class:`PathSet`: the
        final transport feedback (acks for packets that landed just
        before the teardown) then rides a surviving path, exactly like
        call-level RTCP.
        """
        state = self._path_states.pop(path_id, None)
        if state is None:
            return
        if state.transport_entries:
            self._send_rtcp(
                TransportFeedback(
                    ssrc=0, path_id=path_id, packets=state.transport_entries
                )
            )

    def finalize(self) -> None:
        """Flush buffer-level statistics into the metrics collector."""
        for stream in self._streams.values():
            self.metrics.add_frame_drops(
                stream.frame_buffer.stats.frames_dropped
                + stream.packet_buffer.stats.evicted_frames
            )
            self.metrics.add_fec_stats(
                stream.fec_tracker.stats.fec_received,
                stream.fec_tracker.stats.recoveries,
            )

    def stop(self) -> None:
        self._tf_process.stop()
        self._rr_process.stop()
        self._keyframe_watch.stop()
        for stream in self._streams.values():
            if stream.nack is not None:
                stream.nack.stop()

    # -- helpers ------------------------------------------------------------------

    def _prune_recent(self, stream: _StreamState) -> None:
        if len(stream.recent_packets) > 8192:
            horizon = max(stream.recent_packets) - 4096
            stream.recent_packets = {
                seq: pkt
                for seq, pkt in stream.recent_packets.items()
                if seq >= horizon
            }

    def stream_state(self, ssrc: int) -> _StreamState:
        return self._streams[ssrc]
