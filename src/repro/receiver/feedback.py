"""Converge's video QoE feedback generator (§4.2).

Watches the frame construction process: when the InterFrame Delay of a
newly inserted frame exceeds the expected IFD (the inverse of the
frame rate the sender announced over SDES), the generator identifies
the path responsible by counting packets that arrived after the
reference (fastest-finishing) path's packets, and emits feedback
``(path_id, alpha, FCD)`` — negative ``alpha`` shrinks the offending
path's packet budget at the sender (Eq. 2), positive ``alpha`` grows a
path whose packets all arrived early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.receiver.packet_buffer import PacketArrival
from repro.video.decoder import AssembledFrame


@dataclass
class QoeFeedbackConfig:
    """Sensitivity knobs for the feedback generator."""

    # IFD must exceed ifd_exp by this factor before feedback fires;
    # a small tolerance filters camera-tick jitter.
    ifd_tolerance: float = 1.15
    # Packets within this slack of the reference arrival do not count
    # as late.
    lateness_slack: float = 0.002
    min_feedback_interval: float = 0.05
    max_negative_alpha: int = 20
    max_positive_alpha: int = 5
    # Negative feedback additionally requires the FCD to exceed its
    # own slow baseline by this fraction of the expected IFD: constant
    # path-RTT skew inflates every frame's FCD equally and is harmless,
    # only *growing* gathering delay signals a deteriorating path.
    fcd_excess_fraction: float = 0.5
    fcd_baseline_gain: float = 0.05


@dataclass
class FeedbackDecision:
    """What the generator decided for one QoE-drop event."""

    path_id: int
    alpha: int
    fcd: float


class QoeFeedbackGenerator:
    """Per-stream feedback logic fed by frame-buffer insertions."""

    def __init__(
        self,
        config: QoeFeedbackConfig | None = None,
        on_feedback: Optional[Callable[[FeedbackDecision], None]] = None,
    ) -> None:
        self.config = config or QoeFeedbackConfig()
        self._on_feedback = on_feedback
        self._ifd_exp = 1.0 / 30.0
        self._last_feedback_time: Optional[float] = None
        self._fcd_baseline: Optional[float] = None
        self.feedback_sent = 0
        self.qoe_drops_detected = 0

    def set_expected_frame_rate(self, frame_rate: float) -> None:
        """Apply the frame rate announced via the SDES message."""
        if frame_rate <= 0:
            raise ValueError("frame rate must be positive")
        self._ifd_exp = 1.0 / frame_rate

    @property
    def expected_ifd(self) -> float:
        return self._ifd_exp

    def on_frame_inserted(
        self,
        frame: AssembledFrame,
        arrivals: Sequence[PacketArrival],
        ifd: Optional[float],
        now: float,
    ) -> Optional[FeedbackDecision]:
        """Evaluate one frame insertion; emit feedback on a QoE drop."""
        fcd = frame.completed_at - frame.first_arrival
        baseline = self._update_fcd_baseline(fcd)
        if ifd is None or ifd <= self._ifd_exp * self.config.ifd_tolerance:
            return None
        self.qoe_drops_detected += 1
        if self._rate_limited(now):
            return None
        fcd_excess = fcd - baseline
        decision = self._decide(frame, arrivals, fcd_excess)
        if decision is None:
            return None
        self._last_feedback_time = now
        self.feedback_sent += 1
        if self._on_feedback is not None:
            self._on_feedback(decision)
        return decision

    # -- internals -----------------------------------------------------------

    def _rate_limited(self, now: float) -> bool:
        return (
            self._last_feedback_time is not None
            and now - self._last_feedback_time
            < self.config.min_feedback_interval
        )

    def _update_fcd_baseline(self, fcd: float) -> float:
        if self._fcd_baseline is None:
            self._fcd_baseline = fcd
        else:
            self._fcd_baseline += self.config.fcd_baseline_gain * (
                fcd - self._fcd_baseline
            )
        return self._fcd_baseline

    def _decide(
        self,
        frame: AssembledFrame,
        arrivals: Sequence[PacketArrival],
        fcd_excess: float,
    ) -> Optional[FeedbackDecision]:
        by_path: Dict[int, List[float]] = {}
        for arrival in arrivals:
            if arrival.path_id < 0 or arrival.fec_recovered:
                continue
            by_path.setdefault(arrival.path_id, []).append(arrival.arrival_time)
        if len(by_path) < 2:
            return None
        fcd = frame.completed_at - frame.first_arrival
        # Reference ("fast") path: the one whose last packet landed
        # earliest — it finished its share of the frame first.
        reference = min(by_path, key=lambda p: max(by_path[p]))
        ref_last = max(by_path[reference])
        slack = self.config.lateness_slack

        worst_path = None
        worst_late = 0
        best_early_path = None
        best_early = 0
        for path_id, times in by_path.items():
            if path_id == reference:
                continue
            late = sum(1 for t in times if t > ref_last + slack)
            early = sum(1 for t in times if t <= ref_last - slack)
            if late > worst_late:
                worst_late = late
                worst_path = path_id
            if late == 0 and early > best_early:
                best_early = early
                best_early_path = path_id
        fcd_gate = self.config.fcd_excess_fraction * self._ifd_exp
        if worst_path is not None and fcd_excess > fcd_gate:
            alpha = -min(worst_late, self.config.max_negative_alpha)
            return FeedbackDecision(path_id=worst_path, alpha=alpha, fcd=fcd)
        if best_early_path is not None:
            # The QoE drop was not this path's fault and it delivered
            # early: it has headroom, shift packets toward it.
            alpha = min(best_early, self.config.max_positive_alpha)
            return FeedbackDecision(path_id=best_early_path, alpha=alpha, fcd=fcd)
        return None
