"""Receiver-side FEC group tracking and recovery accounting.

Maps arriving media packets and FEC packets onto their XOR groups
(:class:`~repro.fec.xor.XorFecGroup`) and reports recoveries so the
session can inject the recovered packet into the packet buffer.  Also
keeps the FEC *utilization* statistic the paper reports: the fraction
of received FEC packets that actually recovered a loss.

All sequence numbers handled here are *unwrapped* (the session owns
the per-stream unwrapper), so groups survive 16-bit wraps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.fec.xor import XorFecGroup


@dataclass
class FecTrackerStats:
    fec_received: int = 0
    recoveries: int = 0

    @property
    def utilization(self) -> float:
        if self.fec_received == 0:
            return 0.0
        return self.recoveries / self.fec_received


class FecTracker:
    """Tracks XOR groups for one stream."""

    def __init__(self, max_groups: int = 256) -> None:
        self.stats = FecTrackerStats()
        self.max_groups = max_groups
        self._groups: Dict[int, XorFecGroup] = {}  # fec unwrapped seq -> group
        self._seq_to_groups: Dict[int, List[int]] = {}
        # Media packets can arrive before the FEC packet describing
        # their group; remember recent arrivals to back-fill.
        self._arrived: Set[int] = set()
        self._highest_arrival = -1

    def on_media_packet(self, seq: int) -> Optional[int]:
        """Record a media arrival (unwrapped seq).

        Returns a recovered seq if this arrival completed a group that
        had both a loss and its FEC packet waiting.
        """
        self._arrived.add(seq)
        if seq > self._highest_arrival:
            self._highest_arrival = seq
        if len(self._arrived) > 16384:
            self._prune_arrivals()
        for fec_seq in self._seq_to_groups.get(seq, ()):
            group = self._groups.get(fec_seq)
            if group is None:
                continue
            group.mark_media_received(seq)
            recovered = self._attempt(group)
            if recovered is not None:
                return recovered
        return None

    def on_fec_packet(
        self, fec_seq: int, protected_seqs: List[int]
    ) -> Optional[int]:
        """Record a FEC arrival; returns a recovered seq if any."""
        self.stats.fec_received += 1
        group = self._groups.get(fec_seq)
        if group is None:
            group = XorFecGroup(fec_seq=fec_seq, protected_seqs=protected_seqs)
            for seq in protected_seqs:
                if seq in self._arrived:
                    group.mark_media_received(seq)
            self._register(group)
        group.mark_fec_received()
        return self._attempt(group)

    def _attempt(self, group: XorFecGroup) -> Optional[int]:
        recovered = group.try_recover()
        if recovered is not None:
            self.stats.recoveries += 1
            self._arrived.add(recovered)
        return recovered

    def _register(self, group: XorFecGroup) -> None:
        self._groups[group.fec_seq] = group
        for seq in group.protected_seqs:
            self._seq_to_groups.setdefault(seq, []).append(group.fec_seq)
        if len(self._groups) > self.max_groups:
            self._expire_oldest()

    def _expire_oldest(self) -> None:
        oldest = min(self._groups)
        group = self._groups.pop(oldest)
        for seq in group.protected_seqs:
            fecs = self._seq_to_groups.get(seq)
            if fecs and oldest in fecs:
                fecs.remove(oldest)
                if not fecs:
                    del self._seq_to_groups[seq]

    def _prune_arrivals(self) -> None:
        if len(self._arrived) > 16384:
            horizon = self._highest_arrival - 8192
            self._arrived = {s for s in self._arrived if s >= horizon}

    @property
    def active_groups(self) -> int:
        return len(self._groups)
