"""Fault injection: declarative fault plans applied to running calls."""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.scenarios import (
    CHAOS_SCENARIOS,
    build_chaos_plan,
    chaos_scenario_names,
)

__all__ = [
    "CHAOS_SCENARIOS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "build_chaos_plan",
    "chaos_scenario_names",
]
