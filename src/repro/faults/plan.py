"""Declarative fault plans: what breaks, where, when, and how hard.

A :class:`FaultPlan` is a validated list of :class:`FaultEvent`
entries, each describing one fault window against one path of a
running call.  Plans are plain data — serializable to/from dicts — so
chaos scenarios can be shipped in JSON, diffed, and replayed
deterministically; the :class:`repro.faults.injector.FaultInjector`
turns a plan into scheduled simulator events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, Iterator, List


class FaultKind(Enum):
    """The fault classes the injector knows how to apply."""

    # Forward (media) direction.
    BLACKOUT = "blackout"  # capacity -> 0 for the window
    CAPACITY_CAP = "capacity-cap"  # capacity clamped to `magnitude` bps
    LOSS_STORM = "loss-storm"  # Bernoulli loss at `magnitude`
    DELAY_SPIKE = "delay-spike"  # +`magnitude` seconds one-way (both dirs)
    QUEUE_FLAP = "queue-flap"  # bottleneck queue shrunk to `magnitude` bytes
    # Reverse (RTCP feedback) direction.
    FEEDBACK_BLACKOUT = "feedback-blackout"  # all feedback dropped
    FEEDBACK_LOSS = "feedback-loss"  # feedback Bernoulli loss at `magnitude`


class ChurnAction(Enum):
    """Path membership changes the churn driver knows how to apply."""

    BIRTH = "birth"  # a new path joins the call at `time`
    DEATH = "death"  # an existing path is torn down abruptly
    DRAIN = "drain"  # graceful teardown: drain in-flight, then remove


# Kinds whose ``magnitude`` is a probability in [0, 1].
_RATE_KINDS = (FaultKind.LOSS_STORM, FaultKind.FEEDBACK_LOSS)
# Kinds whose ``magnitude`` must be a positive quantity.
_POSITIVE_KINDS = (FaultKind.DELAY_SPIKE, FaultKind.QUEUE_FLAP)
# Kinds that ignore ``magnitude`` entirely.
_UNIT_KINDS = (FaultKind.BLACKOUT, FaultKind.FEEDBACK_BLACKOUT)


@dataclass(frozen=True)
class FaultEvent:
    """One fault window: ``kind`` hits ``path_id`` during [start, end)."""

    kind: FaultKind
    path_id: int
    start: float
    duration: float
    # Kind-specific magnitude: loss probability for the *-loss kinds,
    # bps for CAPACITY_CAP, seconds for DELAY_SPIKE, bytes for
    # QUEUE_FLAP.  Unused for the blackout kinds.
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.path_id < 0:
            raise ValueError(f"path_id must be non-negative: {self.path_id}")
        if self.start < 0:
            raise ValueError(f"fault start must be non-negative: {self.start}")
        if self.duration <= 0:
            raise ValueError(f"fault duration must be positive: {self.duration}")
        if self.kind in _RATE_KINDS and not 0.0 <= self.magnitude <= 1.0:
            raise ValueError(
                f"{self.kind.value} magnitude must be in [0, 1]: {self.magnitude}"
            )
        if self.kind in _POSITIVE_KINDS and self.magnitude <= 0:
            raise ValueError(
                f"{self.kind.value} magnitude must be positive: {self.magnitude}"
            )
        if self.kind is FaultKind.CAPACITY_CAP and self.magnitude < 0:
            raise ValueError(
                f"capacity cap must be non-negative: {self.magnitude}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind.value,
            "path_id": self.path_id,
            "start": self.start,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(
            kind=FaultKind(data["kind"]),
            path_id=int(data["path_id"]),
            start=float(data["start"]),
            duration=float(data["duration"]),
            magnitude=float(data.get("magnitude", 0.0)),
        )


@dataclass(frozen=True)
class PathChurnEvent:
    """One path membership change at one instant.

    Unlike :class:`FaultEvent` (a window against a still-registered
    path) churn events are instants that change the path set itself.
    ``BIRTH`` needs a ``network`` (the trace profile the new path runs
    on); ``DEATH``/``DRAIN`` target an existing path by id.
    """

    action: ChurnAction
    path_id: int
    time: float
    # BIRTH only: which network profile of the scenario the new path
    # uses for its capacity trace / loss model / propagation delay.
    network: str = ""

    def __post_init__(self) -> None:
        if self.path_id < 0:
            raise ValueError(f"path_id must be non-negative: {self.path_id}")
        if self.time < 0:
            raise ValueError(f"churn time must be non-negative: {self.time}")
        if self.action is ChurnAction.BIRTH and not self.network:
            raise ValueError("a BIRTH event needs a network name")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "action": self.action.value,
            "path_id": self.path_id,
            "time": self.time,
            "network": self.network,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PathChurnEvent":
        return cls(
            action=ChurnAction(data["action"]),
            path_id=int(data["path_id"]),
            time=float(data["time"]),
            network=str(data.get("network", "")),
        )


@dataclass
class FaultPlan:
    """A validated schedule of fault events for one call."""

    events: List[FaultEvent] = field(default_factory=list)
    # Path membership changes, applied by the churn driver.  Kept
    # separate from the window events: ``__len__``/iteration remain
    # fault-window views so existing consumers (the injector, CLI
    # tables) are unaffected by churn-only plans.
    churn: List[PathChurnEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(
            self.events, key=lambda e: (e.start, e.path_id, e.kind.value)
        )
        self.churn = sorted(
            self.churn, key=lambda e: (e.time, e.path_id, e.action.value)
        )
        self._check_overlaps()
        self._check_churn()

    def _check_churn(self) -> None:
        # A path id must alternate dead->born->dead...: two births
        # without an intervening death (or vice versa) is a plan bug.
        alive: Dict[int, bool] = {}
        for event in self.churn:
            was_alive = alive.get(event.path_id)
            if event.action is ChurnAction.BIRTH:
                if was_alive is True:
                    raise ValueError(
                        f"path {event.path_id} born twice without a death"
                    )
                alive[event.path_id] = True
            else:
                if was_alive is False:
                    raise ValueError(
                        f"path {event.path_id} removed twice without a birth"
                    )
                alive[event.path_id] = False

    def _check_overlaps(self) -> None:
        # Two windows of the same kind on the same path must not
        # overlap: the injector's clear would otherwise revert the
        # later fault's override mid-window.
        last_end: Dict[tuple, float] = {}
        for event in self.events:
            key = (event.kind, event.path_id)
            if event.start < last_end.get(key, -1.0):
                raise ValueError(
                    f"overlapping {event.kind.value} faults on path "
                    f"{event.path_id} at t={event.start}"
                )
            last_end[key] = event.end

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @property
    def max_end(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def for_path(self, path_id: int) -> List[FaultEvent]:
        return [e for e in self.events if e.path_id == path_id]

    @property
    def max_churn_time(self) -> float:
        return max((e.time for e in self.churn), default=0.0)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"events": [e.to_dict() for e in self.events]}
        if self.churn:
            data["churn"] = [e.to_dict() for e in self.churn]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            events=[FaultEvent.from_dict(e) for e in data.get("events", [])],
            churn=[
                PathChurnEvent.from_dict(e) for e in data.get("churn", [])
            ],
        )

    @classmethod
    def of(cls, events: Iterable[FaultEvent]) -> "FaultPlan":
        return cls(events=list(events))
