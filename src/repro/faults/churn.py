"""Applies a plan's path churn schedule to a running call.

The churn driver is the membership counterpart of the
:class:`repro.faults.injector.FaultInjector`: where the injector flips
reversible overrides on still-registered paths, the driver changes the
path set itself — births wire a brand-new path into both endpoints,
deaths and drains tear one down through the call's lifecycle methods
(:meth:`repro.core.session.ConferenceCall.add_path` /
:meth:`~repro.core.session.ConferenceCall.remove_path`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.faults.plan import ChurnAction, PathChurnEvent
from repro.simulation.simulator import Simulator

if TYPE_CHECKING:
    from repro.core.session import ConferenceCall


class ChurnDriver:
    """Schedules and applies the churn events of one plan."""

    def __init__(
        self,
        sim: Simulator,
        call: "ConferenceCall",
        churn: List[PathChurnEvent],
    ) -> None:
        self.sim = sim
        self.call = call
        self.churn = list(churn)
        self._armed = False

    def arm(self) -> None:
        """Schedule every churn event; idempotent."""
        if self._armed:
            return
        self._armed = True
        for event in self.churn:
            self.sim.schedule_at(event.time, self._apply, event)

    def _apply(self, event: PathChurnEvent) -> None:
        if event.action is ChurnAction.BIRTH:
            self.call.add_path(event.path_id, event.network)
        elif event.action is ChurnAction.DEATH:
            self.call.remove_path(event.path_id, graceful=False)
        else:
            self.call.remove_path(event.path_id, graceful=True)
