"""Canned chaos scenarios: named fault plans for CLI and experiments.

Each builder returns a :class:`FaultPlan` scaled to the call duration.
They are registered in :data:`CHAOS_SCENARIOS` and exposed through
``repro chaos --chaos <name>`` and
:func:`repro.experiments.common.run_chaos`.  Builders take the call
``duration``, the experiment ``seed`` (used only by the randomized
scenario, via a named stream so plans stay reproducible), and the
number of paths in the call.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.faults.plan import (
    ChurnAction,
    FaultEvent,
    FaultKind,
    FaultPlan,
    PathChurnEvent,
)
from repro.simulation.random import RandomStreams

ChaosBuilder = Callable[[float, int, int], FaultPlan]

CHAOS_SCENARIOS: Dict[str, ChaosBuilder] = {}


def register(name: str) -> Callable[[ChaosBuilder], ChaosBuilder]:
    def wrap(builder: ChaosBuilder) -> ChaosBuilder:
        CHAOS_SCENARIOS[name] = builder
        return builder

    return wrap


def build_chaos_plan(
    name: str, duration: float, seed: int = 1, num_paths: int = 2
) -> FaultPlan:
    """Instantiate the named chaos scenario for a call."""
    if name not in CHAOS_SCENARIOS:
        known = ", ".join(sorted(CHAOS_SCENARIOS))
        raise ValueError(f"unknown chaos scenario {name!r} (known: {known})")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if num_paths < 1:
        raise ValueError("need at least one path")
    return CHAOS_SCENARIOS[name](duration, seed, num_paths)


def chaos_scenario_names() -> List[str]:
    return sorted(CHAOS_SCENARIOS)


def _second_path(num_paths: int) -> int:
    return 1 if num_paths > 1 else 0


@register("rtcp-blackout")
def rtcp_blackout(duration: float, seed: int, num_paths: int) -> FaultPlan:
    """3 s reverse-channel blackout on path 0 (the acceptance fault).

    Media keeps flowing forward; only the control loop goes dark.  The
    sender must notice the silence itself, demote the path, and
    re-admit it via backoff probes once feedback returns.
    """
    start = min(duration * 0.3, max(duration - 6.0, 1.0))
    return FaultPlan.of(
        [
            FaultEvent(
                kind=FaultKind.FEEDBACK_BLACKOUT,
                path_id=0,
                start=start,
                duration=min(3.0, duration * 0.2),
            )
        ]
    )


@register("rtcp-lossy")
def rtcp_lossy(duration: float, seed: int, num_paths: int) -> FaultPlan:
    """30% RTCP loss on every path for the middle half of the call."""
    start = duration * 0.25
    return FaultPlan.of(
        [
            FaultEvent(
                kind=FaultKind.FEEDBACK_LOSS,
                path_id=path_id,
                start=start,
                duration=duration * 0.5,
                magnitude=0.3,
            )
            for path_id in range(num_paths)
        ]
    )


@register("midcall-blackout")
def midcall_blackout(duration: float, seed: int, num_paths: int) -> FaultPlan:
    """Forward blackout of the second path for 5 s mid-call."""
    return FaultPlan.of(
        [
            FaultEvent(
                kind=FaultKind.BLACKOUT,
                path_id=_second_path(num_paths),
                start=duration * 0.3,
                duration=min(5.0, duration * 0.25),
            )
        ]
    )


@register("loss-storm")
def loss_storm(duration: float, seed: int, num_paths: int) -> FaultPlan:
    """30% forward loss on the second path for a quarter of the call."""
    return FaultPlan.of(
        [
            FaultEvent(
                kind=FaultKind.LOSS_STORM,
                path_id=_second_path(num_paths),
                start=duration * 0.3,
                duration=duration * 0.25,
                magnitude=0.3,
            )
        ]
    )


@register("delay-spike")
def delay_spike(duration: float, seed: int, num_paths: int) -> FaultPlan:
    """+150 ms one-way delay on path 0 for 5 s (route change / handover)."""
    return FaultPlan.of(
        [
            FaultEvent(
                kind=FaultKind.DELAY_SPIKE,
                path_id=0,
                start=duration * 0.4,
                duration=min(5.0, duration * 0.2),
                magnitude=0.15,
            )
        ]
    )


@register("queue-flap")
def queue_flap(duration: float, seed: int, num_paths: int) -> FaultPlan:
    """The second path's bottleneck queue flaps down to 8 kB, thrice."""
    path_id = _second_path(num_paths)
    window = duration / 8
    events = []
    for i in range(3):
        events.append(
            FaultEvent(
                kind=FaultKind.QUEUE_FLAP,
                path_id=path_id,
                start=duration * 0.2 + i * 2 * window,
                duration=window,
                magnitude=8_000,
            )
        )
    return FaultPlan.of(events)


@register("handover")
def handover(
    duration: float,
    seed: int,
    num_paths: int,
    target_path: Optional[int] = None,
) -> FaultPlan:
    """A cellular handover: blackout, then a delay spike.

    The affected path is parameterized: pass ``target_path``
    explicitly, or let the seed pick one — real handovers do not
    conveniently always hit the first interface.
    """
    if target_path is None:
        target_path = seed % num_paths
    if not 0 <= target_path < num_paths:
        raise ValueError(
            f"target_path {target_path} out of range for {num_paths} paths"
        )
    start = duration * 0.35
    return FaultPlan.of(
        [
            FaultEvent(
                kind=FaultKind.BLACKOUT,
                path_id=target_path,
                start=start,
                duration=1.5,
            ),
            FaultEvent(
                kind=FaultKind.DELAY_SPIKE,
                path_id=target_path,
                start=start + 1.5,
                duration=3.0,
                magnitude=0.08,
            ),
        ]
    )


@register("uplink-death")
def uplink_death(duration: float, seed: int, num_paths: int) -> FaultPlan:
    """Forward AND reverse blackout of path 0 together: the radio died.

    LoLa-style cellular blackout — the uplink carrying RTCP dies with
    the downlink, so the sender loses both media delivery and the
    signal that would have told it so.
    """
    start = duration * 0.3
    window = min(4.0, duration * 0.2)
    return FaultPlan.of(
        [
            FaultEvent(
                kind=FaultKind.BLACKOUT,
                path_id=0,
                start=start,
                duration=window,
            ),
            FaultEvent(
                kind=FaultKind.FEEDBACK_BLACKOUT,
                path_id=0,
                start=start,
                duration=window,
            ),
        ]
    )


@register("path-churn")
def path_churn(duration: float, seed: int, num_paths: int) -> FaultPlan:
    """Sustained membership churn: drains, abrupt deaths, and births.

    The schedule walks the call through every lifecycle transition:
    a graceful drain of the second path, an abrupt death of the
    first, and two mid-call births that must bootstrap from nothing.
    Birth networks name the ``migration`` trace scenario's WiFi / LTE
    profiles; under any other scenario the call substitutes a profile
    the scenario actually has, so churn composes with every trace.
    """
    churn: List[PathChurnEvent] = []
    if num_paths > 1:
        churn.append(
            PathChurnEvent(
                action=ChurnAction.DRAIN,
                path_id=_second_path(num_paths),
                time=duration * 0.2,
            )
        )
    churn.extend(
        [
            PathChurnEvent(
                action=ChurnAction.BIRTH,
                path_id=num_paths,
                time=duration * 0.35,
                network="lte",
            ),
            PathChurnEvent(
                action=ChurnAction.DEATH, path_id=0, time=duration * 0.5
            ),
            PathChurnEvent(
                action=ChurnAction.BIRTH,
                path_id=num_paths + 1,
                time=duration * 0.65,
                network="wifi",
            ),
            PathChurnEvent(
                action=ChurnAction.DEATH,
                path_id=num_paths,
                time=duration * 0.8,
            ),
        ]
    )
    return FaultPlan(churn=churn)


@register("wifi-lte-migration")
def wifi_lte_migration(
    duration: float, seed: int, num_paths: int
) -> FaultPlan:
    """WiFi -> LTE migration: the LTE path attaches, then WiFi dies.

    Models walking out of WiFi coverage with make-before-break: the
    cellular interface comes up first (BIRTH), the WiFi path vanishes
    abruptly a beat later (DEATH — no time for a graceful drain, the
    radio is simply gone).  The call must carry every in-flight packet
    of the dead path over to the newborn survivor.
    """
    return FaultPlan(
        churn=[
            PathChurnEvent(
                action=ChurnAction.BIRTH,
                path_id=num_paths,
                time=duration * 0.35,
                network="lte",
            ),
            PathChurnEvent(
                action=ChurnAction.DEATH, path_id=0, time=duration * 0.55
            ),
        ]
    )


@register("chaos-monkey")
def chaos_monkey(duration: float, seed: int, num_paths: int) -> FaultPlan:
    """A seeded random barrage of faults across all paths.

    Draws from a named random stream so the same seed always produces
    the same plan (the determinism contract benchmarks rely on).
    """
    rng = RandomStreams(seed).stream("chaos-monkey")
    kinds = [
        FaultKind.BLACKOUT,
        FaultKind.LOSS_STORM,
        FaultKind.DELAY_SPIKE,
        FaultKind.QUEUE_FLAP,
        FaultKind.FEEDBACK_BLACKOUT,
        FaultKind.FEEDBACK_LOSS,
    ]
    events: List[FaultEvent] = []
    # Per (kind, path) cursor keeps same-kind windows non-overlapping.
    cursors: Dict[tuple, float] = {}
    num_faults = max(int(duration / 8), 1)
    for _ in range(num_faults * num_paths):
        kind = rng.choice(kinds)
        path_id = rng.randrange(num_paths)
        window = rng.uniform(1.0, 4.0)
        earliest = cursors.get((kind, path_id), 1.0)
        latest = duration - window - 1.0
        if latest <= earliest:
            continue
        start = rng.uniform(earliest, latest)
        cursors[(kind, path_id)] = start + window + 0.5
        magnitude = 0.0
        if kind is FaultKind.LOSS_STORM:
            magnitude = rng.uniform(0.1, 0.4)
        elif kind is FaultKind.FEEDBACK_LOSS:
            magnitude = rng.uniform(0.2, 0.6)
        elif kind is FaultKind.DELAY_SPIKE:
            magnitude = rng.uniform(0.05, 0.2)
        elif kind is FaultKind.QUEUE_FLAP:
            magnitude = rng.uniform(4_000, 32_000)
        events.append(
            FaultEvent(
                kind=kind,
                path_id=path_id,
                start=start,
                duration=window,
                magnitude=magnitude,
            )
        )
    return FaultPlan.of(events)
