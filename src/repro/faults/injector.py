"""Applies a :class:`FaultPlan` to the live paths of a running call.

The injector schedules one apply/clear callback pair per fault event
against the simulator clock and flips the matching runtime override on
the target :class:`repro.net.path.Path`.  Every fault window is also
recorded in the metrics collector so the recovery-accounting layer
(:mod:`repro.metrics.recovery`) can measure how quickly the control
loop restores rate and QoE after each fault clears.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.metrics.collector import MetricsCollector
from repro.net.loss import BernoulliLoss
from repro.net.multipath import PathSet
from repro.simulation.simulator import Simulator


class FaultInjector:
    """Schedules and applies the fault windows of one plan."""

    def __init__(
        self,
        sim: Simulator,
        paths: PathSet,
        plan: FaultPlan,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.sim = sim
        self.paths = paths
        self.plan = plan
        self.metrics = metrics
        self._active: Set[FaultEvent] = set()
        self._armed = False
        for event in plan:
            if event.path_id not in paths:
                raise ValueError(
                    f"fault targets unknown path {event.path_id}"
                )

    def arm(self) -> None:
        """Schedule every fault window; idempotent."""
        if self._armed:
            return
        self._armed = True
        for event in self.plan:
            if self.metrics is not None:
                self.metrics.record_fault(
                    event.kind.value, event.path_id, event.start, event.end
                )
            self.sim.schedule_at(event.start, self._apply, event)
            self.sim.schedule_at(event.end, self._clear, event)

    def active_faults(self) -> List[FaultEvent]:
        """Fault windows currently in force, ordered by start time."""
        return sorted(self._active, key=lambda e: (e.start, e.path_id))

    # -- apply / clear -------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        path = self.paths.get(event.path_id)
        self._active.add(event)
        kind = event.kind
        if kind is FaultKind.BLACKOUT:
            path.set_capacity_cap(0.0)
        elif kind is FaultKind.CAPACITY_CAP:
            path.set_capacity_cap(event.magnitude)
        elif kind is FaultKind.LOSS_STORM:
            path.set_loss_override(BernoulliLoss(event.magnitude))
        elif kind is FaultKind.DELAY_SPIKE:
            path.set_extra_delay(event.magnitude)
        elif kind is FaultKind.QUEUE_FLAP:
            path.set_queue_capacity_override(int(event.magnitude))
        elif kind is FaultKind.FEEDBACK_BLACKOUT:
            path.set_feedback_outage(True)
        elif kind is FaultKind.FEEDBACK_LOSS:
            path.set_feedback_loss(BernoulliLoss(event.magnitude))

    def _clear(self, event: FaultEvent) -> None:
        path = self.paths.get(event.path_id)
        self._active.discard(event)
        kind = event.kind
        if kind in (FaultKind.BLACKOUT, FaultKind.CAPACITY_CAP):
            path.set_capacity_cap(None)
        elif kind is FaultKind.LOSS_STORM:
            path.set_loss_override(None)
        elif kind is FaultKind.DELAY_SPIKE:
            path.set_extra_delay(0.0)
        elif kind is FaultKind.QUEUE_FLAP:
            path.set_queue_capacity_override(None)
        elif kind is FaultKind.FEEDBACK_BLACKOUT:
            path.set_feedback_outage(False)
        elif kind is FaultKind.FEEDBACK_LOSS:
            path.set_feedback_loss(None)
