"""repro — a reproduction of Converge (SIGCOMM 2023).

Converge: QoE-driven Multipath Video Conferencing over WebRTC.

The package provides a discrete-event reproduction of the full system:
the WebRTC media pipeline (GCC congestion control, encoder/packetizer,
bounded receive buffers, NACK/PLI, XOR FEC), the Converge extensions
(video-aware scheduler, QoE feedback, path-specific FEC), the baseline
multipath schedulers the paper compares against, the Appendix-D
network scenarios, and one experiment module per table/figure of the
evaluation.

Quickstart::

    from repro import SystemKind, build_call_config, run_call
    from repro.experiments.common import scenario_paths

    config = build_call_config(SystemKind.CONVERGE, duration=30.0)
    paths = scenario_paths("driving", duration=30.0, seed=1)
    result = run_call(config, paths)
    print(result.summary.average_fps, result.summary.e2e_mean)
"""

from repro.core.api import build_call_config, build_scheduler, run_call
from repro.core.config import CallConfig, FecMode, SystemKind
from repro.core.session import CallResult, ConferenceCall
from repro.metrics.qoe import QoeSummary, summarize

__version__ = "1.0.0"

__all__ = [
    "CallConfig",
    "CallResult",
    "ConferenceCall",
    "FecMode",
    "QoeSummary",
    "SystemKind",
    "build_call_config",
    "build_scheduler",
    "run_call",
    "summarize",
]
