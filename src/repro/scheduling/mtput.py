"""M-TPUT: Musher-style throughput-proportional scheduling.

Distributes packets across paths in proportion to each path's measured
throughput [69], interleaving round-robin within the round.  No video
awareness: keyframe, parameter-set and FEC packets are spread exactly
like any other packet.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.rtp.packets import RtpPacket
from repro.scheduling.base import (
    Assignment,
    PathSnapshot,
    ProportionalSplitter,
    Scheduler,
)


class ThroughputScheduler(Scheduler):
    """Split proportional to measured per-path throughput."""

    def __init__(self) -> None:
        self._splitter = ProportionalSplitter()

    def on_path_removed(self, path_id: int) -> None:
        self._splitter.forget(path_id)

    def assign(
        self,
        packets: Sequence[RtpPacket],
        paths: Sequence[PathSnapshot],
        now: float,
    ) -> Assignment:
        enabled = [p for p in paths if p.enabled]
        if not enabled:
            enabled = list(paths)
        weights = [max(p.goodput, p.send_rate * 0.1) for p in enabled]
        shares = self._splitter.split(
            len(packets), [p.path_id for p in enabled], weights
        )
        # Interleave so consecutive packets alternate paths — this is
        # what a rate-proportional token scheduler produces and what
        # maximizes reordering pain at the receiver.
        assignments: Assignment = []
        quotas: List[int] = list(shares)
        path_index = 0
        for packet in packets:
            # Find the next path with quota, round-robin.
            for _ in range(len(enabled)):
                if quotas[path_index] > 0:
                    break
                path_index = (path_index + 1) % len(enabled)
            if quotas[path_index] <= 0:
                # All quotas spent (rounding): dump on the best path.
                best = max(range(len(enabled)), key=lambda i: weights[i])
                assignments.append((packet, enabled[best].path_id))
                continue
            quotas[path_index] -= 1
            assignments.append((packet, enabled[path_index].path_id))
            path_index = (path_index + 1) % len(enabled)
        return assignments
