"""SRTT: the minRTT scheduler of MPTCP/MPQUIC applied to WebRTC.

Fills the lowest-RTT path up to its per-round packet allowance, then
moves to the next-lowest, with no knowledge of frame structure or
packet importance — the behaviour the paper shows breaking real-time
video (§2.3).
"""

from __future__ import annotations

from typing import Sequence

from repro.rtp.packets import RtpPacket
from repro.scheduling.base import Assignment, PathSnapshot, Scheduler


class MinRttScheduler(Scheduler):
    """Prefer the path with minimum smoothed RTT."""

    def assign(
        self,
        packets: Sequence[RtpPacket],
        paths: Sequence[PathSnapshot],
        now: float,
    ) -> Assignment:
        enabled = [p for p in paths if p.enabled]
        if not enabled:
            enabled = list(paths)
        ranked = sorted(enabled, key=lambda p: p.srtt)
        assignments: Assignment = []
        index = 0
        for path in ranked:
            room = max(path.max_packets, 1)
            while room > 0 and index < len(packets):
                assignments.append((packets[index], path.path_id))
                index += 1
                room -= 1
        # Everything still unassigned goes on the overall-min-RTT path,
        # as minRTT does when all windows are full.
        while index < len(packets):
            assignments.append((packets[index], ranked[0].path_id))
            index += 1
        return assignments
