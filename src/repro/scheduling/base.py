"""Scheduler interface and the per-path snapshot it consumes."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.rtp.packets import RtpPacket


@dataclass
class PathSnapshot:
    """The sender's view of one path at scheduling time.

    ``send_rate`` is the per-path GCC target ``S_i`` (bps); ``goodput``
    the measured receive rate; ``budget_packets`` the per-round packet
    allowance after Eq. 2 feedback adjustment (``P_i``); ``max_packets``
    the hard per-round ceiling ``P_max`` derived from ``S_i``.
    """

    path_id: int
    srtt: float
    loss: float
    send_rate: float
    goodput: float
    budget_packets: int
    max_packets: int
    enabled: bool = True
    last_feedback_age: float = 0.0
    # Feedback-silence watchdog verdict: the path still carries media
    # but its control loop is running on stale state, so schedulers
    # should keep priority packets off it while any healthy path exists.
    degraded: bool = False

    def completion_time(self, num_packets: int, packet_size: int) -> float:
        """Algorithm 1: ``cpt_i = N*k/rate_i + rtt_i/2`` (rate in B/s)."""
        rate_bytes = max(self.goodput, self.send_rate, 1.0) / 8
        return num_packets * packet_size / rate_bytes + self.srtt / 2


# Sentinel path id: the scheduler decided to shed this packet at the
# sender (every path is at its P_max ceiling).
DROP_PATH = -1

Assignment = List[Tuple[RtpPacket, int]]


class Scheduler(ABC):
    """Assigns each packet of a scheduling round to exactly one path."""

    @abstractmethod
    def assign(
        self,
        packets: Sequence[RtpPacket],
        paths: Sequence[PathSnapshot],
        now: float,
    ) -> Assignment:
        """Return ``(packet, path_id)`` pairs covering every packet."""

    @property
    def uses_qoe_feedback(self) -> bool:
        """Whether Eq. 2 budgets should be honoured for this scheduler."""
        return False

    # -- path lifecycle hooks ---------------------------------------------
    # Stateless schedulers react to membership changes implicitly (they
    # only ever look at the snapshots handed to them each round), so the
    # default hooks are no-ops.  Stateful schedulers (splitter carry,
    # active-path choice) override to drop or re-seat their state.

    def on_path_added(self, path_id: int) -> None:
        """A path was born mid-call; it appears in future snapshots."""

    def on_path_removed(self, path_id: int) -> None:
        """A path died mid-call; it will never appear in snapshots again."""


class ProportionalSplitter:
    """Stateful proportional splitter with fractional carry.

    A per-round largest-remainder split systematically starves a path
    whose share stays below the other paths' fractional parts; carrying
    the unallocated fraction across rounds preserves every path's
    long-run proportion, which is what a token-based rate splitter in a
    real stack does.
    """

    def __init__(self) -> None:
        self._carry: Dict[object, float] = {}

    def split(
        self, total: int, keys: Sequence[object], weights: Sequence[float]
    ) -> List[int]:
        """Split ``total`` items across ``keys`` by ``weights``."""
        if len(keys) != len(weights):
            raise ValueError("keys and weights must align")
        base = split_exact(total, weights)
        want = [
            exact + self._carry.get(key, 0.0)
            for exact, key in zip(base, keys)
        ]
        alloc = [int(w) for w in want]
        remainder = total - sum(alloc)
        if remainder > 0:
            # Hand leftover items to the largest fractional parts.
            order = sorted(
                range(len(keys)), key=lambda i: want[i] - alloc[i], reverse=True
            )
            for i in order[:remainder]:
                alloc[i] += 1
        elif remainder < 0:
            # Accumulated carries overshot this round's total: claw
            # back from the smallest fractional parts first.
            order = sorted(
                (i for i in range(len(keys)) if alloc[i] > 0),
                key=lambda i: want[i] - alloc[i],
            )
            index = 0
            while remainder < 0 and order:
                i = order[index % len(order)]
                if alloc[i] > 0:
                    alloc[i] -= 1
                    remainder += 1
                index += 1
                order = [j for j in order if alloc[j] > 0]
        for key, w, a in zip(keys, want, alloc):
            self._carry[key] = min(max(w - a, 0.0), 0.999)
        return alloc

    def forget(self, key: object) -> None:
        """Drop the carry for a key whose path left the call.

        Without this a dead path's fractional carry would re-apply if
        a later path reuses the id, skewing its first rounds.
        """
        self._carry.pop(key, None)


def split_exact(total: int, weights: Sequence[float]) -> List[float]:
    """Exact (fractional) proportional shares of ``total``."""
    if total < 0:
        raise ValueError("total must be non-negative")
    if not weights:
        raise ValueError("need at least one weight")
    clamped = [max(w, 0.0) for w in weights]
    weight_sum = sum(clamped)
    if weight_sum <= 0:
        clamped = [1.0] * len(weights)
        weight_sum = float(len(weights))
    return [total * w / weight_sum for w in clamped]


def split_proportionally(total: int, weights: Sequence[float]) -> List[int]:
    """Largest-remainder split of ``total`` items by ``weights``.

    Guarantees the parts sum to ``total`` and each part is >= 0; zero
    or negative weights get nothing unless everything is zero, in
    which case the split is even.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not weights:
        raise ValueError("need at least one weight")
    clamped = [max(w, 0.0) for w in weights]
    weight_sum = sum(clamped)
    if weight_sum <= 0:
        clamped = [1.0] * len(weights)
        weight_sum = float(len(weights))
    exact = [total * w / weight_sum for w in clamped]
    parts = [int(x) for x in exact]
    remainder = total - sum(parts)
    # Distribute leftover items to the largest fractional parts.
    order = sorted(
        range(len(weights)), key=lambda i: exact[i] - parts[i], reverse=True
    )
    for i in order[:remainder]:
        parts[i] += 1
    return parts
