"""Single-path WebRTC and the connection-migration (CM) variant."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.rtp.packets import RtpPacket
from repro.scheduling.base import Assignment, PathSnapshot, Scheduler


class SinglePathScheduler(Scheduler):
    """Legacy WebRTC: everything on one fixed network path."""

    def __init__(self, path_id: int) -> None:
        self.path_id = path_id

    def assign(
        self,
        packets: Sequence[RtpPacket],
        paths: Sequence[PathSnapshot],
        now: float,
    ) -> Assignment:
        if paths and all(p.path_id != self.path_id for p in paths):
            # The fixed path left the call mid-session; legacy WebRTC
            # would renegotiate here, which we model as re-seating on
            # the lowest surviving path id.
            self.path_id = min(p.path_id for p in paths)
        return [(packet, self.path_id) for packet in packets]


class ConnectionMigrationScheduler(Scheduler):
    """WebRTC-CM: one active path, drop-and-reconnect on failure (§6).

    The CM system uses a single path at a time; when the active path
    shows no delivered feedback for ``failure_timeout`` seconds the
    connection is torn down and re-established on the other network,
    which blacks out media for ``reconnect_delay`` seconds — the
    ICE-restart cost of real WebRTC connection migration.
    """

    def __init__(
        self,
        initial_path_id: int,
        failure_timeout: float = 2.0,
        reconnect_delay: float = 1.5,
    ) -> None:
        self.active_path_id = initial_path_id
        self.failure_timeout = failure_timeout
        self.reconnect_delay = reconnect_delay
        self._reconnect_until: Optional[float] = None
        self._last_migration: Optional[float] = None
        self.migrations = 0

    def assign(
        self,
        packets: Sequence[RtpPacket],
        paths: Sequence[PathSnapshot],
        now: float,
    ) -> Assignment:
        if self._reconnect_until is not None:
            if now < self._reconnect_until:
                return []  # connection is re-establishing: nothing flows
            self._reconnect_until = None
        active = next(
            (p for p in paths if p.path_id == self.active_path_id), None
        )
        if active is None:
            # The active path vanished from the snapshot set entirely
            # (death or teardown): reconnect on whatever is left — no
            # point waiting out the failure timeout for a path that no
            # longer exists.
            if paths:
                self._migrate(paths, now)
            return []
        # Grace period after a migration: the new connection needs a
        # reconnect plus one failure window to produce feedback before
        # it can be judged, or the scheduler ping-pongs between paths.
        settling = (
            self._last_migration is not None
            and now - self._last_migration
            < self.reconnect_delay + self.failure_timeout
        )
        if (
            not settling
            and active is not None
            and active.last_feedback_age > self.failure_timeout
        ):
            self._migrate(paths, now)
            return []
        return [(packet, self.active_path_id) for packet in packets]

    def _migrate(self, paths: Sequence[PathSnapshot], now: float) -> None:
        candidates = [p for p in paths if p.path_id != self.active_path_id]
        if not candidates:
            return
        # Pick the candidate that has been heard from most recently.
        best = min(candidates, key=lambda p: p.last_feedback_age)
        self.active_path_id = best.path_id
        self._reconnect_until = now + self.reconnect_delay
        self._last_migration = now
        self.migrations += 1
