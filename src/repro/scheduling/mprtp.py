"""M-RTP: the MPRTP scheduler [71].

MPRTP distributes media over *all* available paths using a loss-based
estimate of each path's sending capability and provides no
receiver-side QoE feedback.  We model its split as proportional to
``S_i * (1 - loss_i)`` with every path kept active regardless of how
badly it performs — the behaviour behind its worst-in-class frame
drops in Table 1.
"""

from __future__ import annotations

from typing import Sequence

from repro.rtp.packets import RtpPacket
from repro.scheduling.base import (
    Assignment,
    PathSnapshot,
    ProportionalSplitter,
    Scheduler,
)


class MprtpScheduler(Scheduler):
    """Loss-adjusted rate split across all paths, no feedback."""

    def __init__(self) -> None:
        self._splitter = ProportionalSplitter()

    def on_path_removed(self, path_id: int) -> None:
        self._splitter.forget(path_id)

    def assign(
        self,
        packets: Sequence[RtpPacket],
        paths: Sequence[PathSnapshot],
        now: float,
    ) -> Assignment:
        active = list(paths)  # MPRTP never disables a path
        # MPRTP has no sender-side feedback loop (§2.2): the split is
        # an even one, discounted only by each path's reported loss —
        # it keeps pushing media onto a path whose capacity collapsed
        # as long as the packets are not being *lost*.
        weights = [1.0 - min(p.loss, 0.95) for p in active]
        shares = self._splitter.split(
            len(packets), [p.path_id for p in active], weights
        )
        assignments: Assignment = []
        index = 0
        for path, share in zip(active, shares):
            for _ in range(share):
                assignments.append((packets[index], path.path_id))
                index += 1
        return assignments
