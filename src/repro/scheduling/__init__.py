"""Multipath packet schedulers.

One implementation per system evaluated in the paper:

- :class:`ConvergeScheduler` — the video-aware scheduler of §4.1
  (Algorithm 1 fast-path selection, Table 2 priorities, Eq. 1 media
  split, Eq. 2 feedback adjustment),
- :class:`MinRttScheduler` — SRTT: MPTCP/MPQUIC's default minRTT,
- :class:`ThroughputScheduler` — M-TPUT: Musher-style split
  proportional to measured per-path throughput,
- :class:`MprtpScheduler` — M-RTP: MPRTP's loss-adjusted rate split,
- :class:`SinglePathScheduler` — legacy WebRTC on one network,
- :class:`ConnectionMigrationScheduler` — WebRTC-CM: one path at a
  time with drop-and-reconnect migration.
"""

from repro.scheduling.base import PathSnapshot, Scheduler
from repro.scheduling.converge import ConvergeScheduler
from repro.scheduling.srtt import MinRttScheduler
from repro.scheduling.mtput import ThroughputScheduler
from repro.scheduling.mprtp import MprtpScheduler
from repro.scheduling.singlepath import (
    ConnectionMigrationScheduler,
    SinglePathScheduler,
)

__all__ = [
    "ConnectionMigrationScheduler",
    "ConvergeScheduler",
    "MinRttScheduler",
    "MprtpScheduler",
    "PathSnapshot",
    "Scheduler",
    "SinglePathScheduler",
    "ThroughputScheduler",
]
