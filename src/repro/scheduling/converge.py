"""The Converge video-aware scheduler (§4.1).

Three levels of control:

1. *Frame/packet level*: priority packets (Table 2 — retransmissions,
   keyframe media, SPS, PPS) go on the fast path chosen by Algorithm 1
   (minimum completion time), spilling to the next-fastest paths when
   the fast path's ``P_max`` is exhausted.
2. *Media split*: plain delta-frame media is split across enabled
   paths proportionally to the per-path GCC rates (Eq. 1), capped by
   the Eq. 2 feedback-adjusted budgets.
3. FEC packets are generated per path by the FEC controller and are
   not re-scheduled here; if one is handed in anyway it stays on the
   path it was generated for (§4.1's accommodation exception).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, List, Sequence

from repro.rtp.packets import RTP_HEADER_BYTES, PacketType, RtpPacket, priority_of
from repro.scheduling.base import DROP_PATH, Assignment, PathSnapshot, Scheduler


class ConvergeScheduler(Scheduler):
    """Video-aware, feedback-adjusted multipath scheduler."""

    @property
    def uses_qoe_feedback(self) -> bool:
        return True

    def assign(
        self,
        packets: Sequence[RtpPacket],
        paths: Sequence[PathSnapshot],
        now: float,
    ) -> Assignment:
        enabled = [p for p in paths if p.enabled]
        if not enabled:
            # All paths disabled: fall back to the least-bad path so the
            # call does not silently drop packets.
            enabled = [min(paths, key=lambda p: p.srtt)]
        if not packets:
            return []

        # One pass over the batch: find the largest payload and split the
        # packets into priority / plain-media / FEC groups (previously
        # four comprehensions, each re-deriving priority per packet).
        max_payload = 0
        prioritized: List = []  # (priority, packet) pairs
        media_packets: List[RtpPacket] = []
        fec_packets: List[RtpPacket] = []
        fec_type = PacketType.FEC
        for packet in packets:
            payload = packet.payload_size
            if payload > max_payload:
                max_payload = payload
            packet_type = packet.packet_type
            if packet_type is fec_type:
                fec_packets.append(packet)
                continue
            priority = priority_of(packet_type)
            if priority is None:
                media_packets.append(packet)
            else:
                prioritized.append((priority, packet))
        # Stable sort on the priority key alone (the packet objects are
        # not comparable), matching sorted(..., key=lambda p: p.priority).
        prioritized.sort(key=itemgetter(0))
        priority_packets = [packet for _, packet in prioritized]

        max_size = RTP_HEADER_BYTES + max_payload
        ordered = self._paths_by_completion_time(
            enabled, len(packets), max_size
        )
        # Priority packets must not ride a path whose feedback has gone
        # silent (watchdog-degraded): its srtt/goodput are stale, so
        # Algorithm 1's completion times lie about it.  Keep the cpt
        # ordering but demote degraded paths behind every healthy one;
        # they remain last-resort targets so nothing is dropped.
        degraded_ids = {p.path_id for p in enabled if p.degraded}
        priority_order = [pid for pid in ordered if pid not in degraded_ids] + [
            pid for pid in ordered if pid in degraded_ids
        ]
        remaining: Dict[int, int] = {
            p.path_id: max(p.max_packets, 1) for p in enabled
        }
        # Priority packets get extra headroom on the fast path: a
        # keyframe is a multi-round burst by nature, and spilling its
        # packets onto the slow path mid-recovery is how keyframes die
        # (§3.1's frame-level control exists to prevent exactly that).
        priority_remaining: Dict[int, int] = {
            p.path_id: 3 * max(p.max_packets, 1) for p in enabled
        }

        assignments: Assignment = []

        # Priority packets: fast path first, spill in cpt order.  A
        # priority packet is never dropped — if every path is at its
        # P_max it still rides the fast path (losing a keyframe or RTX
        # costs far more than one packet of queueing).
        for packet in priority_packets:
            target = self._first_with_room(priority_order, priority_remaining)
            if target is None:
                target = priority_order[0]
            else:
                priority_remaining[target] -= 1
                if remaining.get(target, 0) > 0:
                    remaining[target] -= 1
            assignments.append((packet, target))

        # Media packets: the path manager already computed each path's
        # Eq. 1 share adjusted by Eq. 2 feedback (``budget_packets``,
        # with fractional carry), so allocate straight from the
        # budgets, fastest path first; spillover goes to the fastest
        # path with room so nothing is dropped at the scheduler.
        if media_packets:
            index = 0
            rank = {path_id: pos for pos, path_id in enumerate(ordered)}
            by_speed = sorted(enabled, key=lambda p: rank[p.path_id])
            for path in by_speed:
                allowed = min(max(path.budget_packets, 0), remaining[path.path_id])
                for _ in range(allowed):
                    if index >= len(media_packets):
                        break
                    assignments.append((media_packets[index], path.path_id))
                    remaining[path.path_id] -= 1
                    index += 1
            while index < len(media_packets):
                target = self._first_with_room(ordered, remaining)
                if target is None:
                    # Every path is at P_max: shed the excess at the
                    # sender rather than build standing queues (the
                    # WebRTC pacer drops frames the same way when its
                    # queue budget is exhausted).
                    assignments.append((media_packets[index], DROP_PATH))
                else:
                    remaining[target] -= 1
                    assignments.append((media_packets[index], target))
                index += 1

        # FEC handed to the scheduler stays on its generation path.
        for packet in fec_packets:
            target = packet.path_id if packet.path_id >= 0 else ordered[0]
            assignments.append((packet, target))
        return assignments

    @staticmethod
    def _paths_by_completion_time(
        paths: Sequence[PathSnapshot], num_packets: int, packet_size: int
    ) -> List[int]:
        """Algorithm 1, generalized to a full fast-to-slow ordering."""
        ranked = sorted(
            paths, key=lambda p: p.completion_time(num_packets, packet_size)
        )
        return [p.path_id for p in ranked]

    @staticmethod
    def _first_with_room(
        ordered: List[int], remaining: Dict[int, int]
    ) -> int | None:
        for path_id in ordered:
            if remaining.get(path_id, 0) > 0:
                return path_id
        return None
