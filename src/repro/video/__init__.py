"""Synthetic video pipeline: camera, encoder, packetizer, decoder model.

The scheduler and FEC logic in Converge consume only the *structure* of
encoded video — frame types, packet types, sizes and dependencies — so
the pipeline models exactly that: a rate-controlled encoder producing
keyframes and delta frames in GOPs, SPS/PPS parameter-set packets, a
packetizer emitting RTP packets, and a quality model mapping achieved
bitrate to QP and PSNR the same monotone way a real encoder does.
"""

from repro.video.frames import VideoFrame
from repro.video.quality import RateDistortionModel
from repro.video.encoder import Encoder, EncoderConfig
from repro.video.packetizer import Packetizer
from repro.video.source import CameraSource
from repro.video.decoder import DecoderModel

__all__ = [
    "CameraSource",
    "DecoderModel",
    "Encoder",
    "EncoderConfig",
    "Packetizer",
    "RateDistortionModel",
    "VideoFrame",
]
