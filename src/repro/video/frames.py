"""Encoded video frame model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.rtp.packets import FRAME_TYPE_DELTA, FRAME_TYPE_KEY


@dataclass
class VideoFrame:
    """One encoded frame as produced by the encoder.

    ``depends_on`` is the id of the reference frame (the previous frame
    for delta frames, ``None`` for keyframes), matching the simple
    IPPP... reference structure video-conferencing encoders use.
    ``gop_id`` ties delta frames to the SPS of their group.
    """

    frame_id: int
    ssrc: int
    frame_type: str
    size_bytes: int
    capture_time: float
    qp: float
    gop_id: int
    depends_on: Optional[int]

    def __post_init__(self) -> None:
        if self.frame_type not in (FRAME_TYPE_KEY, FRAME_TYPE_DELTA):
            raise ValueError(f"unknown frame type: {self.frame_type}")
        if self.size_bytes <= 0:
            raise ValueError("frame size must be positive")
        if self.frame_type == FRAME_TYPE_KEY and self.depends_on is not None:
            raise ValueError("keyframes must not reference another frame")
        if self.frame_type == FRAME_TYPE_DELTA and self.depends_on is None:
            raise ValueError("delta frames must reference another frame")

    @property
    def is_keyframe(self) -> bool:
        return self.frame_type == FRAME_TYPE_KEY
