"""Receiver-side decoder dependency model.

Tracks which frames are decodable given what has been assembled:

- a keyframe is decodable when its SPS and PPS arrived with its media;
- a delta frame needs its PPS, the SPS of its GOP, and an unbroken
  reference chain back to the decoded keyframe (IPPP... structure:
  every delta references the previous frame).

When the chain breaks the decoder reports it, which is what triggers
keyframe requests upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.rtp.packets import FRAME_TYPE_KEY


@dataclass
class AssembledFrame:
    """The metadata the packet buffer hands to the decode stage."""

    frame_id: int
    ssrc: int
    frame_type: str
    gop_id: int
    size_bytes: int
    capture_time: float
    has_pps: bool
    has_sps: bool  # keyframes carry the SPS for their GOP
    first_arrival: float = 0.0
    completed_at: float = 0.0
    fec_recovered: bool = False

    @property
    def is_keyframe(self) -> bool:
        return self.frame_type == FRAME_TYPE_KEY


class DecoderModel:
    """Decides frame decodability and tracks the reference chain."""

    def __init__(self) -> None:
        self._last_decoded: Optional[int] = None
        self._sps_gops: Set[int] = set()
        self.frames_decoded = 0
        self.chain_breaks = 0

    @property
    def last_decoded_frame_id(self) -> Optional[int]:
        return self._last_decoded

    def can_decode(self, frame: AssembledFrame) -> bool:
        """Whether ``frame`` can be decoded right now."""
        if frame.is_keyframe:
            return frame.has_pps and frame.has_sps
        if not frame.has_pps:
            return False
        if frame.gop_id not in self._sps_gops:
            return False
        # IPPP chain: the immediately preceding frame must be decoded.
        return self._last_decoded == frame.frame_id - 1

    def decode(self, frame: AssembledFrame) -> None:
        """Consume ``frame``; caller must have checked :meth:`can_decode`."""
        if not self.can_decode(frame):
            self.chain_breaks += 1
            raise ValueError(
                f"frame {frame.frame_id} is not decodable "
                f"(last decoded: {self._last_decoded})"
            )
        if frame.is_keyframe:
            self._sps_gops.add(frame.gop_id)
        self._last_decoded = frame.frame_id
        self.frames_decoded += 1

    def reset_to_keyframe(self, frame: AssembledFrame) -> None:
        """Resynchronize the chain at a keyframe after a break."""
        if not frame.is_keyframe:
            raise ValueError("can only resynchronize at a keyframe")
        self._sps_gops.add(frame.gop_id)
        self._last_decoded = frame.frame_id
        self.frames_decoded += 1
