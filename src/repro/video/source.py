"""Synthetic camera source emitting raw-frame ticks at a frame rate."""

from __future__ import annotations

from typing import Callable

from repro.simulation.process import PeriodicProcess
from repro.simulation.simulator import Simulator


class CameraSource:
    """Emits a capture callback every ``1/frame_rate`` seconds.

    Multiple instances model the multi-camera conferencing scenarios
    the paper evaluates (Dualgram-style dual/triple camera calls);
    sources are phase-offset slightly so streams do not tick in
    lockstep, mirroring independent camera clocks.
    """

    def __init__(
        self,
        sim: Simulator,
        frame_rate: float,
        on_capture: Callable[[float], None],
        start_offset: float = 0.0,
    ) -> None:
        if frame_rate <= 0:
            raise ValueError("frame rate must be positive")
        self.sim = sim
        self.frame_rate = frame_rate
        self.frames_captured = 0
        self._on_capture = on_capture
        self._process = PeriodicProcess(
            sim,
            interval=1.0 / frame_rate,
            callback=self._tick,
            start_delay=start_offset,
        )

    def _tick(self) -> None:
        self.frames_captured += 1
        self._on_capture(self.sim.now)

    def stop(self) -> None:
        self._process.stop()
