"""Rate-distortion model mapping bitrate to QP and PSNR.

Real encoders expose a monotone trade: fewer bits per pixel means a
coarser quantizer (higher QP) and lower PSNR.  We fit a standard
logarithmic R-QP curve anchored so that a 720p30 stream at its 10 Mbps
cap encodes around QP 25 (high quality) and a 1 Mbps stream around
QP 45 (visibly degraded), consistent with the QP ranges reported in
the paper's Figure 10/14 (QP normalized by 60, the worst quality).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RateDistortionModel:
    """Maps target bitrate to QP and QP to PSNR for one resolution."""

    width: int = 1280
    height: int = 720
    frame_rate: float = 30.0
    qp_min: float = 10.0
    qp_max: float = 60.0
    # QP = qp_anchor - qp_slope * ln(bits_per_pixel); anchored below.
    qp_anchor: float = 25.0
    qp_slope: float = 8.7
    anchor_bitrate: float = 10_000_000.0
    # PSNR(dB) = psnr_intercept - psnr_slope * QP.
    psnr_intercept: float = 56.0
    psnr_slope: float = 0.55

    def bits_per_pixel(self, bitrate: float) -> float:
        """Bits spent per pixel per frame at ``bitrate`` (bps)."""
        pixels_per_second = self.width * self.height * self.frame_rate
        return max(bitrate, 1.0) / pixels_per_second

    def qp_for_bitrate(self, bitrate: float) -> float:
        """Quantization parameter the encoder needs at ``bitrate``."""
        import math

        anchor_bpp = self.bits_per_pixel(self.anchor_bitrate)
        bpp = self.bits_per_pixel(bitrate)
        qp = self.qp_anchor - self.qp_slope * math.log(bpp / anchor_bpp)
        return min(max(qp, self.qp_min), self.qp_max)

    def psnr_for_qp(self, qp: float) -> float:
        """PSNR in dB of a frame encoded at ``qp``."""
        return self.psnr_intercept - self.psnr_slope * qp

    def psnr_for_bitrate(self, bitrate: float) -> float:
        """Convenience: PSNR at the QP the encoder picks for ``bitrate``."""
        return self.psnr_for_qp(self.qp_for_bitrate(bitrate))
