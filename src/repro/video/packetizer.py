"""Packetization of encoded frames into RTP packets.

Per §2.1/§3.1 of the paper, a keyframe carries an SPS packet (decoding
information for its group of frames) and a PPS packet (decoding
information for the frame itself); every delta frame carries a PPS
packet.  Losing either makes the frame — or the whole group —
non-decodable even if all media payload arrives.
"""

from __future__ import annotations

from typing import List

from repro.rtp.packets import (
    DEFAULT_MTU_PAYLOAD,
    FRAME_TYPE_KEY,
    PacketType,
    RtpPacket,
)
from repro.rtp.sequence import SEQ_MOD
from repro.video.frames import VideoFrame

PARAMETER_SET_BYTES = 40


class Packetizer:
    """Splits frames into RTP packets with a per-stream sequence space."""

    def __init__(
        self,
        ssrc: int,
        mtu_payload: int = DEFAULT_MTU_PAYLOAD,
        clock_rate: int = 90_000,
    ) -> None:
        if mtu_payload <= PARAMETER_SET_BYTES:
            raise ValueError("mtu must exceed a parameter-set payload")
        self.ssrc = ssrc
        self.mtu_payload = mtu_payload
        self.clock_rate = clock_rate
        self._next_seq = 0

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq = (self._next_seq + 1) % SEQ_MOD
        return seq

    def packetize(self, frame: VideoFrame) -> List[RtpPacket]:
        """Return the RTP packets for ``frame`` in transmission order.

        Layout: [SPS (keyframes only), PPS, media...]; the final media
        packet carries the ``last_in_frame`` marker.
        """
        timestamp = int(frame.capture_time * self.clock_rate) & 0xFFFFFFFF
        packets: List[RtpPacket] = []

        def make(packet_type: PacketType, payload: int) -> RtpPacket:
            return RtpPacket(
                ssrc=self.ssrc,
                seq=self._take_seq(),
                timestamp=timestamp,
                frame_id=frame.frame_id,
                frame_type=frame.frame_type,
                packet_type=packet_type,
                payload_size=payload,
                capture_time=frame.capture_time,
                gop_id=frame.gop_id,
            )

        if frame.frame_type == FRAME_TYPE_KEY:
            packets.append(make(PacketType.SPS, PARAMETER_SET_BYTES))
        packets.append(make(PacketType.PPS, PARAMETER_SET_BYTES))

        media_type = (
            PacketType.KEYFRAME
            if frame.frame_type == FRAME_TYPE_KEY
            else PacketType.MEDIA
        )
        remaining = frame.size_bytes
        while remaining > 0:
            chunk = min(remaining, self.mtu_payload)
            packets.append(make(media_type, chunk))
            remaining -= chunk

        packets[0].first_in_frame = True
        packets[-1].last_in_frame = True
        return packets
