"""Rate-controlled video encoder model.

Produces :class:`VideoFrame` objects at the camera frame rate.  The
target bitrate is set externally by congestion control; the encoder
translates it into per-frame byte budgets with a keyframe multiplier,
lognormal-ish size variation, and GOP structure (a keyframe every
``gop_length`` frames or on an explicit keyframe request from the
receiver — the PLI path that the paper's "keyframe request" counts
measure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.rtp.packets import FRAME_TYPE_DELTA, FRAME_TYPE_KEY
from repro.simulation.random import RandomStreams
from repro.video.frames import VideoFrame
from repro.video.quality import RateDistortionModel


@dataclass
class EncoderConfig:
    """Static encoder parameters."""

    ssrc: int = 1
    frame_rate: float = 30.0
    gop_length: int = 300
    keyframe_size_multiplier: float = 4.0
    min_bitrate: float = 150_000.0
    max_bitrate: float = 10_000_000.0
    size_jitter: float = 0.15
    rd_model: RateDistortionModel = field(default_factory=RateDistortionModel)

    def __post_init__(self) -> None:
        if self.frame_rate <= 0:
            raise ValueError("frame rate must be positive")
        if self.gop_length < 1:
            raise ValueError("gop length must be at least 1")
        if not 0 <= self.size_jitter < 1:
            raise ValueError("size jitter must be in [0, 1)")
        if self.min_bitrate <= 0 or self.max_bitrate < self.min_bitrate:
            raise ValueError("invalid bitrate bounds")


class Encoder:
    """Converts camera ticks into encoded frames at the target bitrate."""

    def __init__(self, config: EncoderConfig, streams: RandomStreams) -> None:
        self.config = config
        self._rng = streams.stream(f"encoder-{config.ssrc}")
        self._target_bitrate = config.min_bitrate
        self._frame_counter = 0
        self._frames_since_key = 0
        self._gop_id = -1
        self._keyframe_requested = True  # first frame is always a key
        self._last_frame_id: Optional[int] = None
        # Rolling debt lets the rate control amortize oversized
        # keyframes across the following delta frames.
        self._byte_debt = 0.0

    @property
    def target_bitrate(self) -> float:
        return self._target_bitrate

    def set_target_bitrate(self, bitrate: float) -> None:
        """Clamp and apply the rate chosen by congestion control."""
        self._target_bitrate = min(
            max(bitrate, self.config.min_bitrate), self.config.max_bitrate
        )

    def request_keyframe(self) -> None:
        """Force the next encoded frame to be a keyframe (PLI response)."""
        self._keyframe_requested = True

    def encode_frame(self, capture_time: float) -> VideoFrame:
        """Encode the frame captured at ``capture_time``."""
        config = self.config
        is_key = (
            self._keyframe_requested
            or self._frames_since_key >= config.gop_length
        )
        base_bytes = self._target_bitrate / config.frame_rate / 8
        if is_key:
            size = base_bytes * config.keyframe_size_multiplier
            self._gop_id += 1
            self._frames_since_key = 0
            self._keyframe_requested = False
            depends_on = None
            frame_type = FRAME_TYPE_KEY
            # The extra keyframe bytes are paid back by shrinking the
            # following delta frames slightly.
            self._byte_debt += size - base_bytes
        else:
            repayment = min(self._byte_debt, base_bytes * 0.2)
            self._byte_debt -= repayment
            size = base_bytes - repayment
            self._frames_since_key += 1
            depends_on = self._last_frame_id
            frame_type = FRAME_TYPE_DELTA
        jitter = 1.0 + self._rng.uniform(-config.size_jitter, config.size_jitter)
        size_bytes = max(int(size * jitter), 200)
        qp = config.rd_model.qp_for_bitrate(self._target_bitrate)
        frame = VideoFrame(
            frame_id=self._frame_counter,
            ssrc=config.ssrc,
            frame_type=frame_type,
            size_bytes=size_bytes,
            capture_time=capture_time,
            qp=qp,
            gop_id=self._gop_id,
            depends_on=depends_on,
        )
        self._last_frame_id = self._frame_counter
        self._frame_counter += 1
        return frame
