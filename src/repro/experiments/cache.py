"""Content-addressed on-disk cache of cell results.

Layout: ``<root>/<key[:2]>/<key>.json``, one file per cell, holding
the resolved cell, the summary payload and bookkeeping metadata.  The
summary section is stored as canonical JSON, so a cache hit returns
bytes identical to what a fresh run would produce (JSON round-trips
Python floats exactly).

Writes are atomic (temp file + rename) so a crashed or parallel
writer can never leave a torn entry; concurrent writers of the same
key both write the same content, so the race is benign.  Every entry
carries a SHA-256 checksum of its canonical summary bytes, validated
on load: a corrupt, truncated or tampered file (disk faults, partial
copies, editor accidents) is deleted and read as a plain miss, never
served as data and never crashing a sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.experiments.cells import CODE_VERSION, canonical_json


def summary_checksum(summary: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of a summary payload."""
    return hashlib.sha256(canonical_json(summary).encode()).hexdigest()


def default_cache_dir() -> Path:
    """``REPRO_CACHE`` env override, else ``~/.cache/repro-converge``."""
    env = os.environ.get("REPRO_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-converge"


@dataclass
class CacheEntry:
    """One cached cell summary plus its provenance."""

    key: str
    cell: Dict[str, Any]
    summary: Dict[str, Any]
    code_version: str
    created: float
    wall_seconds: float

    @property
    def label(self) -> str:
        return self.cell.get("label") or self.cell.get("system", "?")


class ResultCache:
    """A content-addressed store of cell summaries."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- lookup / store -----------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[CacheEntry]:
        """Return the entry for ``key`` or ``None``.

        A file that fails integrity validation — torn JSON, a foreign
        key, a missing or mismatching summary checksum — is deleted on
        the spot and reported as a miss, so one corrupt entry costs a
        re-simulation instead of poisoning every later sweep.
        """
        target = self.path_for(key)
        try:
            raw = target.read_text()
        except OSError:
            return None
        data = self._validated(key, raw)
        if data is None:
            self._discard(target)
            return None
        return CacheEntry(
            key=key,
            cell=data.get("cell", {}),
            summary=data["summary"],
            code_version=data.get("code_version", ""),
            created=data.get("created", 0.0),
            wall_seconds=data.get("wall_seconds", 0.0),
        )

    @staticmethod
    def _validated(key: str, raw: str) -> Optional[Dict[str, Any]]:
        """Parse and integrity-check one entry; None means corrupt."""
        try:
            data = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(data, dict) or data.get("key") != key:
            return None
        summary = data.get("summary")
        if not isinstance(summary, dict):
            return None
        if data.get("checksum") != summary_checksum(summary):
            return None
        return data

    @staticmethod
    def _discard(target: Path) -> None:
        try:
            target.unlink()
        except OSError:
            pass

    def put(
        self,
        key: str,
        cell: Dict[str, Any],
        summary: Dict[str, Any],
        wall_seconds: float,
    ) -> Path:
        """Store ``summary`` under ``key`` atomically; returns the path."""
        target = self.path_for(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "cell": cell,
            "summary": summary,
            "checksum": summary_checksum(summary),
            "code_version": CODE_VERSION,
            # Cache metadata wants real wall-clock age, not sim time.
            "created": time.time(),  # lint: ok(R001)
            "wall_seconds": wall_seconds,
        }
        handle, temp_name = tempfile.mkstemp(
            dir=str(target.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as temp:
                temp.write(canonical_json(payload))
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return target

    # -- sharding -----------------------------------------------------------

    def shard_of(self, key: str, shards: int) -> int:
        """Which of ``shards`` shards owns ``key``.

        Content-addressed assignment (the key's leading hex digits mod
        the shard count), so the split is deterministic: any machine
        slicing the same sweep produces the same partition.
        """
        if shards < 1:
            raise ValueError("need at least one shard")
        return int(key[:8], 16) % shards

    def shard(self, out_dirs: Sequence[Union[str, Path]]) -> List[int]:
        """Partition this cache's entries across ``out_dirs``.

        Every valid entry is copied (not moved) into the shard cache
        that :meth:`shard_of` assigns it, preserving its stored bytes
        and provenance metadata.  Returns the per-shard entry counts.
        """
        targets = [ResultCache(d) for d in out_dirs]
        counts = [0] * len(targets)
        for entry in self.entries():
            index = self.shard_of(entry.key, len(targets))
            targets[index]._put_entry(entry)
            counts[index] += 1
        return counts

    def merge(
        self, sources: Sequence[Union[str, Path, "ResultCache"]]
    ) -> Dict[str, int]:
        """Fold other caches' entries into this one.

        Entries are copied with their provenance intact; a key already
        present here wins (first writer wins — both sides stored the
        same content-addressed summary, so the race is benign, and a
        divergent duplicate would indicate a corrupt source anyway).
        Corrupt source entries are skipped, not imported.  Returns
        ``{"merged": n, "skipped": n}``.
        """
        merged = 0
        skipped = 0
        for source in sources:
            cache = (
                source
                if isinstance(source, ResultCache)
                else ResultCache(source)
            )
            if cache.root.resolve() == self.root.resolve():
                continue
            for entry in cache.entries():
                if self.path_for(entry.key).is_file():
                    skipped += 1
                    continue
                self._put_entry(entry)
                merged += 1
        return {"merged": merged, "skipped": skipped}

    def _put_entry(self, entry: CacheEntry) -> Path:
        """Store a foreign entry verbatim (provenance preserved)."""
        target = self.path_for(entry.key)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": entry.key,
            "cell": entry.cell,
            "summary": entry.summary,
            "checksum": summary_checksum(entry.summary),
            "code_version": entry.code_version,
            "created": entry.created,
            "wall_seconds": entry.wall_seconds,
        }
        handle, temp_name = tempfile.mkstemp(
            dir=str(target.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as temp:
                temp.write(canonical_json(payload))
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return target

    # -- management ---------------------------------------------------------

    def entries(self) -> Iterator[CacheEntry]:
        """All readable entries, sorted by key for stable listings."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            entry = self.get(path.stem)
            if entry is not None:
                yield entry

    def ls(self) -> List[Dict[str, Any]]:
        """Listing rows for ``repro cache ls``."""
        rows = []
        for entry in self.entries():
            cell = entry.cell
            rows.append(
                {
                    "key": entry.key[:12],
                    "label": entry.label,
                    "system": cell.get("system", "?"),
                    "seed": cell.get("seed", "?"),
                    "duration": cell.get("duration", "?"),
                    "age_seconds": max(time.time() - entry.created, 0.0),  # lint: ok(R001)
                    "wall_seconds": entry.wall_seconds,
                    "stale": entry.code_version != CODE_VERSION,
                }
            )
        return rows

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return removed

    def size_bytes(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(
            path.stat().st_size for path in self.root.glob("*/*.json")
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())
