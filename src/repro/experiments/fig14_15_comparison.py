"""Figures 14-15: comparison with existing solutions (driving).

All seven systems of §6: single-path WebRTC on each carrier,
WebRTC-CM (connection migration), the three multipath variants, and
Converge.  Reported:

- Fig. 14(a): normalized throughput / FPS / stall / QP,
- Fig. 14(b): FEC overhead and utilization,
- Fig. 14(c): E2E latency distribution (mean / p95),
- Fig. 15: PSNR distribution (mean / p10).

Expected shape: Converge has the highest delivered throughput, FPS
and PSNR, the lowest QP and FEC overhead with the highest FEC
utilization, and the lowest E2E among multipath systems (the naive
variants are qualitatively worse on E2E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.config import SystemKind
from repro.experiments.cells import Fidelity, ScenarioPaths, make_cell
from repro.experiments.runner import results_of, run_cells
from repro.metrics.report import format_table

# The seven systems of §6, as (system, single_path_id, label).
RUNS = (
    (SystemKind.WEBRTC, 0, "webrtc-t"),
    (SystemKind.WEBRTC, 1, "webrtc-v"),
    (SystemKind.WEBRTC_CM, 0, "webrtc-cm"),
    (SystemKind.SRTT, 0, None),
    (SystemKind.MTPUT, 0, None),
    (SystemKind.MRTP, 0, None),
    (SystemKind.CONVERGE, 0, None),
)


@dataclass
class ComparisonRow:
    system: str
    throughput_bps: float
    mean_fps: float
    stall_seconds: float
    qp: float
    fec_overhead: float
    fec_utilization: float
    e2e_mean: float
    e2e_p95: float
    psnr_mean: float
    psnr_p10: float
    normalized: Dict[str, float] = field(default_factory=dict)


@dataclass
class ComparisonResult:
    rows: List[ComparisonRow]

    def by_system(self) -> Dict[str, ComparisonRow]:
        return {row.system: row for row in self.rows}


def cells(
    duration: float = 60.0,
    seed: int = 1,
    num_streams: int = 1,
    fidelity: Union[Fidelity, str] = Fidelity.PACKET,
) -> list:
    spec = ScenarioPaths("driving")  # tmobile, verizon
    return [
        make_cell(
            spec,
            system,
            seed=seed,
            duration=duration,
            num_streams=num_streams,
            single_path_id=single_path_id,
            label=label,
            fidelity=fidelity,
        )
        for system, single_path_id, label in RUNS
    ]


def run(
    duration: float = 60.0,
    seed: int = 1,
    num_streams: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
    fidelity: Union[Fidelity, str] = Fidelity.PACKET,
) -> ComparisonResult:
    report = run_cells(
        cells(duration, seed, num_streams, fidelity=fidelity),
        jobs=jobs, cache=cache, progress=progress,
    )
    rows: List[ComparisonRow] = []
    for summary in results_of(report):
        rows.append(
            ComparisonRow(
                system=summary.label,
                throughput_bps=summary.throughput_bps,
                mean_fps=summary.average_fps,
                stall_seconds=summary.freeze_total,
                qp=summary.average_qp,
                fec_overhead=summary.fec_overhead,
                fec_utilization=summary.fec_utilization,
                e2e_mean=summary.e2e_mean,
                e2e_p95=summary.e2e_p95,
                psnr_mean=summary.average_psnr,
                psnr_p10=summary.psnr_p10,
                normalized=summary.normalized(),
            )
        )
    return ComparisonResult(rows=rows)


def main(
    duration: float = 60.0,
    seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
    fidelity: Union[Fidelity, str] = Fidelity.PACKET,
) -> str:
    result = run(
        duration=duration,
        seed=seed,
        jobs=jobs,
        cache=cache,
        progress=progress,
        fidelity=fidelity,
    )
    fig14a = format_table(
        ["system", "norm tput", "norm FPS", "stall frac", "norm QP"],
        [
            [
                r.system,
                r.normalized["throughput"],
                r.normalized["fps"],
                r.normalized["stall"],
                r.normalized["qp"],
            ]
            for r in result.rows
        ],
    )
    fig14bc = format_table(
        ["system", "FEC overhead %", "FEC util %", "E2E mean (s)", "E2E p95 (s)"],
        [
            [
                r.system,
                100 * r.fec_overhead,
                100 * r.fec_utilization,
                r.e2e_mean,
                r.e2e_p95,
            ]
            for r in result.rows
        ],
    )
    fig15 = format_table(
        ["system", "PSNR mean (dB)", "PSNR p10 (dB)"],
        [[r.system, r.psnr_mean, r.psnr_p10] for r in result.rows],
    )
    output = (
        "Figure 14(a) — normalized QoE (driving)\n" + fig14a
        + "\n\nFigure 14(b,c) — FEC and E2E\n" + fig14bc
        + "\n\nFigure 15 — PSNR\n" + fig15
    )
    print(output)
    return output


if __name__ == "__main__":
    main()
