"""Figures 9-10 + Table 3: Converge in the wild (walking and driving).

Walking: Converge bonds WiFi + T-Mobile while single-path WebRTC runs
on each network alone.  Driving: Verizon + T-Mobile.  Reported per
system and per number of camera streams:

- throughput / FPS / E2E time series (Fig. 9),
- normalized QoE (Fig. 10): throughput / 10 Mbps-per-stream, FPS / 24,
  stall fraction, QP / 60,
- Table 3: E2E latency, FEC overhead and FEC utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.config import SystemKind
from repro.experiments.common import run_system, scenario_paths
from repro.metrics.report import format_table

SCENARIO_NETWORKS = {
    "walking": ("wifi", "tmobile"),
    "driving": ("verizon", "tmobile"),
}


@dataclass
class WildRow:
    scenario: str
    system: str
    num_streams: int
    throughput_bps: float
    mean_fps: float
    e2e_mean: float
    e2e_std: float
    stall_seconds: float
    fec_overhead: float
    fec_utilization: float
    qp: float
    normalized: Dict[str, float] = field(default_factory=dict)


@dataclass
class WildResult:
    rows: List[WildRow]

    def table3(self) -> List[WildRow]:
        return self.rows


def _single_path_label(network: str) -> str:
    return {
        "wifi": "webrtc-w",
        "tmobile": "webrtc-t",
        "verizon": "webrtc-v",
    }[network]


def run(
    scenario: str = "driving",
    duration: float = 60.0,
    seed: int = 1,
    stream_counts: Sequence[int] = (1, 2, 3),
) -> WildResult:
    if scenario not in SCENARIO_NETWORKS:
        raise ValueError(f"scenario must be one of {sorted(SCENARIO_NETWORKS)}")
    networks = SCENARIO_NETWORKS[scenario]
    rows: List[WildRow] = []
    for num_streams in stream_counts:
        paths = scenario_paths(scenario, duration, seed, networks=networks)
        runs = [
            (SystemKind.WEBRTC, {"single_path_id": 0, "label": _single_path_label(networks[0])}),
            (SystemKind.WEBRTC, {"single_path_id": 1, "label": _single_path_label(networks[1])}),
            (SystemKind.CONVERGE, {"label": "converge"}),
        ]
        for system, kwargs in runs:
            result = run_system(
                system,
                paths,
                duration=duration,
                num_streams=num_streams,
                seed=seed,
                **kwargs,
            )
            summary = result.summary
            rows.append(
                WildRow(
                    scenario=scenario,
                    system=result.label,
                    num_streams=num_streams,
                    throughput_bps=summary.throughput_bps,
                    mean_fps=summary.average_fps,
                    e2e_mean=summary.e2e_mean,
                    e2e_std=summary.e2e_std,
                    stall_seconds=summary.freeze.total_duration,
                    fec_overhead=summary.fec_overhead,
                    fec_utilization=summary.fec_utilization,
                    qp=summary.average_qp,
                    normalized=summary.normalized(),
                )
            )
    return WildResult(rows=rows)


def main(duration: float = 60.0, seed: int = 1) -> str:
    outputs = []
    for scenario in ("walking", "driving"):
        result = run(scenario=scenario, duration=duration, seed=seed)
        fig10 = format_table(
            ["#", "system", "norm tput", "norm FPS", "stall frac", "norm QP"],
            [
                [
                    r.num_streams,
                    r.system,
                    r.normalized["throughput"],
                    r.normalized["fps"],
                    r.normalized["stall"],
                    r.normalized["qp"],
                ]
                for r in result.rows
            ],
        )
        table3 = format_table(
            ["#", "system", "E2E (s)", "E2E std", "FEC overhead %", "FEC util %"],
            [
                [
                    r.num_streams,
                    r.system,
                    r.e2e_mean,
                    r.e2e_std,
                    100 * r.fec_overhead,
                    100 * r.fec_utilization,
                ]
                for r in result.rows
            ],
        )
        outputs.append(
            f"Figure 10 — normalized QoE ({scenario})\n{fig10}\n\n"
            f"Table 3 — E2E / FEC ({scenario})\n{table3}"
        )
    output = "\n\n".join(outputs)
    print(output)
    return output


if __name__ == "__main__":
    main()
