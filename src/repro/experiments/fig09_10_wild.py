"""Figures 9-10 + Table 3: Converge in the wild (walking and driving).

Walking: Converge bonds WiFi + T-Mobile while single-path WebRTC runs
on each network alone.  Driving: Verizon + T-Mobile.  Reported per
system and per number of camera streams:

- throughput / FPS / E2E time series (Fig. 9),
- normalized QoE (Fig. 10): throughput / 10 Mbps-per-stream, FPS / 24,
  stall fraction, QP / 60,
- Table 3: E2E latency, FEC overhead and FEC utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import SystemKind
from repro.experiments.cells import ScenarioPaths, make_cell
from repro.experiments.runner import results_of, run_cells
from repro.metrics.report import format_table

SCENARIO_NETWORKS = {
    "walking": ("wifi", "tmobile"),
    "driving": ("verizon", "tmobile"),
}


@dataclass
class WildRow:
    scenario: str
    system: str
    num_streams: int
    throughput_bps: float
    mean_fps: float
    e2e_mean: float
    e2e_std: float
    stall_seconds: float
    fec_overhead: float
    fec_utilization: float
    qp: float
    normalized: Dict[str, float] = field(default_factory=dict)


@dataclass
class WildResult:
    rows: List[WildRow]

    def table3(self) -> List[WildRow]:
        return self.rows


def _single_path_label(network: str) -> str:
    return {
        "wifi": "webrtc-w",
        "tmobile": "webrtc-t",
        "verizon": "webrtc-v",
    }[network]


def cells(
    scenario: str = "driving",
    duration: float = 60.0,
    seed: int = 1,
    stream_counts: Sequence[int] = (1, 2, 3),
) -> list:
    if scenario not in SCENARIO_NETWORKS:
        raise ValueError(f"scenario must be one of {sorted(SCENARIO_NETWORKS)}")
    networks = SCENARIO_NETWORKS[scenario]
    spec = ScenarioPaths(scenario, networks=tuple(networks))
    job_list = []
    for num_streams in stream_counts:
        runs = [
            (SystemKind.WEBRTC, 0, _single_path_label(networks[0])),
            (SystemKind.WEBRTC, 1, _single_path_label(networks[1])),
            (SystemKind.CONVERGE, 0, "converge"),
        ]
        for system, single_path_id, label in runs:
            job_list.append(
                make_cell(
                    spec,
                    system,
                    seed=seed,
                    duration=duration,
                    num_streams=num_streams,
                    single_path_id=single_path_id,
                    label=label,
                )
            )
    return job_list


def run(
    scenario: str = "driving",
    duration: float = 60.0,
    seed: int = 1,
    stream_counts: Sequence[int] = (1, 2, 3),
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> WildResult:
    job_list = cells(scenario, duration, seed, stream_counts)
    report = run_cells(job_list, jobs=jobs, cache=cache, progress=progress)
    rows: List[WildRow] = []
    for cell, summary in zip(job_list, results_of(report)):
        rows.append(
            WildRow(
                scenario=scenario,
                system=summary.label,
                num_streams=cell.num_streams,
                throughput_bps=summary.throughput_bps,
                mean_fps=summary.average_fps,
                e2e_mean=summary.e2e_mean,
                e2e_std=summary.e2e_std,
                stall_seconds=summary.freeze_total,
                fec_overhead=summary.fec_overhead,
                fec_utilization=summary.fec_utilization,
                qp=summary.average_qp,
                normalized=summary.normalized(),
            )
        )
    return WildResult(rows=rows)


def main(
    duration: float = 60.0,
    seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> str:
    outputs = []
    for scenario in ("walking", "driving"):
        result = run(
            scenario=scenario, duration=duration, seed=seed,
            jobs=jobs, cache=cache, progress=progress,
        )
        fig10 = format_table(
            ["#", "system", "norm tput", "norm FPS", "stall frac", "norm QP"],
            [
                [
                    r.num_streams,
                    r.system,
                    r.normalized["throughput"],
                    r.normalized["fps"],
                    r.normalized["stall"],
                    r.normalized["qp"],
                ]
                for r in result.rows
            ],
        )
        table3 = format_table(
            ["#", "system", "E2E (s)", "E2E std", "FEC overhead %", "FEC util %"],
            [
                [
                    r.num_streams,
                    r.system,
                    r.e2e_mean,
                    r.e2e_std,
                    100 * r.fec_overhead,
                    100 * r.fec_utilization,
                ]
                for r in result.rows
            ],
        )
        outputs.append(
            f"Figure 10 — normalized QoE ({scenario})\n{fig10}\n\n"
            f"Table 3 — E2E / FEC ({scenario})\n{table3}"
        )
    output = "\n\n".join(outputs)
    print(output)
    return output


if __name__ == "__main__":
    main()
