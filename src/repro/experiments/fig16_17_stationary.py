"""Figures 16-17 + Table 6: the stationary scenario (Appendix A).

WiFi + T-Mobile without mobility.  The paper's shape: with a stable
WiFi network, Converge and WebRTC-W are close on FPS and stalls;
Converge still wins on throughput (path aggregation, ~41% over
WebRTC-W and ~2.7x over WebRTC-T) and QP, with minimal FEC overhead
and slightly higher E2E at high stream counts (it moves more bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import SystemKind
from repro.experiments.cells import ScenarioPaths, make_cell
from repro.experiments.runner import results_of, run_cells
from repro.metrics.report import format_table


@dataclass
class StationaryRow:
    system: str
    num_streams: int
    throughput_bps: float
    mean_fps: float
    e2e_mean: float
    stall_seconds: float
    fec_overhead: float
    fec_utilization: float
    qp: float
    normalized: Dict[str, float] = field(default_factory=dict)


@dataclass
class StationaryResult:
    rows: List[StationaryRow]


def cells(
    duration: float = 60.0,
    seed: int = 1,
    stream_counts: Sequence[int] = (1, 2, 3),
) -> list:
    spec = ScenarioPaths("stationary", networks=("wifi", "tmobile"))
    runs = [
        (SystemKind.WEBRTC, 0, "webrtc-w"),
        (SystemKind.WEBRTC, 1, "webrtc-t"),
        (SystemKind.CONVERGE, 0, "converge"),
    ]
    return [
        make_cell(
            spec,
            system,
            seed=seed,
            duration=duration,
            num_streams=num_streams,
            single_path_id=single_path_id,
            label=label,
        )
        for num_streams in stream_counts
        for system, single_path_id, label in runs
    ]


def run(
    duration: float = 60.0,
    seed: int = 1,
    stream_counts: Sequence[int] = (1, 2, 3),
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> StationaryResult:
    job_list = cells(duration, seed, stream_counts)
    report = run_cells(job_list, jobs=jobs, cache=cache, progress=progress)
    rows: List[StationaryRow] = []
    for cell, summary in zip(job_list, results_of(report)):
        rows.append(
            StationaryRow(
                system=summary.label,
                num_streams=cell.num_streams,
                throughput_bps=summary.throughput_bps,
                mean_fps=summary.average_fps,
                e2e_mean=summary.e2e_mean,
                stall_seconds=summary.freeze_total,
                fec_overhead=summary.fec_overhead,
                fec_utilization=summary.fec_utilization,
                qp=summary.average_qp,
                normalized=summary.normalized(),
            )
        )
    return StationaryResult(rows=rows)


def main(
    duration: float = 60.0,
    seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> str:
    result = run(
        duration=duration, seed=seed, jobs=jobs, cache=cache, progress=progress
    )
    fig17 = format_table(
        ["#", "system", "norm tput", "norm FPS", "stall frac", "norm QP"],
        [
            [
                r.num_streams,
                r.system,
                r.normalized["throughput"],
                r.normalized["fps"],
                r.normalized["stall"],
                r.normalized["qp"],
            ]
            for r in result.rows
        ],
    )
    table6 = format_table(
        ["#", "system", "E2E (ms)", "FEC overhead %", "FEC util %"],
        [
            [
                r.num_streams,
                r.system,
                1000 * r.e2e_mean,
                100 * r.fec_overhead,
                100 * r.fec_utilization,
            ]
            for r in result.rows
        ],
    )
    output = (
        "Figure 17 — normalized QoE (stationary)\n" + fig17
        + "\n\nTable 6 — E2E / FEC (stationary)\n" + table6
    )
    print(output)
    return output


if __name__ == "__main__":
    main()
