"""Figures 20-22: the Appendix D traffic traces.

The paper plots the capacity dynamics of each network in the
stationary, walking and driving scenarios.  The reproduction's
synthetic generators target the same envelopes; this harness reports
per-trace summary statistics (mean, p10, minimum, outage fraction,
fraction below the 10 Mbps per-stream requirement) so the generated
traces can be validated against the published shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.report import format_table
from repro.simulation.random import RandomStreams
from repro.traces.scenarios import get_scenario, make_scenario_trace

SCENARIOS = ("stationary", "walking", "driving")
REQUIRED_BPS = 10e6
OUTAGE_BPS = 1e6


@dataclass
class TraceStats:
    scenario: str
    network: str
    mean_mbps: float
    p10_mbps: float
    min_mbps: float
    outage_fraction: float
    below_required_fraction: float


@dataclass
class TraceResult:
    stats: List[TraceStats]


def run(duration: float = 180.0, seed: int = 1) -> TraceResult:
    streams = RandomStreams(seed)
    stats: List[TraceStats] = []
    for scenario in SCENARIOS:
        for network in get_scenario(scenario).networks:
            trace = make_scenario_trace(scenario, network, duration, streams)
            values = sorted(v for _, v in trace.samples())
            n = len(values)
            stats.append(
                TraceStats(
                    scenario=scenario,
                    network=network,
                    mean_mbps=sum(values) / n / 1e6,
                    p10_mbps=values[int(0.1 * n)] / 1e6,
                    min_mbps=values[0] / 1e6,
                    outage_fraction=sum(v < OUTAGE_BPS for v in values) / n,
                    below_required_fraction=sum(
                        v < REQUIRED_BPS for v in values
                    )
                    / n,
                )
            )
    return TraceResult(stats=stats)


def main(
    duration: float = 180.0,
    seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> str:
    # Trace statistics are pure generation (no simulated calls), so the
    # runner knobs are accepted for CLI uniformity and ignored.
    result = run(duration=duration, seed=seed)
    table = format_table(
        ["scenario", "network", "mean Mbps", "p10 Mbps", "min Mbps", "outage frac", "frac<10Mbps"],
        [
            [
                s.scenario,
                s.network,
                s.mean_mbps,
                s.p10_mbps,
                s.min_mbps,
                s.outage_fraction,
                s.below_required_fraction,
            ]
            for s in result.stats
        ],
    )
    output = "Figures 20-22 — scenario trace statistics\n" + table
    print(output)
    return output


if __name__ == "__main__":
    main()
