"""Process-pool experiment runner with result caching.

Every paper figure reduces to a list of independent
``(scenario × system × seed)`` :class:`~repro.experiments.cells.Cell`
jobs.  This module executes such a list:

- across ``jobs`` worker processes (default ``os.cpu_count()``), each
  cell rebuilding its paths and re-seeding ``RandomStreams(seed)`` so
  results are byte-identical to a serial run;
- through a content-addressed on-disk cache
  (:class:`~repro.experiments.cache.ResultCache`), so no cell is ever
  simulated twice;
- with failure isolation: a crashing cell yields a structured
  :class:`CellOutcome` error instead of killing the sweep;
- with poison-cell containment: an optional per-cell wall-clock
  timeout (SIGALRM, POSIX only), one retry for failed or timed-out
  cells, and quarantine — a cell that fails every attempt is reported
  in the run summary, never raised mid-sweep;
- with per-cell progress lines and wall-clock/cache-hit statistics
  (:class:`RunStats`) that the benchmarks export.

Duplicate cells in the input are executed once and fanned back out, so
experiment modules can express their natural grids without worrying
about redundancy.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.experiments.cache import ResultCache
from repro.experiments.cells import Cell, canonical_json, cell_key

if TYPE_CHECKING:
    from repro.simulation.profiling import SimProfiler

# How many submitted-but-unfinished futures to keep per worker; bounds
# the pickled backlog on huge sweeps without ever starving the pool.
_MAX_PENDING_PER_WORKER = 4

# Largest single array-batch handed to the flow batch engine: bounds
# the (T, B) state arrays of one group (a 60 s call at 1024 cells is a
# few hundred MB of live state) without limiting sweep size.
_MAX_BATCH_CELLS = 1024


# ---------------------------------------------------------------------------
# Cell summaries: what the cache stores and experiments consume


class CellSummary:
    """A JSON-able view of one finished call.

    Wraps the flattened payload of
    :func:`repro.analysis.export.result_to_dict` (plus the fps series
    and PSNR samples) with the accessors the experiment modules use.
    Whether the payload came from a fresh simulation, a worker process
    or the cache is invisible here — the bytes are identical.
    """

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data

    # -- identity -----------------------------------------------------------

    @property
    def label(self) -> str:
        return self.data["label"]

    @property
    def config(self) -> Dict[str, Any]:
        return self.data["config"]

    @property
    def summary(self) -> Dict[str, Any]:
        return self.data["summary"]

    # -- scalar QoE metrics -------------------------------------------------

    @property
    def frames_rendered(self) -> int:
        return self.summary["frames_rendered"]

    @property
    def average_fps(self) -> float:
        return self.summary["average_fps"]

    @property
    def throughput_bps(self) -> float:
        return self.summary["throughput_bps"]

    @property
    def e2e_mean(self) -> float:
        return self.summary["e2e_mean"]

    @property
    def e2e_std(self) -> float:
        return self.summary["e2e_std"]

    @property
    def e2e_p95(self) -> float:
        return self.summary["e2e_p95"]

    @property
    def freeze_count(self) -> int:
        return self.summary["freeze_count"]

    @property
    def freeze_total(self) -> float:
        return self.summary["freeze_total"]

    @property
    def freeze_mean(self) -> float:
        return self.summary["freeze_mean"]

    @property
    def average_qp(self) -> float:
        return self.summary["average_qp"]

    @property
    def average_psnr(self) -> float:
        return self.summary["average_psnr"]

    @property
    def psnr_samples(self) -> List[float]:
        return self.summary["psnr_samples"]

    @property
    def psnr_p10(self) -> float:
        samples = sorted(self.psnr_samples)
        if not samples:
            return 0.0
        return samples[int(0.1 * len(samples))]

    @property
    def fec_overhead(self) -> float:
        return self.summary["fec_overhead"]

    @property
    def fec_utilization(self) -> float:
        return self.summary["fec_utilization"]

    @property
    def frame_drops(self) -> int:
        return self.summary["frame_drops"]

    @property
    def keyframe_requests(self) -> int:
        return self.summary["keyframe_requests"]

    def normalized(
        self,
        max_rate_per_stream: float = 10_000_000.0,
        target_fps: float = 24.0,
        worst_qp: float = 60.0,
    ) -> Dict[str, float]:
        """Normalized QoE per §6 (mirrors ``QoeSummary.normalized``)."""
        duration = self.config["duration"]
        num_streams = self.config["num_streams"]
        return {
            "throughput": self.throughput_bps
            / (max_rate_per_stream * num_streams),
            "fps": self.average_fps / target_fps,
            "stall": self.freeze_total / max(duration, 1e-9),
            "qp": self.average_qp / worst_qp,
        }

    # -- time series ----------------------------------------------------------

    def series(self, name: str) -> Dict[str, List[float]]:
        return self.data["series"][name]

    def series_pairs(self, name: str) -> List[Tuple[float, float]]:
        data = self.series(name)
        return list(zip(data["times"], data["values"]))

    def series_values(self, name: str) -> List[float]:
        return self.series(name)["values"]

    def series_mean(self, name: str) -> float:
        values = self.series_values(name)
        if not values:
            return 0.0
        return sum(values) / len(values)

    # -- faults ----------------------------------------------------------------

    @property
    def faults(self) -> Dict[str, Any]:
        return self.data.get("faults", {"injected": [], "recovery": []})


@dataclass
class CellOutcome:
    """The runner's verdict on one cell: a summary or a structured error."""

    cell: Cell
    key: str
    summary: Optional[CellSummary] = None
    error: Optional[Dict[str, str]] = None
    cached: bool = False
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.summary is not None


class CellFailure(RuntimeError):
    """Raised by :func:`results_of` when a sweep cell errored."""

    def __init__(self, outcome: CellOutcome) -> None:
        error = outcome.error or {}
        super().__init__(
            f"cell {outcome.cell.effective_label!r} "
            f"(seed {outcome.cell.seed}) failed: "
            f"{error.get('type', 'Error')}: {error.get('message', '')}"
        )
        self.outcome = outcome


@dataclass
class RunStats:
    """Wall-clock and cache accounting for one ``run_cells`` sweep."""

    cells_total: int = 0
    cells_unique: int = 0
    executed: int = 0
    cache_hits: int = 0
    errors: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    # Sum of simulated call time across unique cells (the work avoided
    # by dedup/caching is cells_total*duration - this).
    simulated_seconds: float = 0.0
    # Sum of per-cell execution wall time (serial-equivalent cost).
    executed_wall_seconds: float = 0.0
    # Poison-cell containment accounting.  ``timeouts`` counts
    # distinct cells that timed out, not attempts: a quarantined
    # cell's automatic retry is the same timeout, not a second one.
    timeouts: int = 0
    retried: int = 0
    quarantined: List[str] = field(default_factory=list)
    _timeout_keys: Set[str] = field(default_factory=set, repr=False)

    def note_timeout(self, key: str) -> None:
        """Count a timed-out cell once, however many attempts it burns."""
        if key not in self._timeout_keys:
            self._timeout_keys.add(key)
            self.timeouts += 1

    @property
    def cache_hit_rate(self) -> float:
        if self.cells_unique == 0:
            return 0.0
        return self.cache_hits / self.cells_unique


@dataclass
class RunReport:
    """Outcomes in input order plus the sweep statistics."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    stats: RunStats = field(default_factory=RunStats)

    def summaries(self) -> List[Optional[CellSummary]]:
        return [o.summary for o in self.outcomes]

    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)


def results_of(report: RunReport) -> List[CellSummary]:
    """All summaries of a report, raising on the first failed cell.

    Experiment modules use this: a sweep with a crashed cell should
    fail loudly at the point of consumption, with the structured error
    attached, not produce a figure with silent holes.
    """
    for outcome in report.outcomes:
        if not outcome.ok:
            raise CellFailure(outcome)
    return [o.summary for o in report.outcomes]  # type: ignore[misc]


# ---------------------------------------------------------------------------
# Worker-side execution


def execute_cell(
    cell: Cell, profiler: Optional["SimProfiler"] = None
) -> Dict[str, Any]:
    """Run one cell to completion; the module-level worker entry point.

    Everything stochastic is derived from ``cell.seed`` inside this
    function (paths, fault plans, the simulator's streams), so the
    result depends only on the cell — the property the whole runner
    rests on.  Returns the summary payload dict.

    ``profiler`` optionally attaches a
    :class:`repro.simulation.SimProfiler` to the call (used by
    ``repro profile``, which runs cells serially in-process).
    """
    from repro.analysis.export import result_to_dict
    from repro.core.api import build_call_config, run_call
    from repro.experiments.cells import Fidelity, ScenarioPaths
    from repro.faults.scenarios import build_chaos_plan

    path_configs = cell.paths.build(cell.duration, cell.seed)
    fault_plan = None
    label = cell.label
    if cell.chaos is not None:
        fault_plan = build_chaos_plan(
            cell.chaos, cell.duration, seed=cell.seed,
            num_paths=len(path_configs),
        )
        if label is None:
            label = f"{cell.system.value}+{cell.chaos}"
    config = build_call_config(
        cell.system,
        duration=cell.duration,
        num_streams=cell.num_streams,
        seed=cell.seed,
        single_path_id=cell.single_path_id,
        label=label,
        **cell.override_kwargs(),
    )
    # Churn BIRTH events need a trace scenario to synthesize the new
    # path's capacity/loss; scenario cells carry one naturally.
    churn_scenario = (
        cell.paths.scenario if isinstance(cell.paths, ScenarioPaths) else None
    )
    if cell.fidelity is Fidelity.FLOW:
        # Frame-interval backend; the profiler hooks the packet-level
        # event loop, so profiling is a packet-fidelity-only feature.
        from repro.flow.session import run_flow_call

        result = run_flow_call(
            config,
            path_configs,
            fault_plan=fault_plan,
            churn_scenario=churn_scenario,
        )
    else:
        result = run_call(
            config,
            path_configs,
            fault_plan=fault_plan,
            profiler=profiler,
            churn_scenario=churn_scenario,
        )
    return result_to_dict(result)


class _CellTimeoutError(Exception):
    """A cell blew through its wall-clock budget (SIGALRM fired)."""


def _execute_isolated(
    cell: Cell, timeout: Optional[float] = None
) -> Dict[str, Any]:
    """Worker wrapper: convert any exception to a structured error.

    Exceptions are flattened to plain data so the parent never has to
    unpickle arbitrary exception types from a worker, and a poisoned
    cell cannot break the pool.  ``timeout`` bounds the cell's real
    wall-clock time via SIGALRM where the platform has it (POSIX main
    thread); elsewhere the cell runs unguarded rather than failing.
    """
    start = time.perf_counter()  # lint: ok(R001) real wall time
    armed = False
    previous: Any = None
    fired = {"flag": False}
    message = f"cell exceeded {timeout}s wall-clock budget"
    if timeout is not None and timeout > 0 and hasattr(signal, "SIGALRM"):

        def _on_alarm(signum: int, frame: Any) -> None:
            fired["flag"] = True
            raise _CellTimeoutError(message)

        try:
            previous = signal.signal(signal.SIGALRM, _on_alarm)
        except ValueError:
            pass  # not the main thread: no alarm available here
        else:
            signal.setitimer(signal.ITIMER_REAL, timeout)
            armed = True
    try:
        verdict = _run_guarded(cell, start)
    except _CellTimeoutError as exc:
        # The alarm can fire in the sliver between _run_guarded's
        # handlers and the disarm below; keep it from escaping.
        verdict = _timeout_verdict(str(exc), start)
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    if fired["flag"] and verdict.get("ok"):
        # The interpreter discards a signal-raised exception when it
        # lands in a frame that cannot propagate it (e.g. a GC
        # callback), letting the cell run to completion anyway.  The
        # budget still governs the verdict: the alarm fired, so the
        # cell is over budget regardless of how it ended.
        verdict = _timeout_verdict(message, start)
    return verdict


def _timeout_verdict(message: str, start: float) -> Dict[str, Any]:
    return {
        "ok": False,
        "timed_out": True,
        "error": {
            "type": "CellTimeout",
            "message": message,
            "traceback": message,
        },
        "wall_seconds": time.perf_counter() - start,  # lint: ok(R001)
    }


def _run_guarded(cell: Cell, start: float) -> Dict[str, Any]:
    try:
        payload = execute_cell(cell)
        # Normalize through canonical JSON so a fresh result is the
        # same object shape (lists, plain dicts) a cache hit yields —
        # equality between serial, parallel and cached runs is then
        # plain ``==`` on the payloads, not just on their encodings.
        payload = json.loads(canonical_json(payload))
        return {
            "ok": True,
            "summary": payload,
            "wall_seconds": time.perf_counter() - start,  # lint: ok(R001)
        }
    except _CellTimeoutError as exc:
        return {
            "ok": False,
            "timed_out": True,
            "error": {
                "type": "CellTimeout",
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
            "wall_seconds": time.perf_counter() - start,  # lint: ok(R001)
        }
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        return {
            "ok": False,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
            "wall_seconds": time.perf_counter() - start,  # lint: ok(R001)
        }


# ---------------------------------------------------------------------------
# The orchestrator


def default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(int(env), 1)
    return os.cpu_count() or 1


def run_cells(
    cells: Sequence[Cell],
    jobs: Optional[int] = None,
    cache: Union[ResultCache, str, os.PathLike, None] = None,
    progress: bool = False,
    cell_timeout: Optional[float] = None,
    retries: int = 1,
    mode: str = "scalar",
) -> RunReport:
    """Execute ``cells``, fanning out across processes and the cache.

    ``jobs`` — worker processes; ``None`` means ``os.cpu_count()``
    (override with ``REPRO_JOBS``); ``1`` runs serially in-process
    (identical results, no pool overhead).  ``cache`` — a
    :class:`ResultCache`, a directory path, or ``None`` to disable
    caching.  ``progress`` — emit one line per finished cell to stderr.
    ``cell_timeout`` — per-cell wall-clock budget in seconds (SIGALRM
    on POSIX; no-op where unavailable).  ``retries`` — extra attempts
    for a failed or timed-out cell before it is quarantined: reported
    as a structured error in the run summary, never raised mid-sweep.
    ``mode`` — ``"scalar"`` runs every cell through the per-process
    path above; ``"batch"`` first groups compatible flow-fidelity
    cells (same resolved cell up to seed/label) into array batches for
    :func:`repro.flow.batch.execute_batch`, byte-identical to scalar
    execution, and falls back per cell for whatever cannot batch.

    Returns a :class:`RunReport` with outcomes in input order.
    """
    if mode not in ("scalar", "batch"):
        raise ValueError(f"unknown run_cells mode: {mode!r}")
    start = time.perf_counter()  # lint: ok(R001) real wall time
    jobs = default_jobs() if jobs is None else max(int(jobs), 1)
    store: Optional[ResultCache] = None
    if cache is not None:
        store = cache if isinstance(cache, ResultCache) else ResultCache(cache)

    stats = RunStats(cells_total=len(cells), jobs=jobs)
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)

    # Deduplicate: identical cells (by content key) run once.
    positions: Dict[str, List[int]] = {}
    unique: Dict[str, Cell] = {}
    for index, cell in enumerate(cells):
        key = cell_key(cell)
        positions.setdefault(key, []).append(index)
        unique.setdefault(key, cell)
    stats.cells_unique = len(unique)
    stats.simulated_seconds = sum(c.duration for c in unique.values())

    done = 0

    def finish(key: str, outcome: CellOutcome) -> None:
        nonlocal done
        done += 1
        if outcome.ok:
            if outcome.cached:
                stats.cache_hits += 1
            else:
                stats.executed += 1
        else:
            stats.errors += 1
            error = outcome.error or {}
            if error.get("type") == "CellTimeout":
                stats.note_timeout(key)
            stats.quarantined.append(
                f"{outcome.cell.effective_label} seed={outcome.cell.seed}"
            )
        stats.executed_wall_seconds += outcome.wall_seconds
        for index in positions[key]:
            outcomes[index] = outcome
        if progress:
            elapsed = time.perf_counter() - start  # lint: ok(R001)
            _progress_line(done, len(unique), outcome, elapsed)

    # Cache pass: satisfy what we can without touching a worker.
    pending: List[str] = []
    for key, cell in unique.items():
        entry = store.get(key) if store is not None else None
        if entry is not None:
            finish(
                key,
                CellOutcome(
                    cell=cell,
                    key=key,
                    summary=CellSummary(entry.summary),
                    cached=True,
                    wall_seconds=0.0,
                ),
            )
        else:
            pending.append(key)

    if mode == "batch" and pending:
        pending = _run_batched(
            [(key, unique[key]) for key in pending], store, finish
        )

    if jobs <= 1 or len(pending) <= 1:
        for key in pending:
            finish(
                key,
                _run_one(
                    unique[key], key, store, cell_timeout, retries, stats
                ),
            )
    else:
        _run_pool(
            [(key, unique[key]) for key in pending],
            jobs,
            store,
            finish,
            cell_timeout,
            retries,
            stats,
        )

    stats.wall_seconds = time.perf_counter() - start  # lint: ok(R001)
    report = RunReport(outcomes=[o for o in outcomes if o is not None], stats=stats)
    if progress:
        _stats_line(stats)
    return report


def _run_batched(
    items: Sequence[Tuple[str, Cell]],
    store: Optional[ResultCache],
    finish: Callable[[str, "CellOutcome"], None],
) -> List[str]:
    """Execute what the array backend can take; return the leftovers.

    Compatible flow cells are grouped by structural identity and
    stepped together in :func:`repro.flow.batch.execute_batch` (large
    groups are chunked so one group's ``(T, B)`` state stays bounded).
    Results are byte-identical to the scalar path:
    :func:`~repro.flow.batch.execute_batch` returns payloads already
    in canonical-JSON normal form (its contract, pinned by
    tests/test_flow_batch.py), so no re-normalization pass is needed
    here and cache entries and outcomes are indistinguishable from
    per-process execution.  Cells the planner rejects, plus any group
    that fails outright, are returned as keys for the scalar path to
    pick up.
    """
    from repro.flow.batch import execute_batch, plan_batches

    cells = [cell for _key, cell in items]
    groups, rest = plan_batches(cells)
    leftover = [items[i][0] for i in rest]
    for group in groups:
        for lo in range(0, len(group), _MAX_BATCH_CELLS):
            chunk = group[lo:lo + _MAX_BATCH_CELLS]
            chunk_start = time.perf_counter()  # lint: ok(R001)
            try:
                payloads = execute_batch([cells[i] for i in chunk])
            except Exception:  # noqa: BLE001 — scalar path retries
                leftover.extend(items[i][0] for i in chunk)
                continue
            wall = (
                time.perf_counter() - chunk_start  # lint: ok(R001)
            ) / len(chunk)
            for i, payload in zip(chunk, payloads):
                key, cell = items[i]
                verdict = {
                    "ok": True,
                    "summary": payload,
                    "wall_seconds": wall,
                }
                finish(key, _outcome_from_verdict(cell, key, verdict, store))
    return leftover


def _run_one(
    cell: Cell,
    key: str,
    store: Optional[ResultCache],
    timeout: Optional[float] = None,
    retries: int = 0,
    stats: Optional[RunStats] = None,
) -> CellOutcome:
    """Execute one cell in-process (the serial path), with retries."""
    verdict = _execute_isolated(cell, timeout)
    attempt = 0
    while not verdict["ok"] and attempt < retries:
        attempt += 1
        if stats is not None:
            _note_retry(stats, verdict, key)
        verdict = _execute_isolated(cell, timeout)
    return _outcome_from_verdict(cell, key, verdict, store)


def _note_retry(stats: RunStats, verdict: Dict[str, Any], key: str) -> None:
    """Account for one discarded (retried) attempt."""
    stats.retried += 1
    stats.executed_wall_seconds += verdict.get("wall_seconds", 0.0)
    if verdict.get("timed_out"):
        stats.note_timeout(key)


def _outcome_from_verdict(
    cell: Cell,
    key: str,
    verdict: Dict[str, Any],
    store: Optional[ResultCache],
) -> CellOutcome:
    wall = verdict.get("wall_seconds", 0.0)
    if verdict["ok"]:
        summary = verdict["summary"]
        if store is not None:
            store.put(key, cell.resolved(), summary, wall)
        return CellOutcome(
            cell=cell,
            key=key,
            summary=CellSummary(summary),
            cached=False,
            wall_seconds=wall,
        )
    return CellOutcome(
        cell=cell, key=key, error=verdict["error"], wall_seconds=wall
    )


def _run_pool(
    items: Sequence[Tuple[str, Cell]],
    jobs: int,
    store: Optional[ResultCache],
    finish: Callable[[str, "CellOutcome"], None],
    timeout: Optional[float] = None,
    retries: int = 0,
    stats: Optional[RunStats] = None,
) -> None:
    """Fan pending cells out over a process pool.

    Submission is throttled (a bounded window per worker) so a
    many-thousand-cell sweep does not pickle its entire job list up
    front, and results are consumed as they complete so cache writes
    and progress lines happen promptly.  A worker that dies outright
    (e.g. OOM-killed) poisons only the cells in flight: they are
    retried (up to ``retries``) or reported as structured errors, and
    the sweep continues in a fresh pool.  Failed and timed-out cells
    are re-queued up to ``retries`` times before they are finished as
    quarantined errors.
    """
    queue = list(items)
    jobs = min(jobs, len(queue))
    attempts: Dict[str, int] = {}

    def retry_or_none(key: str, verdict: Dict[str, Any]) -> bool:
        """True if the cell was re-queued for another attempt."""
        if attempts.get(key, 0) >= retries:
            return False
        attempts[key] = attempts.get(key, 0) + 1
        if stats is not None:
            _note_retry(stats, verdict, key)
        return True

    while queue:
        crashed = False
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            window = max(jobs * _MAX_PENDING_PER_WORKER, jobs)
            futures = {}
            while queue or futures:
                while queue and len(futures) < window and not crashed:
                    key, cell = queue.pop(0)
                    futures[pool.submit(_execute_isolated, cell, timeout)] = (
                        key,
                        cell,
                    )
                if not futures:
                    break
                finished, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    key, cell = futures.pop(future)
                    try:
                        verdict = future.result()
                    except Exception as exc:  # BrokenProcessPool et al.
                        crashed = True
                        if retry_or_none(key, {"wall_seconds": 0.0}):
                            queue.append((key, cell))
                            continue
                        finish(
                            key,
                            CellOutcome(
                                cell=cell,
                                key=key,
                                error={
                                    "type": type(exc).__name__,
                                    "message": str(exc),
                                    "traceback": traceback.format_exc(),
                                },
                            ),
                        )
                        continue
                    if not verdict["ok"] and retry_or_none(key, verdict):
                        queue.append((key, cell))
                        continue
                    finish(key, _outcome_from_verdict(cell, key, verdict, store))
                if crashed:
                    # Drain in-flight work, then restart with a new pool
                    # for whatever is left in the queue.
                    break
        if not crashed:
            break


# ---------------------------------------------------------------------------
# Progress output


def _format_eta(seconds: float) -> str:
    if seconds >= 3600.0:
        return f"{seconds / 3600.0:.1f}h"
    if seconds >= 60.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds:.0f}s"


def _progress_line(
    done: int, total: int, outcome: CellOutcome, elapsed: float
) -> None:
    cell = outcome.cell
    if outcome.ok:
        status = "cached" if outcome.cached else f"{outcome.wall_seconds:.1f}s"
    else:
        error = outcome.error or {}
        status = f"ERROR {error.get('type', '?')}: {error.get('message', '')}"
    # Fleet-scale observability: throughput so far and the projected
    # time to drain the remaining cells at that rate.
    pace = ""
    if elapsed > 0.0:
        rate = done / elapsed
        pace = f" | {rate:.1f} cells/s"
        if done < total and rate > 0.0:
            pace += f", ETA {_format_eta((total - done) / rate)}"
    print(
        f"[{done}/{total}] {cell.effective_label} "
        f"seed={cell.seed} dur={cell.duration:g}s ... {status}{pace}",
        file=sys.stderr,
        flush=True,
    )


def _stats_line(stats: RunStats) -> None:
    extra = ""
    if stats.retried or stats.timeouts:
        extra = f", {stats.retried} retried, {stats.timeouts} timeouts"
    rate = ""
    if stats.wall_seconds > 0.0:
        rate = f" ({stats.cells_unique / stats.wall_seconds:.1f} cells/s)"
    print(
        f"sweep: {stats.cells_total} cells ({stats.cells_unique} unique), "
        f"{stats.executed} executed, {stats.cache_hits} cached "
        f"({100 * stats.cache_hit_rate:.0f}%), {stats.errors} errors{extra}, "
        f"{stats.wall_seconds:.1f}s wall on {stats.jobs} jobs{rate} "
        f"({stats.executed_wall_seconds:.1f}s serial-equivalent)",
        file=sys.stderr,
        flush=True,
    )
    if stats.quarantined:
        names = ", ".join(stats.quarantined)
        print(
            f"quarantined {len(stats.quarantined)} poison "
            f"cell(s): {names}",
            file=sys.stderr,
            flush=True,
        )
