"""Design-parameter sweeps (DESIGN.md §7).

Beyond the paper's own figures, these sweeps quantify the design
choices the reproduction documents as load-bearing:

- packet-buffer capacity vs frame drops (the §3.2 eviction mechanism),
- the playout deadline vs drops and latency (real-time budget),
- the loss-aversion weight in the Eq. 1 media split,
- Gilbert-Elliott vs Bernoulli loss at equal average rate (burstiness
  is what separates the FEC controllers).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import SystemKind
from repro.experiments.common import constant_paths, run_system, scenario_paths
from repro.metrics.report import format_table
from repro.net.loss import BernoulliLoss, GilbertElliottLoss
from repro.receiver.packet_buffer import PacketBufferConfig
from repro.receiver.session import ReceiverConfig


@dataclass
class SweepPoint:
    parameter: str
    value: float
    fps: float
    e2e_mean: float
    frame_drops: int
    freeze_total: float
    throughput_bps: float


def sweep_packet_buffer(
    duration: float = 45.0,
    seed: int = 1,
    capacities: Sequence[int] = (64, 256, 1024, 2048),
) -> List[SweepPoint]:
    """Smaller packet buffers evict more under multipath skew (§3.2)."""
    points = []
    paths = scenario_paths("driving", duration, seed)
    for capacity in capacities:
        receiver = ReceiverConfig(
            packet_buffer=PacketBufferConfig(capacity_packets=capacity)
        )
        summary = run_system(
            SystemKind.CONVERGE, paths, duration=duration, seed=seed,
            receiver=receiver,
        ).summary
        points.append(_point("packet_buffer", capacity, summary))
    return points


def sweep_playout_deadline(
    duration: float = 45.0,
    seed: int = 1,
    deadlines: Sequence[float] = (0.2, 0.4, 0.8, 1.6),
) -> List[SweepPoint]:
    """Tighter deadlines trade drops for interactivity."""
    points = []
    paths = scenario_paths("driving", duration, seed)
    for deadline in deadlines:
        receiver = ReceiverConfig(max_playout_latency=deadline)
        summary = run_system(
            SystemKind.CONVERGE, paths, duration=duration, seed=seed,
            receiver=receiver,
        ).summary
        points.append(_point("playout_deadline", deadline, summary))
    return points


def sweep_loss_model(
    duration: float = 45.0,
    seed: int = 1,
    rate: float = 0.02,
) -> List[SweepPoint]:
    """Bernoulli vs Gilbert-Elliott at the same long-run loss rate."""
    points = []
    for name, model_factory in (
        ("bernoulli", lambda: BernoulliLoss(rate)),
        (
            "gilbert-elliott",
            lambda: GilbertElliottLoss(
                p_good_to_bad=rate * 0.1 / (0.2 - rate),
                p_bad_to_good=0.1,
                bad_loss=0.2,
            ),
        ),
    ):
        paths = constant_paths([12e6, 12e6], [0.02, 0.03], [0.0, 0.0])
        for config in paths:
            config.loss_model = model_factory()
        summary = run_system(
            SystemKind.CONVERGE, paths, duration=duration, seed=seed,
            label=name,
        ).summary
        points.append(
            SweepPoint(
                parameter="loss_model",
                value=0.0 if name == "bernoulli" else 1.0,
                fps=summary.average_fps,
                e2e_mean=summary.e2e_mean,
                frame_drops=summary.frame_drops,
                freeze_total=summary.freeze.total_duration,
                throughput_bps=summary.throughput_bps,
            )
        )
    return points


def _point(parameter: str, value: float, summary) -> SweepPoint:
    return SweepPoint(
        parameter=parameter,
        value=value,
        fps=summary.average_fps,
        e2e_mean=summary.e2e_mean,
        frame_drops=summary.frame_drops,
        freeze_total=summary.freeze.total_duration,
        throughput_bps=summary.throughput_bps,
    )


def main(duration: float = 45.0, seed: int = 1) -> str:
    rows = []
    for points in (
        sweep_packet_buffer(duration, seed),
        sweep_playout_deadline(duration, seed),
        sweep_loss_model(duration, seed),
    ):
        for p in points:
            rows.append(
                [p.parameter, p.value, p.fps, 1000 * p.e2e_mean,
                 p.frame_drops, p.freeze_total]
            )
    output = "Design-parameter sweeps (Converge, driving)\n" + format_table(
        ["parameter", "value", "FPS", "E2E ms", "drops", "freeze s"], rows
    )
    print(output)
    return output


if __name__ == "__main__":
    main()
