"""Design-parameter sweeps (DESIGN.md §7).

Beyond the paper's own figures, these sweeps quantify the design
choices the reproduction documents as load-bearing:

- packet-buffer capacity vs frame drops (the §3.2 eviction mechanism),
- the playout deadline vs drops and latency (real-time budget),
- the loss-aversion weight in the Eq. 1 media split,
- Gilbert-Elliott vs Bernoulli loss at equal average rate (burstiness
  is what separates the FEC controllers).

Each sweep expands into runner cells, so the points execute in
parallel and hit the result cache on re-runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.core.config import SystemKind
from repro.experiments.cells import (
    BuilderPaths,
    Fidelity,
    ScenarioPaths,
    make_cell,
)
from repro.experiments.common import constant_paths
from repro.experiments.runner import CellSummary, results_of, run_cells
from repro.metrics.report import format_table
from repro.net.loss import BernoulliLoss, GilbertElliottLoss
from repro.receiver.packet_buffer import PacketBufferConfig
from repro.receiver.session import ReceiverConfig


@dataclass
class SweepPoint:
    parameter: str
    value: float
    fps: float
    e2e_mean: float
    frame_drops: int
    freeze_total: float
    throughput_bps: float


def loss_model_paths(
    duration: float, kind: str = "bernoulli", rate: float = 0.02
) -> list:
    """Two constant 12 Mbps paths under the named loss process.

    Referenced declaratively by :class:`BuilderPaths`, so the sweep's
    cells stay hashable while carrying a stateful loss model.
    """
    paths = constant_paths([12e6, 12e6], [0.02, 0.03], [0.0, 0.0])
    for config in paths:
        if kind == "bernoulli":
            config.loss_model = BernoulliLoss(rate)
        elif kind == "gilbert-elliott":
            config.loss_model = GilbertElliottLoss(
                p_good_to_bad=rate * 0.1 / (0.2 - rate),
                p_bad_to_good=0.1,
                bad_loss=0.2,
            )
        else:
            raise ValueError(f"unknown loss model kind: {kind!r}")
    return paths


def sweep_packet_buffer(
    duration: float = 45.0,
    seed: int = 1,
    capacities: Sequence[int] = (64, 256, 1024, 2048),
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
    fidelity: Union[Fidelity, str] = Fidelity.PACKET,
) -> List[SweepPoint]:
    """Smaller packet buffers evict more under multipath skew (§3.2)."""
    job_list = [
        make_cell(
            ScenarioPaths("driving"),
            SystemKind.CONVERGE,
            seed=seed,
            duration=duration,
            fidelity=fidelity,
            receiver=ReceiverConfig(
                packet_buffer=PacketBufferConfig(capacity_packets=capacity)
            ),
        )
        for capacity in capacities
    ]
    report = run_cells(job_list, jobs=jobs, cache=cache, progress=progress)
    return [
        _point("packet_buffer", capacity, summary)
        for capacity, summary in zip(capacities, results_of(report))
    ]


def sweep_playout_deadline(
    duration: float = 45.0,
    seed: int = 1,
    deadlines: Sequence[float] = (0.2, 0.4, 0.8, 1.6),
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
    fidelity: Union[Fidelity, str] = Fidelity.PACKET,
) -> List[SweepPoint]:
    """Tighter deadlines trade drops for interactivity."""
    job_list = [
        make_cell(
            ScenarioPaths("driving"),
            SystemKind.CONVERGE,
            seed=seed,
            duration=duration,
            fidelity=fidelity,
            receiver=ReceiverConfig(max_playout_latency=deadline),
        )
        for deadline in deadlines
    ]
    report = run_cells(job_list, jobs=jobs, cache=cache, progress=progress)
    return [
        _point("playout_deadline", deadline, summary)
        for deadline, summary in zip(deadlines, results_of(report))
    ]


def sweep_loss_model(
    duration: float = 45.0,
    seed: int = 1,
    rate: float = 0.02,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
    fidelity: Union[Fidelity, str] = Fidelity.PACKET,
) -> List[SweepPoint]:
    """Bernoulli vs Gilbert-Elliott at the same long-run loss rate."""
    kinds = ("bernoulli", "gilbert-elliott")
    job_list = [
        make_cell(
            BuilderPaths(
                "repro.experiments.sweeps:loss_model_paths",
                (("kind", kind), ("rate", rate)),
            ),
            SystemKind.CONVERGE,
            seed=seed,
            duration=duration,
            label=kind,
            fidelity=fidelity,
        )
        for kind in kinds
    ]
    report = run_cells(job_list, jobs=jobs, cache=cache, progress=progress)
    return [
        _point("loss_model", float(index), summary)
        for index, summary in enumerate(results_of(report))
    ]


def _point(parameter: str, value: float, summary: CellSummary) -> SweepPoint:
    return SweepPoint(
        parameter=parameter,
        value=value,
        fps=summary.average_fps,
        e2e_mean=summary.e2e_mean,
        frame_drops=summary.frame_drops,
        freeze_total=summary.freeze_total,
        throughput_bps=summary.throughput_bps,
    )


def main(
    duration: float = 45.0,
    seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
    fidelity: Union[Fidelity, str] = Fidelity.PACKET,
) -> str:
    rows = []
    for points in (
        sweep_packet_buffer(
            duration, seed, jobs=jobs, cache=cache, progress=progress,
            fidelity=fidelity,
        ),
        sweep_playout_deadline(
            duration, seed, jobs=jobs, cache=cache, progress=progress,
            fidelity=fidelity,
        ),
        sweep_loss_model(
            duration, seed, jobs=jobs, cache=cache, progress=progress,
            fidelity=fidelity,
        ),
    ):
        for p in points:
            rows.append(
                [p.parameter, p.value, p.fps, 1000 * p.e2e_mean,
                 p.frame_drops, p.freeze_total]
            )
    output = "Design-parameter sweeps (Converge, driving)\n" + format_table(
        ["parameter", "value", "FPS", "E2E ms", "drops", "freeze s"], rows
    )
    print(output)
    return output


if __name__ == "__main__":
    main()
