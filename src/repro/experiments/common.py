"""Shared plumbing for the experiment modules.

Two layers live here:

- direct helpers (:func:`run_system`, :func:`run_chaos`) that build
  and run one call in-process — used by unit tests and examples that
  need the full :class:`~repro.core.session.CallResult` object;
- path builders (:func:`scenario_paths`, :func:`constant_paths`) that
  the declarative cell specs of :mod:`repro.experiments.cells` resolve
  inside worker processes.

The figure modules themselves no longer call :func:`run_system`
directly: they expand into :class:`~repro.experiments.cells.Cell`
lists and execute through :func:`repro.experiments.runner.run_cells`,
which fans independent cells across processes and memoizes each one in
the on-disk result cache.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.api import build_call_config, run_call
from repro.core.config import SystemKind
from repro.core.session import CallResult
from repro.faults.plan import FaultPlan
from repro.faults.scenarios import build_chaos_plan
from repro.net.loss import BernoulliLoss, LossModel, NoLoss
from repro.net.path import PathConfig
from repro.net.trace import BandwidthTrace
from repro.simulation.random import RandomStreams
from repro.traces.scenarios import (
    get_scenario,
    make_loss_model,
    make_scenario_trace,
    propagation_delay,
)

# Default call length for experiments.  The paper uses 3-minute calls;
# benches default to a shorter window for iteration speed (set
# full_length=True or duration=180 for paper-length runs).
DEFAULT_DURATION = 60.0


def scenario_paths(
    scenario: str,
    duration: float,
    seed: int,
    networks: Optional[Sequence[str]] = None,
) -> List[PathConfig]:
    """Build the emulated paths for one Appendix-D scenario."""
    streams = RandomStreams(seed)
    names = list(networks) if networks else list(get_scenario(scenario).networks)
    configs: List[PathConfig] = []
    for index, network in enumerate(names):
        configs.append(
            PathConfig(
                path_id=index,
                trace=make_scenario_trace(scenario, network, duration, streams),
                propagation_delay=propagation_delay(scenario, network),
                loss_model=make_loss_model(scenario, network),
                name=network,
            )
        )
    return configs


def constant_paths(
    capacities_bps: Sequence[float],
    propagation_delays: Sequence[float],
    loss_rates: Sequence[float],
    names: Optional[Sequence[str]] = None,
) -> List[PathConfig]:
    """Fixed-capacity paths for the controlled experiments (§6.2)."""
    if not (
        len(capacities_bps) == len(propagation_delays) == len(loss_rates)
    ):
        raise ValueError("per-path parameter lists must align")
    configs: List[PathConfig] = []
    for index, (bps, delay, loss) in enumerate(
        zip(capacities_bps, propagation_delays, loss_rates)
    ):
        loss_model: LossModel = BernoulliLoss(loss) if loss > 0 else NoLoss()
        configs.append(
            PathConfig(
                path_id=index,
                trace=BandwidthTrace.constant(bps),
                propagation_delay=delay,
                loss_model=loss_model,
                name=names[index] if names else f"path-{index}",
            )
        )
    return configs


def run_system(
    system: SystemKind,
    path_configs: Sequence[PathConfig],
    duration: float,
    num_streams: int = 1,
    seed: int = 1,
    single_path_id: int = 0,
    label: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    churn_scenario: Optional[str] = None,
    **config_kwargs: Any,
) -> CallResult:
    """Run one system on the given paths and return its result."""
    config = build_call_config(
        system,
        duration=duration,
        num_streams=num_streams,
        seed=seed,
        single_path_id=single_path_id,
        label=label,
        **config_kwargs,
    )
    return run_call(
        config,
        path_configs,
        fault_plan=fault_plan,
        churn_scenario=churn_scenario,
    )


def run_chaos(
    system: SystemKind,
    scenario: str,
    chaos: str,
    duration: float = DEFAULT_DURATION,
    num_streams: int = 1,
    seed: int = 1,
    networks: Optional[Sequence[str]] = None,
    **config_kwargs: Any,
) -> CallResult:
    """Run one system through an Appendix-D scenario under a canned
    chaos plan (see :mod:`repro.faults.scenarios`)."""
    paths = scenario_paths(scenario, duration, seed, networks)
    plan = build_chaos_plan(
        chaos, duration, seed=seed, num_paths=len(paths)
    )
    return run_system(
        system,
        paths,
        duration,
        num_streams=num_streams,
        seed=seed,
        label=f"{system.value}+{chaos}",
        fault_plan=plan,
        churn_scenario=scenario,
        **config_kwargs,
    )


def run_all_systems(
    systems: Sequence[SystemKind],
    path_configs: Sequence[PathConfig],
    duration: float,
    num_streams: int = 1,
    seed: int = 1,
) -> Dict[str, CallResult]:
    """Run several systems on identical paths; keyed by system label."""
    results: Dict[str, CallResult] = {}
    for system in systems:
        result = run_system(
            system, path_configs, duration, num_streams, seed
        )
        results[result.label] = result
    return results
