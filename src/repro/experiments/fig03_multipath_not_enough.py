"""Figure 3 + Table 1: multipath is not enough (§2.3).

Runs WebRTC, M-RTP, M-TPUT, SRTT and Converge with 1-3 camera streams
over the driving traces and reports:

- Fig. 3(a): normalized FPS (per-stream FPS / 24),
- Fig. 3(b): average freeze duration,
- Fig. 3(c): FEC overhead (ratio of FEC to media packets),
- Table 1: average number of frame drops and total keyframe requests.

The paper's shape: naive multipath variants are *worse* than
single-path WebRTC (more drops, more keyframe requests, lower FPS),
while Converge matches or beats WebRTC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SystemKind
from repro.experiments.cells import ScenarioPaths, make_cell
from repro.experiments.runner import results_of, run_cells
from repro.metrics.report import format_table

SYSTEMS = (
    SystemKind.WEBRTC,
    SystemKind.MRTP,
    SystemKind.MTPUT,
    SystemKind.SRTT,
    SystemKind.CONVERGE,
)


@dataclass
class Fig03Cell:
    system: str
    num_streams: int
    normalized_fps: float
    mean_freeze_duration: float
    fec_overhead: float
    frame_drops: int
    keyframe_requests: int


@dataclass
class Fig03Result:
    cells: List[Fig03Cell]

    def for_system(self, system: str) -> List[Fig03Cell]:
        return [c for c in self.cells if c.system == system]


def cells(
    duration: float = 60.0,
    seed: int = 1,
    stream_counts: Sequence[int] = (1, 2, 3),
    systems: Sequence[SystemKind] = SYSTEMS,
) -> list:
    return [
        make_cell(
            ScenarioPaths("driving"),
            system,
            seed=seed,
            duration=duration,
            num_streams=num_streams,
        )
        for num_streams in stream_counts
        for system in systems
    ]


def run(
    duration: float = 60.0,
    seed: int = 1,
    stream_counts: Sequence[int] = (1, 2, 3),
    systems: Sequence[SystemKind] = SYSTEMS,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> Fig03Result:
    job_list = cells(duration, seed, stream_counts, systems)
    report = run_cells(job_list, jobs=jobs, cache=cache, progress=progress)
    rows: List[Fig03Cell] = []
    for cell, summary in zip(job_list, results_of(report)):
        rows.append(
            Fig03Cell(
                system=summary.label,
                num_streams=cell.num_streams,
                normalized_fps=summary.normalized()["fps"],
                mean_freeze_duration=summary.freeze_mean,
                fec_overhead=summary.fec_overhead,
                frame_drops=summary.frame_drops,
                keyframe_requests=summary.keyframe_requests,
            )
        )
    return Fig03Result(cells=rows)


def main(
    duration: float = 60.0,
    seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> str:
    result = run(
        duration=duration, seed=seed, jobs=jobs, cache=cache, progress=progress
    )
    fig = format_table(
        ["# streams", "system", "norm. FPS", "mean freeze (s)", "FEC overhead"],
        [
            [c.num_streams, c.system, c.normalized_fps, c.mean_freeze_duration, c.fec_overhead]
            for c in result.cells
        ],
    )
    table1 = format_table(
        ["# streams", "system", "frame drops", "keyframe requests"],
        [
            [c.num_streams, c.system, c.frame_drops, c.keyframe_requests]
            for c in result.cells
        ],
    )
    output = (
        "Figure 3 — WebRTC and multipath variants vs Converge (driving)\n"
        + fig
        + "\n\nTable 1 — frame drops and keyframe requests\n"
        + table1
    )
    print(output)
    return output


if __name__ == "__main__":
    main()
