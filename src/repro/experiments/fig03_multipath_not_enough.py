"""Figure 3 + Table 1: multipath is not enough (§2.3).

Runs WebRTC, M-RTP, M-TPUT, SRTT and Converge with 1-3 camera streams
over the driving traces and reports:

- Fig. 3(a): normalized FPS (per-stream FPS / 24),
- Fig. 3(b): average freeze duration,
- Fig. 3(c): FEC overhead (ratio of FEC to media packets),
- Table 1: average number of frame drops and total keyframe requests.

The paper's shape: naive multipath variants are *worse* than
single-path WebRTC (more drops, more keyframe requests, lower FPS),
while Converge matches or beats WebRTC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import SystemKind
from repro.experiments.common import run_system, scenario_paths
from repro.metrics.report import format_table

SYSTEMS = (
    SystemKind.WEBRTC,
    SystemKind.MRTP,
    SystemKind.MTPUT,
    SystemKind.SRTT,
    SystemKind.CONVERGE,
)


@dataclass
class Fig03Cell:
    system: str
    num_streams: int
    normalized_fps: float
    mean_freeze_duration: float
    fec_overhead: float
    frame_drops: int
    keyframe_requests: int


@dataclass
class Fig03Result:
    cells: List[Fig03Cell]

    def for_system(self, system: str) -> List[Fig03Cell]:
        return [c for c in self.cells if c.system == system]


def run(
    duration: float = 60.0,
    seed: int = 1,
    stream_counts: Sequence[int] = (1, 2, 3),
    systems: Sequence[SystemKind] = SYSTEMS,
) -> Fig03Result:
    cells: List[Fig03Cell] = []
    for num_streams in stream_counts:
        paths = scenario_paths("driving", duration, seed)
        for system in systems:
            result = run_system(
                system, paths, duration=duration, num_streams=num_streams, seed=seed
            )
            summary = result.summary
            cells.append(
                Fig03Cell(
                    system=result.label,
                    num_streams=num_streams,
                    normalized_fps=summary.normalized()["fps"],
                    mean_freeze_duration=summary.freeze.mean_duration,
                    fec_overhead=summary.fec_overhead,
                    frame_drops=summary.frame_drops,
                    keyframe_requests=summary.keyframe_requests,
                )
            )
    return Fig03Result(cells=cells)


def main(duration: float = 60.0, seed: int = 1) -> str:
    result = run(duration=duration, seed=seed)
    fig = format_table(
        ["# streams", "system", "norm. FPS", "mean freeze (s)", "FEC overhead"],
        [
            [c.num_streams, c.system, c.normalized_fps, c.mean_freeze_duration, c.fec_overhead]
            for c in result.cells
        ],
    )
    table1 = format_table(
        ["# streams", "system", "frame drops", "keyframe requests"],
        [
            [c.num_streams, c.system, c.frame_drops, c.keyframe_requests]
            for c in result.cells
        ],
    )
    output = (
        "Figure 3 — WebRTC and multipath variants vs Converge (driving)\n"
        + fig
        + "\n\nTable 1 — frame drops and keyframe requests\n"
        + table1
    )
    print(output)
    return output


if __name__ == "__main__":
    main()
