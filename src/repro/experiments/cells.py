"""Experiment cells: the unit of work of the parallel runner.

A :class:`Cell` is one fully-resolved ``(paths, system, seed,
duration, faults, overrides)`` job.  Every paper figure expands into a
list of cells; the runner executes them across worker processes and
memoizes each one in a content-addressed cache.  Two requirements
shape this module:

1. *Determinism*: executing a cell must depend only on the cell itself
   — paths are rebuilt inside the worker from a declarative
   :data:`PathSpec` with a fresh ``RandomStreams(seed)``, so a cell
   computes byte-identical results whether it runs serially, in a
   worker process, or on another machine.  (Sharing built
   ``PathConfig`` objects across calls would leak loss-model state
   between cells.)
2. *Stable identity*: the cache key is a SHA-256 over the canonical
   JSON encoding of the resolved cell plus a code-version salt, so a
   cell's key survives process restarts and dict-ordering accidents,
   and bumping :data:`CODE_VERSION` invalidates every cached result at
   once when simulation behaviour changes.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import importlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import SystemKind
from repro.net.path import PathConfig

# Bump when simulation behaviour changes in a way that invalidates
# previously cached summaries.  Combined with the optional
# ``REPRO_CACHE_SALT`` environment override (useful for forcing a cold
# cache without deleting anything).
CODE_VERSION = "2026.08-2"


class Fidelity(enum.Enum):
    """Which simulation backend executes a cell.

    ``PACKET`` is the discrete-event core (exact, ~40 sim-s/wall-s);
    ``FLOW`` is the frame-interval abstraction in :mod:`repro.flow`
    (cross-validated against the packet goldens, orders of magnitude
    faster).  The fidelity is part of the cell's identity and its
    cache key, so cached summaries never mix backends.
    """

    PACKET = "packet"
    FLOW = "flow"


# ---------------------------------------------------------------------------
# Path specifications


@dataclass(frozen=True)
class ScenarioPaths:
    """Appendix-D scenario paths (``repro.traces.scenarios``)."""

    scenario: str
    networks: Optional[Tuple[str, ...]] = None

    def build(self, duration: float, seed: int) -> List[PathConfig]:
        from repro.experiments.common import scenario_paths

        return scenario_paths(
            self.scenario, duration, seed, networks=self.networks
        )


@dataclass(frozen=True)
class ConstantPaths:
    """Fixed-capacity paths (the §6.2 controlled environments)."""

    capacities_bps: Tuple[float, ...]
    propagation_delays: Tuple[float, ...]
    loss_rates: Tuple[float, ...]
    names: Optional[Tuple[str, ...]] = None

    def build(self, duration: float, seed: int) -> List[PathConfig]:
        from repro.experiments.common import constant_paths

        return constant_paths(
            list(self.capacities_bps),
            list(self.propagation_delays),
            list(self.loss_rates),
            names=list(self.names) if self.names else None,
        )


@dataclass(frozen=True)
class BuilderPaths:
    """Paths produced by a named builder function.

    ``builder`` is a ``"module.path:function"`` reference resolved by
    import inside the worker, so arbitrary experiment topologies (the
    Fig. 11 fade, the loss-model sweeps) stay declarative, picklable
    and hashable.  The builder is called as ``fn(duration=..., **kwargs)``
    and must be deterministic in its arguments.
    """

    builder: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def build(self, duration: float, seed: int) -> List[PathConfig]:
        module_name, _, attr = self.builder.partition(":")
        if not attr:
            raise ValueError(
                f"builder must look like 'pkg.module:function': {self.builder!r}"
            )
        fn = getattr(importlib.import_module(module_name), attr)
        return fn(duration=duration, **dict(self.kwargs))


PathSpec = Union[ScenarioPaths, ConstantPaths, BuilderPaths]


# ---------------------------------------------------------------------------
# The cell itself


@dataclass(frozen=True)
class Cell:
    """One fully-resolved simulation job.

    ``overrides`` holds extra :func:`repro.core.api.build_call_config`
    keyword arguments (FEC mode, receiver config, ablation switches…).
    Values must be canonicalizable (primitives, enums, dataclasses,
    tuples); they are part of the cell's identity.
    """

    paths: PathSpec
    system: SystemKind = SystemKind.CONVERGE
    seed: int = 1
    duration: float = 30.0
    num_streams: int = 1
    single_path_id: int = 0
    label: Optional[str] = None
    # Name of a canned chaos plan (repro.faults.scenarios), or None.
    chaos: Optional[str] = None
    # Which simulation backend runs this cell (salted into the key).
    fidelity: Fidelity = Fidelity.PACKET
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("cell duration must be positive")
        if self.num_streams < 1:
            raise ValueError("cell needs at least one stream")
        if isinstance(self.fidelity, str):
            object.__setattr__(self, "fidelity", Fidelity(self.fidelity))
        if isinstance(self.overrides, dict):
            object.__setattr__(
                self, "overrides", tuple(sorted(self.overrides.items()))
            )

    @property
    def effective_label(self) -> str:
        return self.label or self.system.value

    def override_kwargs(self) -> Dict[str, Any]:
        return dict(self.overrides)

    def resolved(self) -> Dict[str, Any]:
        """The cell as canonical, JSON-able data (its identity).

        Memoized per instance (the cell is frozen, so its identity
        never changes): sweeps probe the cache, plan batches and store
        results against the same cells, and profiling showed the
        canonicalization re-running on every probe.  Treat the
        returned dict as immutable — copy before editing.
        """
        cached = self.__dict__.get("_resolved_memo")
        if cached is not None:
            return cached  # type: ignore[no-any-return]
        resolved = self._compute_resolved()
        object.__setattr__(self, "_resolved_memo", resolved)
        return resolved

    def _compute_resolved(self) -> Dict[str, Any]:
        return {
            "paths": canonicalize(self.paths),
            "system": self.system.value,
            "seed": self.seed,
            "duration": self.duration,
            "num_streams": self.num_streams,
            "single_path_id": self.single_path_id,
            "label": self.label,
            "chaos": self.chaos,
            "fidelity": self.fidelity.value,
            "overrides": canonicalize(dict(self.overrides)),
        }

    def key(self) -> str:
        """Content-addressed cache key for this cell."""
        return cell_key(self)


def make_cell(
    paths: PathSpec,
    system: SystemKind,
    *,
    seed: int = 1,
    duration: float = 30.0,
    num_streams: int = 1,
    single_path_id: int = 0,
    label: Optional[str] = None,
    chaos: Optional[str] = None,
    fidelity: Union[Fidelity, str] = Fidelity.PACKET,
    **overrides: Any,
) -> Cell:
    """Convenience constructor: keyword overrides become the tuple form."""
    return Cell(
        paths=paths,
        system=system,
        seed=seed,
        duration=duration,
        num_streams=num_streams,
        single_path_id=single_path_id,
        label=label,
        chaos=chaos,
        fidelity=Fidelity(fidelity),
        overrides=tuple(sorted(overrides.items())),
    )


# ---------------------------------------------------------------------------
# Canonical encoding and hashing


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to canonical JSON-able data.

    Handles primitives, enums (by value), dataclasses (tagged with
    their qualified class name so two config types with equal fields
    do not collide), and sequences/mappings recursively.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": _qualname(type(value)), "value": value.value}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": _qualname(type(value)), "fields": fields}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, dict):
        return {
            str(key): canonicalize(item)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    # Plain objects (e.g. loss models) hash by class + public attrs.
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        public = {
            name: canonicalize(item)
            for name, item in sorted(attrs.items())
            if not name.startswith("_")
        }
        return {"__object__": _qualname(type(value)), "attrs": public}
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def _qualname(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, tight separators, repr floats.

    Floats round-trip exactly through this encoding (json uses
    ``repr``), which is what makes cached summaries byte-identical to
    freshly computed ones.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def cell_key(cell: Cell) -> str:
    """SHA-256 of the resolved cell plus the code-version salt.

    Memoized per Cell instance (keyed by the salt, which can change
    between sweeps via ``REPRO_CACHE_SALT``): the runner probes the
    cache, dedups and stores results against the same frozen cells, so
    the key is computed once per cell per run.  The memo returns the
    *same* string object on a hit — tests pin that identity.
    """
    salt = os.environ.get("REPRO_CACHE_SALT", "")
    cached = cell.__dict__.get("_key_memo")
    if cached is not None and cached[0] == salt:
        return cached[1]  # type: ignore[no-any-return]
    payload = canonical_json(
        {
            "cell": canonicalize(cell.resolved()),
            "code_version": CODE_VERSION,
            "salt": salt,
        }
    )
    key = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    object.__setattr__(cell, "_key_memo", (salt, key))
    return key


def expand_grid(
    path_specs: Sequence[PathSpec],
    systems: Sequence[SystemKind],
    seeds: Sequence[int],
    *,
    duration: float,
    num_streams: int = 1,
    chaos: Optional[str] = None,
    fidelity: Union[Fidelity, str] = Fidelity.PACKET,
    **overrides: Any,
) -> List[Cell]:
    """The common sweep shape: the cross product of paths × systems × seeds.

    Expansion order is deterministic (paths outermost, seeds innermost)
    so progress output and result ordering are stable run to run.
    """
    cells: List[Cell] = []
    for spec in path_specs:
        for system in systems:
            for seed in seeds:
                cells.append(
                    make_cell(
                        spec,
                        system,
                        seed=seed,
                        duration=duration,
                        num_streams=num_streams,
                        chaos=chaos,
                        fidelity=fidelity,
                        **overrides,
                    )
                )
    return cells
