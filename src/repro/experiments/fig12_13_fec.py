"""Figures 12-13 + Table 5: the QoE trade-off of FEC (§6.2).

Controlled environment per the paper: two 15 Mbps paths, 100 ms RTT,
Bernoulli loss swept 1-10%.  Both arms use the Converge video-aware
scheduler; they differ only in the FEC controller — path-specific
(Converge, §4.3) vs WebRTC's static table — isolating the FEC design
as §6.2's component analysis does.

- Fig. 12: FEC overhead and FEC utilization vs loss rate,
- Fig. 13: (media throughput, E2E delay) operating points,
- Table 5: % improvement in frame drops, freeze duration and keyframe
  requests from the path-specific controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import FecMode, SystemKind
from repro.experiments.cells import ConstantPaths, make_cell
from repro.experiments.runner import results_of, run_cells
from repro.metrics.report import format_table


@dataclass
class FecSweepPoint:
    loss_percent: float
    fec_mode: str
    fec_overhead: float
    fec_utilization: float
    throughput_bps: float
    e2e_mean: float
    frame_drops: int
    freeze_total: float
    keyframe_requests: int


@dataclass
class Fec1213Result:
    points: List[FecSweepPoint]

    def arm(self, fec_mode: str) -> List[FecSweepPoint]:
        return sorted(
            (p for p in self.points if p.fec_mode == fec_mode),
            key=lambda p: p.loss_percent,
        )

    def table5(self) -> List[Dict[str, float]]:
        """% improvement of path-specific FEC over the table (per loss)."""
        improvements = []
        table_arm = {p.loss_percent: p for p in self.arm("webrtc-table")}
        for point in self.arm("converge"):
            baseline = table_arm[point.loss_percent]

            def improvement(ours: float, theirs: float) -> float:
                if theirs <= 0:
                    return 0.0
                return 100.0 * (theirs - ours) / theirs

            improvements.append(
                {
                    "loss_percent": point.loss_percent,
                    "frame_drops": improvement(
                        point.frame_drops, baseline.frame_drops
                    ),
                    "freeze": improvement(point.freeze_total, baseline.freeze_total),
                    "keyframe_requests": improvement(
                        point.keyframe_requests, baseline.keyframe_requests
                    ),
                }
            )
        return improvements


def cells(
    duration: float = 60.0,
    seed: int = 1,
    loss_percents: Sequence[float] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
) -> list:
    job_list = []
    for loss_percent in loss_percents:
        loss = loss_percent / 100.0
        for fec_mode in (FecMode.CONVERGE, FecMode.WEBRTC_TABLE):
            job_list.append(
                make_cell(
                    ConstantPaths(
                        (15e6, 15e6), (0.05, 0.05), (loss, loss)
                    ),
                    SystemKind.CONVERGE,
                    seed=seed,
                    duration=duration,
                    label=fec_mode.value,
                    fec_mode=fec_mode,
                )
            )
    return job_list


def run(
    duration: float = 60.0,
    seed: int = 1,
    loss_percents: Sequence[float] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> Fec1213Result:
    job_list = cells(duration, seed, loss_percents)
    report = run_cells(job_list, jobs=jobs, cache=cache, progress=progress)
    points: List[FecSweepPoint] = []
    loss_per_cell = [
        loss_percent
        for loss_percent in loss_percents
        for _ in (FecMode.CONVERGE, FecMode.WEBRTC_TABLE)
    ]
    for loss_percent, summary in zip(loss_per_cell, results_of(report)):
        points.append(
            FecSweepPoint(
                loss_percent=loss_percent,
                fec_mode=summary.label,
                fec_overhead=summary.fec_overhead,
                fec_utilization=summary.fec_utilization,
                throughput_bps=summary.throughput_bps,
                e2e_mean=summary.e2e_mean,
                frame_drops=summary.frame_drops,
                freeze_total=summary.freeze_total,
                keyframe_requests=summary.keyframe_requests,
            )
        )
    return Fec1213Result(points=points)


def main(
    duration: float = 60.0,
    seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> str:
    result = run(
        duration=duration, seed=seed, jobs=jobs, cache=cache, progress=progress
    )
    fig12 = format_table(
        ["loss %", "FEC mode", "overhead %", "utilization %"],
        [
            [p.loss_percent, p.fec_mode, 100 * p.fec_overhead, 100 * p.fec_utilization]
            for p in result.points
        ],
    )
    fig13 = format_table(
        ["loss %", "FEC mode", "tput (Mbps)", "E2E (s)"],
        [
            [p.loss_percent, p.fec_mode, p.throughput_bps / 1e6, p.e2e_mean]
            for p in result.points
        ],
    )
    table5 = format_table(
        ["loss %", "drops improv %", "freeze improv %", "kfr improv %"],
        [
            [row["loss_percent"], row["frame_drops"], row["freeze"], row["keyframe_requests"]]
            for row in result.table5()
        ],
    )
    output = (
        "Figure 12 — FEC overhead/utilization vs loss\n" + fig12
        + "\n\nFigure 13 — throughput vs E2E trade-off\n" + fig13
        + "\n\nTable 5 — %% QoE improvement, path-specific FEC vs table FEC\n"
        + table5
    )
    print(output)
    return output


if __name__ == "__main__":
    main()
