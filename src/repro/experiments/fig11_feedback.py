"""Figure 11 + Table 4: the benefit of QoE feedback (§6.2).

Controlled environment: Path 1 holds ~25 Mbps; Path 2 starts equal but
collapses to 0.5-2.5 Mbps during t in [30, 90).  Converge runs with
and without the QoE feedback loop.  Reported:

- received-rate / IFD / FCD time series (Fig. 11 b-d),
- Table 4: frame drops, freeze duration, keyframe requests.

Expected shape: without feedback both paths keep being used through
the fade, IFD and FCD blow up and frames drop; with feedback the IFD
returns to the ~33 ms target quickly and only a handful of frames are
lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import SystemKind
from repro.experiments.cells import BuilderPaths, make_cell
from repro.experiments.runner import CellSummary, results_of, run_cells
from repro.metrics.report import format_table
from repro.net.loss import BernoulliLoss, ScheduledLoss
from repro.net.path import PathConfig
from repro.net.trace import BandwidthTrace


@dataclass
class FeedbackArmResult:
    label: str
    frame_drops: int
    freeze_total: float
    mean_freeze: float
    keyframe_requests: int
    mean_ifd: float
    mean_fcd: float
    ifd_series: List[Tuple[float, float]]
    fcd_series: List[Tuple[float, float]]
    rate_series: List[Tuple[float, float]]
    throughput_bps: float


@dataclass
class Fig11Result:
    with_feedback: FeedbackArmResult
    without_feedback: FeedbackArmResult


def fig11_paths(
    duration: float,
    fade_start: float = 30.0,
    fade_end: float = 90.0,
    fade_low_bps: float = 0.5e6,
    fade_high_bps: float = 2.5e6,
    oscillation_period: float = 4.0,
    fade_loss: float = 0.06,
) -> List[PathConfig]:
    """The Fig. 11(a) network: stable path 1, collapsing path 2.

    During the fade the paper's path 2 oscillates between roughly 0.5
    and 2.5 Mbps; the oscillation matters — a congestion controller
    can settle onto a constant residual capacity, but it chases a
    moving one, which is exactly the condition QoE feedback rescues.
    """
    fade_start = min(fade_start, duration)
    fade_end = min(fade_end, duration)
    path1 = PathConfig(
        path_id=0,
        trace=BandwidthTrace.constant(25e6),
        propagation_delay=0.02,
        loss_model=BernoulliLoss(0.001),
        name="path-1-stable",
    )
    samples = [(0.0, 25e6)]
    t = fade_start
    low_phase = True
    while t < fade_end:
        samples.append((t, fade_low_bps if low_phase else fade_high_bps))
        low_phase = not low_phase
        t += oscillation_period / 2
    samples.append((fade_end, 25e6))
    path2 = PathConfig(
        path_id=1,
        trace=BandwidthTrace(samples),
        propagation_delay=0.02,
        # The coverage hole also loses packets over the air; the rate
        # sits in GCC's hold band (2-10%) so congestion control alone
        # does not vacate the path — QoE feedback has to.
        loss_model=ScheduledLoss(
            [(0.0, 0.001), (fade_start, fade_loss), (fade_end, 0.001)]
        ),
        name="path-2-fading",
    )
    return [path1, path2]


def _arm_label(feedback_enabled: bool) -> str:
    return "with-feedback" if feedback_enabled else "without-feedback"


def cells(
    duration: float = 120.0, seed: int = 1, num_seeds: int = 3
) -> list:
    """Both arms crossed with the seed set, as one flat cell list."""
    seeds = [seed + i for i in range(num_seeds)]
    return [
        make_cell(
            BuilderPaths("repro.experiments.fig11_feedback:fig11_paths"),
            SystemKind.CONVERGE,
            seed=cell_seed,
            duration=duration,
            label=_arm_label(feedback_enabled),
            qoe_feedback_enabled=feedback_enabled,
        )
        for feedback_enabled in (True, False)
        for cell_seed in seeds
    ]


def _aggregate_arm(
    feedback_enabled: bool, summaries: Sequence[CellSummary]
) -> FeedbackArmResult:
    """Average one arm over its seeds; series come from the first.

    The fade-onset damage (frames already in flight when capacity
    collapses) is luck-of-the-draw per seed, so the Table 4 numbers
    average a few runs.
    """
    n = len(summaries)
    first = summaries[0]
    return FeedbackArmResult(
        label=_arm_label(feedback_enabled),
        frame_drops=int(sum(s.frame_drops for s in summaries) / n),
        freeze_total=sum(s.freeze_total for s in summaries) / n,
        mean_freeze=sum(s.freeze_mean for s in summaries) / n,
        keyframe_requests=int(
            sum(s.keyframe_requests for s in summaries) / n
        ),
        mean_ifd=sum(s.series_mean("ifd") for s in summaries) / n,
        mean_fcd=sum(s.series_mean("fcd") for s in summaries) / n,
        ifd_series=first.series_pairs("ifd"),
        fcd_series=first.series_pairs("fcd"),
        rate_series=first.series_pairs("receive_rate"),
        throughput_bps=sum(s.throughput_bps for s in summaries) / n,
    )


def run(
    duration: float = 120.0,
    seed: int = 1,
    num_seeds: int = 3,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> Fig11Result:
    report = run_cells(
        cells(duration, seed, num_seeds),
        jobs=jobs, cache=cache, progress=progress,
    )
    summaries = results_of(report)
    return Fig11Result(
        with_feedback=_aggregate_arm(True, summaries[:num_seeds]),
        without_feedback=_aggregate_arm(False, summaries[num_seeds:]),
    )


def main(
    duration: float = 120.0,
    seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> str:
    from repro.analysis.plots import render_series

    result = run(
        duration=duration, seed=seed, jobs=jobs, cache=cache, progress=progress
    )
    arms = [result.with_feedback, result.without_feedback]
    charts = "\n\n".join(
        render_series(
            [(t, v / 1e6) for t, v in arm.rate_series],
            height=5,
            title=f"received rate Mbps ({arm.label})",
        )
        for arm in arms
        if arm.rate_series
    )
    table4 = format_table(
        ["QoE parameter"] + [a.label for a in arms],
        [
            ["frame drops"] + [a.frame_drops for a in arms],
            ["freeze duration (s)"] + [a.freeze_total for a in arms],
            ["keyframe requests"] + [a.keyframe_requests for a in arms],
            ["mean IFD (ms)"] + [1000 * a.mean_ifd for a in arms],
            ["mean FCD (ms)"] + [1000 * a.mean_fcd for a in arms],
            ["throughput (Mbps)"] + [a.throughput_bps / 1e6 for a in arms],
        ],
    )
    output = (
        "Figure 11 / Table 4 — the benefit of QoE feedback\n"
        + table4
        + "\n\n"
        + charts
    )
    print(output)
    return output


if __name__ == "__main__":
    main()
