"""Fleet engine: seeded scenario-matrix Monte Carlo sweeps.

Real deployments are judged on QoE *distributions*, not single seeds:
the paper's comparison figures average a handful of runs, but the
long-tail claims (stall ratio at p95, drop counts under churny
cellular traces) need thousands of seeds per configuration.  A
:class:`FleetSpec` declares such a matrix — scenarios × systems × a
seed range — and :func:`run_fleet` expands it into cells, executes
them through the cached runner (array-batched flow execution by
default), and reduces each ``(scenario, system)`` group to
distribution statistics with bootstrap confidence intervals.

Determinism contract: the report is a pure function of the spec and
the per-cell summaries.  Statistics are computed *after* aggregation,
keyed only by the cell's position in the expansion order, and the
bootstrap RNG is seeded from the group/metric label — so a fleet
assembled from shard caches merged in any order is byte-identical to
one computed in a single unsharded run (pinned by the property tests).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.stats import bootstrap_ci, describe
from repro.core.config import SystemKind
from repro.experiments.cache import ResultCache
from repro.experiments.cells import Cell, Fidelity, ScenarioPaths, make_cell
from repro.experiments.runner import CellSummary, RunStats, run_cells

# The QoE metrics a fleet reduces; each is a scalar in every cell
# summary.  ``freeze_total`` is reported per call (seconds frozen) —
# divide by the spec duration for the paper's stall ratio.
FLEET_METRICS: Tuple[str, ...] = (
    "throughput_bps",
    "average_fps",
    "e2e_p95",
    "freeze_total",
    "average_qp",
    "frame_drops",
)


@dataclass(frozen=True)
class FleetSpec:
    """One declarative scenario-matrix sweep."""

    scenarios: Tuple[str, ...]
    systems: Tuple[SystemKind, ...]
    seeds: Tuple[int, ...]
    duration: float = 30.0
    fidelity: Fidelity = Fidelity.FLOW
    num_streams: int = 1

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("fleet needs at least one scenario")
        if not self.systems:
            raise ValueError("fleet needs at least one system")
        if not self.seeds:
            raise ValueError("fleet needs at least one seed")
        if self.duration <= 0:
            raise ValueError("fleet duration must be positive")
        if isinstance(self.fidelity, str):
            object.__setattr__(self, "fidelity", Fidelity(self.fidelity))

    @staticmethod
    def from_ranges(
        scenarios: Sequence[str],
        systems: Sequence[SystemKind],
        seed_start: int,
        seed_count: int,
        duration: float,
        fidelity: Union[Fidelity, str] = Fidelity.FLOW,
        num_streams: int = 1,
    ) -> "FleetSpec":
        """The CLI shape: a contiguous seed range per matrix point."""
        if seed_count < 1:
            raise ValueError("fleet needs at least one seed")
        return FleetSpec(
            scenarios=tuple(scenarios),
            systems=tuple(systems),
            seeds=tuple(range(seed_start, seed_start + seed_count)),
            duration=duration,
            fidelity=Fidelity(fidelity),
            num_streams=num_streams,
        )

    @property
    def cell_count(self) -> int:
        return len(self.scenarios) * len(self.systems) * len(self.seeds)


def expand_fleet(spec: FleetSpec) -> List[Cell]:
    """The spec's cells: scenarios outermost, seeds innermost.

    The expansion order is the grouping contract — statistics consume
    outcomes in contiguous ``len(spec.seeds)`` runs per
    ``(scenario, system)`` point.
    """
    cells: List[Cell] = []
    for scenario in spec.scenarios:
        for system in spec.systems:
            for seed in spec.seeds:
                cells.append(
                    make_cell(
                        ScenarioPaths(scenario),
                        system,
                        seed=seed,
                        duration=spec.duration,
                        num_streams=spec.num_streams,
                        fidelity=spec.fidelity,
                    )
                )
    return cells


@dataclass
class FleetGroup:
    """Distribution statistics for one (scenario, system) matrix point."""

    scenario: str
    system: str
    n: int
    failed: int
    # metric -> describe() keys plus ci_lo / ci_hi for the mean.
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def payload(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "system": self.system,
            "n": self.n,
            "failed": self.failed,
            "metrics": self.metrics,
        }


@dataclass
class FleetReport:
    """The fleet's reduced view plus the underlying sweep stats."""

    spec: FleetSpec
    groups: List[FleetGroup]
    stats: RunStats
    confidence: float
    resamples: int

    def payload(self) -> Dict[str, Any]:
        return {
            "spec": {
                "scenarios": list(self.spec.scenarios),
                "systems": [s.value for s in self.spec.systems],
                "seeds": list(self.spec.seeds),
                "duration": self.spec.duration,
                "fidelity": self.spec.fidelity.value,
                "num_streams": self.spec.num_streams,
            },
            "confidence": self.confidence,
            "resamples": self.resamples,
            "groups": [group.payload() for group in self.groups],
            "stats": {
                "cells_total": self.stats.cells_total,
                "cells_unique": self.stats.cells_unique,
                "executed": self.stats.executed,
                "cache_hits": self.stats.cache_hits,
                "errors": self.stats.errors,
                "wall_seconds": self.stats.wall_seconds,
            },
        }


def fleet_statistics(
    spec: FleetSpec,
    summaries: Sequence[Optional[CellSummary]],
    confidence: float = 0.95,
    resamples: int = 1000,
) -> List[FleetGroup]:
    """Reduce per-cell summaries to per-group distribution statistics.

    ``summaries`` must align with :func:`expand_fleet` order (failed
    cells as ``None``).  Pure and deterministic: no wall clock, no
    shared RNG — the bootstrap stream is derived from the group/metric
    label, so the result is independent of how (or where) the
    summaries were computed.
    """
    if len(summaries) != spec.cell_count:
        raise ValueError(
            f"expected {spec.cell_count} summaries for the spec, "
            f"got {len(summaries)}"
        )
    groups: List[FleetGroup] = []
    per_point = len(spec.seeds)
    index = 0
    for scenario in spec.scenarios:
        for system in spec.systems:
            chunk = summaries[index:index + per_point]
            index += per_point
            good = [s for s in chunk if s is not None]
            group = FleetGroup(
                scenario=scenario,
                system=system.value,
                n=len(good),
                failed=per_point - len(good),
            )
            for metric in FLEET_METRICS:
                values = [float(s.summary[metric]) for s in good]
                if not values:
                    continue
                row = describe(values)
                lo, hi = bootstrap_ci(
                    values,
                    confidence=confidence,
                    resamples=resamples,
                    seed_label=f"{scenario}/{system.value}/{metric}",
                )
                row["ci_lo"] = lo
                row["ci_hi"] = hi
                group.metrics[metric] = row
            groups.append(group)
    return groups


def run_fleet(
    spec: FleetSpec,
    jobs: Optional[int] = None,
    cache: Union[ResultCache, str, "os.PathLike[str]", None] = None,
    progress: bool = False,
    cell_timeout: Optional[float] = None,
    mode: str = "batch",
    confidence: float = 0.95,
    resamples: int = 1000,
) -> FleetReport:
    """Expand, execute and reduce one fleet spec.

    Execution goes through :func:`repro.experiments.runner.run_cells`
    — content-addressed caching, per-cell quarantine and the array
    batch mode all apply — so a fleet can be split across machines by
    sharding the seed range and recombined with ``repro cache merge``.
    """
    cells = expand_fleet(spec)
    report = run_cells(
        cells,
        jobs=jobs,
        cache=cache,
        progress=progress,
        cell_timeout=cell_timeout,
        mode=mode,
    )
    groups = fleet_statistics(
        spec,
        report.summaries(),
        confidence=confidence,
        resamples=resamples,
    )
    return FleetReport(
        spec=spec,
        groups=groups,
        stats=report.stats,
        confidence=confidence,
        resamples=resamples,
    )
