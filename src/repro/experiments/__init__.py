"""Experiment harness: one module per table/figure of the evaluation.

Each module exposes a ``run(...)`` function returning a structured
result plus a ``main()`` that prints the same rows/series the paper
reports.  The mapping from experiment id to module is in DESIGN.md.
"""
