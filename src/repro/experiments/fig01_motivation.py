"""Figure 1: WebRTC degrades under cellular bandwidth variation.

Reproduces the motivating experiment: two single-path WebRTC calls,
one over T-Mobile and one over Verizon, replaying driving traces.
The paper shows FPS collapses and per-frame E2E latency spikes as
capacity varies; the harness reports the FPS/E2E time series and the
summary statistics that make the motivation concrete (time below the
24 FPS target, E2E p95).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import SystemKind
from repro.experiments.cells import ScenarioPaths, make_cell
from repro.experiments.runner import results_of, run_cells
from repro.metrics.report import format_table

NETWORKS = ("tmobile", "verizon")


@dataclass
class Fig01Row:
    network: str
    mean_fps: float
    fraction_below_target: float
    e2e_mean: float
    e2e_p95: float
    freeze_seconds: float
    fps_series: List[float]
    e2e_series_mean: float


@dataclass
class Fig01Result:
    rows: List[Fig01Row]


def cells(duration: float = 60.0, seed: int = 1) -> list:
    """One single-path WebRTC cell per driving network."""
    return [
        make_cell(
            ScenarioPaths("driving", networks=(network,)),
            SystemKind.WEBRTC,
            seed=seed,
            duration=duration,
            label=f"webrtc-{network}",
        )
        for network in NETWORKS
    ]


def run(
    duration: float = 60.0,
    seed: int = 1,
    target_fps: float = 24.0,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> Fig01Result:
    """Run the Figure 1 motivation experiment."""
    report = run_cells(
        cells(duration, seed), jobs=jobs, cache=cache, progress=progress
    )
    rows: List[Fig01Row] = []
    for network, summary in zip(NETWORKS, results_of(report)):
        fps_series = summary.series_values("fps")
        below = sum(1 for v in fps_series if v < target_fps) / max(
            len(fps_series), 1
        )
        rows.append(
            Fig01Row(
                network=network,
                mean_fps=summary.average_fps,
                fraction_below_target=below,
                e2e_mean=summary.e2e_mean,
                e2e_p95=summary.e2e_p95,
                freeze_seconds=summary.freeze_total,
                fps_series=fps_series,
                e2e_series_mean=summary.e2e_mean,
            )
        )
    return Fig01Result(rows=rows)


def main(
    duration: float = 60.0,
    seed: int = 1,
    jobs: Optional[int] = None,
    cache: Optional[str] = None,
    progress: bool = False,
) -> str:
    from repro.analysis.plots import sparkline

    result = run(
        duration=duration, seed=seed, jobs=jobs, cache=cache, progress=progress
    )
    table = format_table(
        ["network", "mean FPS", "frac<24fps", "E2E mean (s)", "E2E p95 (s)", "freeze (s)"],
        [
            [r.network, r.mean_fps, r.fraction_below_target, r.e2e_mean, r.e2e_p95, r.freeze_seconds]
            for r in result.rows
        ],
    )
    charts = "\n".join(
        f"FPS {r.network:8s} {sparkline(r.fps_series, width=64)}"
        for r in result.rows
    )
    output = (
        "Figure 1 — WebRTC over a single cellular network (driving)\n"
        + table
        + "\n\n"
        + charts
    )
    print(output)
    return output


if __name__ == "__main__":
    main()
