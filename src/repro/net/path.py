"""A unidirectional network path: drop-tail queue + trace-driven capacity.

This is the emulation equivalent of the cellular/WiFi links in the
paper's testbed.  Data packets experience:

1. stochastic loss (the radio-loss process, :mod:`repro.net.loss`),
2. a byte-limited drop-tail bottleneck queue served at the capacity the
   bandwidth trace reports for the current instant,
3. a fixed propagation delay plus small random delivery jitter.

The reverse direction (RTCP feedback) is modelled as a delay-only
channel via :meth:`Path.send_feedback` because control traffic is tiny
compared to path capacity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional

from repro.net.loss import LossModel, NoLoss
from repro.net.trace import BandwidthTrace
from repro.simulation.simulator import Simulator

# Below this capacity the link is treated as in outage and polled until
# it recovers rather than computing absurd serialization delays.
_OUTAGE_CAPACITY_BPS = 1_000.0
_OUTAGE_POLL_INTERVAL = 0.02


@dataclass
class PathConfig:
    """Static configuration for one emulated path."""

    path_id: int
    trace: BandwidthTrace
    propagation_delay: float = 0.025
    loss_model: LossModel = field(default_factory=NoLoss)
    queue_capacity_bytes: int = 256_000
    jitter_max: float = 0.002
    name: str = ""

    def __post_init__(self) -> None:
        if self.propagation_delay < 0:
            raise ValueError("propagation delay must be non-negative")
        if self.queue_capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        if not self.name:
            self.name = f"path-{self.path_id}"


@dataclass
class PathStats:
    """Counters the emulator keeps per path."""

    sent_packets: int = 0
    sent_bytes: int = 0
    delivered_packets: int = 0
    delivered_bytes: int = 0
    random_losses: int = 0
    queue_drops: int = 0

    @property
    def loss_rate(self) -> float:
        if self.sent_packets == 0:
            return 0.0
        return (self.random_losses + self.queue_drops) / self.sent_packets


class Path:
    """One emulated unidirectional path between sender and receiver."""

    def __init__(self, sim: Simulator, config: PathConfig) -> None:
        self.sim = sim
        self.config = config
        self.path_id = config.path_id
        self.stats = PathStats()
        self.on_deliver: Optional[Callable[[object], None]] = None
        self.on_feedback_deliver: Optional[Callable[[object], None]] = None
        self._rng = sim.streams.stream(f"path-loss-{config.path_id}-{config.name}")
        self._jitter_rng = sim.streams.stream(
            f"path-jitter-{config.path_id}-{config.name}"
        )
        self._queue: Deque[object] = deque()
        self._queued_bytes = 0
        self._serving = False

    # -- data direction ------------------------------------------------

    def send(self, packet) -> bool:
        """Offer ``packet`` (must expose ``size_bytes``) to the path.

        Returns ``True`` if the packet entered the link (it may still be
        randomly lost in flight), ``False`` on queue overflow.
        """
        size = packet.size_bytes
        self.stats.sent_packets += 1
        self.stats.sent_bytes += size
        if self._queued_bytes + size > self.config.queue_capacity_bytes:
            self.stats.queue_drops += 1
            return False
        self._queue.append(packet)
        self._queued_bytes += size
        if not self._serving:
            self._serving = True
            self.sim.schedule(0.0, self._serve_next)
        return True

    def _serve_next(self) -> None:
        if not self._queue:
            self._serving = False
            return
        capacity = self.config.trace.capacity_at(self.sim.now)
        if capacity < _OUTAGE_CAPACITY_BPS:
            self.sim.schedule(_OUTAGE_POLL_INTERVAL, self._serve_next)
            return
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        tx_time = packet.size_bytes * 8 / capacity
        self.sim.schedule(tx_time, lambda: self._transmitted(packet))

    def _transmitted(self, packet) -> None:
        # Schedule the next packet's service as soon as this one leaves
        # the transmitter, then propagate this one.
        self._serve_next()
        if self.config.loss_model.should_drop(self._rng, self.sim.now):
            self.stats.random_losses += 1
            return
        jitter = self._jitter_rng.uniform(0.0, self.config.jitter_max)
        delay = self.config.propagation_delay + jitter
        self.sim.schedule(delay, lambda: self._deliver(packet))

    def _deliver(self, packet) -> None:
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += packet.size_bytes
        if self.on_deliver is not None:
            self.on_deliver(packet)

    # -- feedback direction ---------------------------------------------

    def send_feedback(self, message) -> None:
        """Carry an RTCP message back to the sender after one-way delay."""
        delay = self.config.propagation_delay + self._jitter_rng.uniform(
            0.0, self.config.jitter_max
        )
        self.sim.schedule(delay, lambda: self._deliver_feedback(message))

    def _deliver_feedback(self, message) -> None:
        if self.on_feedback_deliver is not None:
            self.on_feedback_deliver(message)

    # -- introspection ---------------------------------------------------

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def capacity_now(self) -> float:
        """Current link capacity in bits per second."""
        return self.config.trace.capacity_at(self.sim.now)

    @property
    def base_rtt(self) -> float:
        """Propagation-only round-trip time (no queueing)."""
        return 2 * self.config.propagation_delay
