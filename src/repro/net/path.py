"""A bidirectional network path: drop-tail queue + trace-driven capacity.

This is the emulation equivalent of the cellular/WiFi links in the
paper's testbed.  Data packets experience:

1. stochastic loss (the radio-loss process, :mod:`repro.net.loss`),
2. a byte-limited drop-tail bottleneck queue served at the capacity the
   bandwidth trace reports for the current instant,
3. a fixed propagation delay plus small random delivery jitter.

The reverse direction (RTCP feedback) is a delay-only channel by
default because control traffic is tiny compared to path capacity, but
it supports its own loss model and outage windows: the paper's whole
control loop (scheduler weights, Eq. 2 budgets, path re-enablement,
per-path FEC) rides on RTCP, and a cellular uplink that blacks out
takes the control traffic down with it.  Feedback delivery is FIFO —
delivery times are monotone per path — matching real in-order
transport of compound RTCP over one socket.

Both directions accept runtime fault overrides (capacity, loss, delay,
queue size, feedback outage) driven by :mod:`repro.faults`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional, Protocol

from repro.net.loss import LossModel, NoLoss
from repro.net.trace import BandwidthTrace
from repro.simulation.simulator import Simulator


class SizedPacket(Protocol):
    """Anything the path can carry: only the wire size matters here."""

    size_bytes: int

# Defaults for PathConfig: below this capacity the link is treated as
# in outage and polled until it recovers rather than computing absurd
# serialization delays.
_OUTAGE_CAPACITY_BPS = 1_000.0
_OUTAGE_POLL_INTERVAL = 0.02


@dataclass(slots=True)
class PathConfig:
    """Static configuration for one emulated path."""

    path_id: int
    trace: BandwidthTrace
    propagation_delay: float = 0.025
    loss_model: LossModel = field(default_factory=NoLoss)
    queue_capacity_bytes: int = 256_000
    jitter_max: float = 0.002
    # Loss process of the reverse (RTCP feedback) channel.  Feedback is
    # lossless by default; chaos scenarios override this to model an
    # uplink that corrupts or drops control traffic.
    feedback_loss_model: LossModel = field(default_factory=NoLoss)
    # Below this capacity the forward link counts as in outage and is
    # polled at ``outage_poll_interval`` until it recovers.
    outage_capacity_bps: float = _OUTAGE_CAPACITY_BPS
    outage_poll_interval: float = _OUTAGE_POLL_INTERVAL
    name: str = ""

    def __post_init__(self) -> None:
        if self.propagation_delay < 0:
            raise ValueError("propagation delay must be non-negative")
        if self.queue_capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        if self.outage_capacity_bps < 0:
            raise ValueError("outage capacity must be non-negative")
        if self.outage_poll_interval <= 0:
            raise ValueError("outage poll interval must be positive")
        if not self.name:
            self.name = f"path-{self.path_id}"


@dataclass(slots=True)
class PathStats:
    """Counters the emulator keeps per path."""

    sent_packets: int = 0
    sent_bytes: int = 0
    delivered_packets: int = 0
    delivered_bytes: int = 0
    random_losses: int = 0
    queue_drops: int = 0
    feedback_sent: int = 0
    feedback_delivered: int = 0
    feedback_dropped: int = 0

    @property
    def loss_rate(self) -> float:
        if self.sent_packets == 0:
            return 0.0
        return (self.random_losses + self.queue_drops) / self.sent_packets


class Path:
    """One emulated path between sender and receiver.

    Forward direction carries media; the reverse direction carries
    RTCP.  Fault overrides (set by :class:`repro.faults.FaultInjector`)
    layer on top of the static configuration and are all reversible.
    """

    __slots__ = (
        "sim",
        "config",
        "path_id",
        "stats",
        "on_deliver",
        "on_feedback_deliver",
        "_rng",
        "_jitter_rng",
        "_feedback_rng",
        "_queue",
        "_queued_bytes",
        "_serving",
        "_feedback_horizon",
        "_capacity_cap",
        "_loss_override",
        "_extra_delay",
        "_queue_capacity_override",
        "_feedback_outage",
        "_feedback_loss_override",
    )

    def __init__(self, sim: Simulator, config: PathConfig) -> None:
        self.sim = sim
        self.config = config
        self.path_id = config.path_id
        self.stats = PathStats()
        self.on_deliver: Optional[Callable[[SizedPacket], None]] = None
        self.on_feedback_deliver: Optional[Callable[[object], None]] = None
        self._rng = sim.streams.stream(f"path-loss-{config.path_id}-{config.name}")
        self._jitter_rng = sim.streams.stream(
            f"path-jitter-{config.path_id}-{config.name}"
        )
        # Feedback loss draws come from their own stream so enabling a
        # reverse-channel fault does not perturb forward-loss draws.
        self._feedback_rng = sim.streams.stream(
            f"path-feedback-{config.path_id}-{config.name}"
        )
        self._queue: Deque[SizedPacket] = deque()
        self._queued_bytes = 0
        self._serving = False
        # FIFO horizon of the reverse channel: feedback never delivers
        # before a message scheduled earlier (monotone delivery times).
        self._feedback_horizon = 0.0
        # -- runtime fault overrides (None / neutral when healthy) ----
        self._capacity_cap: Optional[float] = None
        self._loss_override: Optional[LossModel] = None
        self._extra_delay = 0.0
        self._queue_capacity_override: Optional[int] = None
        self._feedback_outage = False
        self._feedback_loss_override: Optional[LossModel] = None

    # -- fault hooks ---------------------------------------------------

    def set_capacity_cap(self, bps: Optional[float]) -> None:
        """Clamp forward capacity to ``bps`` (0 = blackout); None clears."""
        if bps is not None and bps < 0:
            raise ValueError("capacity cap must be non-negative")
        self._capacity_cap = bps

    def set_loss_override(self, model: Optional[LossModel]) -> None:
        """Replace the forward loss process for the fault window."""
        self._loss_override = model

    def set_extra_delay(self, seconds: float) -> None:
        """Add one-way delay to both directions (delay spike)."""
        if seconds < 0:
            raise ValueError("extra delay must be non-negative")
        self._extra_delay = seconds

    def set_queue_capacity_override(self, capacity_bytes: Optional[int]) -> None:
        """Shrink (or restore) the bottleneck queue (queue flap)."""
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("queue capacity override must be positive")
        self._queue_capacity_override = capacity_bytes

    def set_feedback_outage(self, active: bool) -> None:
        """Black out the reverse (RTCP) channel entirely."""
        self._feedback_outage = active

    def set_feedback_loss(self, model: Optional[LossModel]) -> None:
        """Replace the reverse-channel loss process for the fault window."""
        self._feedback_loss_override = model

    # -- data direction ------------------------------------------------

    def send(self, packet: SizedPacket) -> bool:
        """Offer ``packet`` (must expose ``size_bytes``) to the path.

        Returns ``True`` if the packet entered the link (it may still be
        randomly lost in flight), ``False`` on queue overflow.
        """
        size = packet.size_bytes
        stats = self.stats
        stats.sent_packets += 1
        stats.sent_bytes += size
        if self._queued_bytes + size > self.effective_queue_capacity:
            stats.queue_drops += 1
            return False
        self._queue.append(packet)
        self._queued_bytes += size
        if not self._serving:
            self._serving = True
            self.sim.schedule(0.0, self._serve_next)
        return True

    def _serve_next(self) -> None:
        if not self._queue:
            self._serving = False
            return
        sim = self.sim
        config = self.config
        capacity = config.trace.capacity_at(sim.now)
        if self._capacity_cap is not None:
            capacity = min(capacity, self._capacity_cap)
        if capacity < config.outage_capacity_bps:
            sim.schedule(config.outage_poll_interval, self._serve_next)
            return
        packet = self._queue.popleft()
        size = packet.size_bytes
        self._queued_bytes -= size
        sim.schedule(size * 8 / capacity, self._transmitted, packet)

    def _transmitted(self, packet: SizedPacket) -> None:
        # Schedule the next packet's service as soon as this one leaves
        # the transmitter, then propagate this one.
        self._serve_next()
        config = self.config
        loss_model = self._loss_override or config.loss_model
        sim = self.sim
        if loss_model.should_drop(self._rng, sim.now):
            self.stats.random_losses += 1
            return
        jitter = self._jitter_rng.uniform(0.0, config.jitter_max)
        delay = config.propagation_delay + self._extra_delay + jitter
        sim.schedule(delay, self._deliver, packet)

    def _deliver(self, packet: SizedPacket) -> None:
        stats = self.stats
        stats.delivered_packets += 1
        stats.delivered_bytes += packet.size_bytes
        if self.on_deliver is not None:
            self.on_deliver(packet)

    # -- feedback direction ---------------------------------------------

    def send_feedback(self, message: object) -> None:
        """Carry an RTCP message back to the sender after one-way delay.

        Subject to the reverse-channel loss model and outage faults;
        surviving messages deliver in FIFO order (a message never
        overtakes one sent before it).
        """
        self.stats.feedback_sent += 1
        if self._feedback_outage:
            self.stats.feedback_dropped += 1
            return
        loss_model = (
            self._feedback_loss_override or self.config.feedback_loss_model
        )
        if loss_model.should_drop(self._feedback_rng, self.sim.now):
            self.stats.feedback_dropped += 1
            return
        delay = (
            self.config.propagation_delay
            + self._extra_delay
            + self._jitter_rng.uniform(0.0, self.config.jitter_max)
        )
        deliver_at = max(self.sim.now + delay, self._feedback_horizon)
        self._feedback_horizon = deliver_at
        self.sim.schedule_at(deliver_at, self._deliver_feedback, message)

    def _deliver_feedback(self, message: object) -> None:
        self.stats.feedback_delivered += 1
        if self.on_feedback_deliver is not None:
            self.on_feedback_deliver(message)

    # -- introspection ---------------------------------------------------

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    @property
    def effective_queue_capacity(self) -> int:
        if self._queue_capacity_override is not None:
            return self._queue_capacity_override
        return self.config.queue_capacity_bytes

    def capacity_now(self) -> float:
        """Current link capacity in bits per second (fault-adjusted)."""
        capacity = self.config.trace.capacity_at(self.sim.now)
        if self._capacity_cap is not None:
            capacity = min(capacity, self._capacity_cap)
        return capacity

    @property
    def base_rtt(self) -> float:
        """Propagation-only round-trip time (no queueing)."""
        return 2 * self.config.propagation_delay
