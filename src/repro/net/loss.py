"""Stochastic packet-loss models for emulated paths."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable, Tuple


class LossModel(ABC):
    """Decides, per packet, whether the path drops it."""

    @abstractmethod
    def should_drop(self, rng: random.Random, now: float = 0.0) -> bool:
        """Return ``True`` if the packet sent at ``now`` is lost."""

    @abstractmethod
    def long_run_rate(self) -> float:
        """Return the stationary loss probability of the model."""


class NoLoss(LossModel):
    """A lossless path (queue overflow can still drop packets)."""

    def should_drop(self, rng: random.Random, now: float = 0.0) -> bool:
        return False

    def long_run_rate(self) -> float:
        return 0.0


class BernoulliLoss(LossModel):
    """Independent per-packet loss with fixed probability."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1]: {rate}")
        self.rate = rate

    def should_drop(self, rng: random.Random, now: float = 0.0) -> bool:
        return self.rate > 0 and rng.random() < self.rate

    def long_run_rate(self) -> float:
        return self.rate


class ScheduledLoss(LossModel):
    """Bernoulli loss whose rate follows a time schedule.

    Models radio events tied to mobility: a coverage fade is not just
    a capacity collapse, it comes with a period of elevated loss.
    ``schedule`` is a list of ``(start_time, rate)`` steps.
    """

    def __init__(self, schedule: Iterable[Tuple[float, float]]) -> None:
        steps = sorted(schedule)
        if not steps:
            raise ValueError("schedule must not be empty")
        for _, rate in steps:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"loss rate must be in [0, 1]: {rate}")
        self._times = [t for t, _ in steps]
        self._rates = [r for _, r in steps]

    def rate_at(self, now: float) -> float:
        import bisect

        index = bisect.bisect_right(self._times, now) - 1
        return self._rates[max(index, 0)]

    def should_drop(self, rng: random.Random, now: float = 0.0) -> bool:
        rate = self.rate_at(now)
        return rate > 0 and rng.random() < rate

    def long_run_rate(self) -> float:
        return sum(self._rates) / len(self._rates)


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss model.

    The chain alternates between a GOOD state (loss ``good_loss``) and a
    BAD state (loss ``bad_loss``).  Cellular links under mobility show
    exactly this bursty behaviour, which stresses FEC block recovery far
    more than independent loss at the same average rate.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.005,
        p_bad_to_good: float = 0.1,
        good_loss: float = 0.0,
        bad_loss: float = 0.3,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self._in_bad = False

    def should_drop(self, rng: random.Random, now: float = 0.0) -> bool:
        if self._in_bad:
            if rng.random() < self.p_bad_to_good:
                self._in_bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._in_bad = True
        loss = self.bad_loss if self._in_bad else self.good_loss
        return loss > 0 and rng.random() < loss

    def long_run_rate(self) -> float:
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.good_loss if not self._in_bad else self.bad_loss
        pi_bad = self.p_good_to_bad / denom
        return pi_bad * self.bad_loss + (1 - pi_bad) * self.good_loss
