"""Time-varying bandwidth traces.

A :class:`BandwidthTrace` is a step function from simulation time to
link capacity in bits per second.  Traces either come from the synthetic
scenario generators in :mod:`repro.traces` (stationary / walking /
driving, per Appendix D of the paper) or are built inline for the
controlled experiments (e.g. the capacity drop in Figure 11).
"""

from __future__ import annotations

import bisect
from bisect import bisect_right
from typing import Iterable, List, Sequence, Tuple


class BandwidthTrace:
    """Piecewise-constant capacity over time.

    Samples are ``(time_seconds, bits_per_second)`` pairs sorted by
    time.  Capacity before the first sample equals the first sample's
    value; after the last sample the trace either holds the final value
    or wraps around (loops), matching how trace-driven emulators replay
    drive logs for calls longer than the log.
    """

    def __init__(
        self,
        samples: Iterable[Tuple[float, float]],
        loop: bool = False,
    ) -> None:
        pairs: List[Tuple[float, float]] = sorted(samples)
        if not pairs:
            raise ValueError("trace requires at least one sample")
        for _, bps in pairs:
            if bps < 0:
                raise ValueError("capacity must be non-negative")
        self._times = [t for t, _ in pairs]
        self._values = [v for _, v in pairs]
        if self._times[0] != 0.0:
            # Anchor the trace at t=0 so lookups before the first sample
            # are well defined.
            self._times.insert(0, 0.0)
            self._values.insert(0, self._values[0])
        self.loop = loop
        self.duration = self._times[-1]

    @classmethod
    def constant(cls, bps: float) -> "BandwidthTrace":
        """A trace with fixed capacity ``bps``."""
        return cls([(0.0, bps)])

    def capacity_at(self, time: float) -> float:
        """Return the capacity in bits/second at simulation ``time``."""
        if time < 0:
            raise ValueError("time must be non-negative")
        if self.loop and self.duration > 0:
            time = time % self.duration
        index = bisect_right(self._times, time) - 1
        return self._values[index if index > 0 else 0]

    def sample_steps(self, dt: float, steps: int) -> List[float]:
        """Capacities at ``i * dt`` for ``i in range(steps)``.

        Equivalent to calling :meth:`capacity_at` once per step but in
        ``O(steps + segments)``: the query times are monotone within a
        loop iteration, so one index walks the segment list instead of
        bisecting per query.  Used by the flow-level backend to take
        trace lookups out of its per-frame hot loop.
        """
        times = self._times
        values = self._values
        last = len(times) - 1
        wrap = self.loop and self.duration > 0
        duration = self.duration
        out: List[float] = []
        index = 0
        for i in range(steps):
            time = i * dt
            if wrap:
                time = time % duration
                if time < times[index]:
                    index = 0
            # Largest segment whose start is <= time (bisect_right - 1).
            while index < last and times[index + 1] <= time:
                index += 1
            out.append(values[index])
        return out

    def mean_capacity(self, start: float = 0.0, end: float | None = None) -> float:
        """Time-weighted mean capacity over ``[start, end]``."""
        if end is None:
            end = self.duration if self.duration > 0 else start + 1.0
        if end <= start:
            raise ValueError("end must be greater than start")
        total = 0.0
        t = start
        while t < end:
            index = bisect.bisect_right(self._times, t) - 1
            next_change = (
                self._times[index + 1]
                if index + 1 < len(self._times)
                else float("inf")
            )
            span_end = min(end, next_change)
            total += self.capacity_at(t) * (span_end - t)
            if span_end == t:  # guard against zero-width steps
                span_end = end
            t = span_end
        return total / (end - start)

    def samples(self) -> Sequence[Tuple[float, float]]:
        """Return the underlying ``(time, bps)`` samples."""
        return list(zip(self._times, self._values))

    def scaled(self, factor: float) -> "BandwidthTrace":
        """Return a copy with every capacity multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return BandwidthTrace(
            [(t, v * factor) for t, v in zip(self._times, self._values)],
            loop=self.loop,
        )
