"""Network emulation substrate.

Models the time-varying cellular/WiFi paths the paper evaluates on:
a drop-tail bottleneck queue served at a trace-driven capacity, a fixed
propagation delay, and a stochastic loss process (Bernoulli or
Gilbert-Elliott).  Paths are unidirectional; a :class:`Path` pair plus a
:class:`PathSet` gives the sender its multipath view.
"""

from repro.net.trace import BandwidthTrace
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from repro.net.path import Path, PathConfig
from repro.net.multipath import PathSet

__all__ = [
    "BandwidthTrace",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "LossModel",
    "NoLoss",
    "Path",
    "PathConfig",
    "PathSet",
]
