"""Grouping of emulated paths into the sender's multipath view."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.net.path import Path, PathConfig
from repro.simulation.simulator import Simulator


class PathSet:
    """The set of paths available to one conference direction.

    Experiments construct the paths (one per network: WiFi, T-Mobile,
    Verizon...) and hand the set to the sender; the receiver registers
    delivery callbacks per path.
    """

    def __init__(self, sim: Simulator, configs: Iterable[PathConfig]) -> None:
        self.sim = sim
        self._paths: Dict[int, Path] = {}
        for config in configs:
            if config.path_id in self._paths:
                raise ValueError(f"duplicate path id {config.path_id}")
            self._paths[config.path_id] = Path(sim, config)
        if not self._paths:
            raise ValueError("a path set needs at least one path")

    def add_path(self, config: PathConfig) -> Path:
        """Bring a new path up mid-call (WiFi join, LTE attach).

        The caller wires delivery callbacks and registers the path with
        the sender-side state; the set only guards id uniqueness.
        """
        if config.path_id in self._paths:
            raise ValueError(f"duplicate path id {config.path_id}")
        path = Path(self.sim, config)
        self._paths[config.path_id] = path
        return path

    def remove_path(self, path_id: int) -> Path:
        """Tear a path down mid-call and return the detached object.

        The last path cannot be removed: a call with zero paths is a
        dead call, and every consumer (RTCP routing, rate aggregation)
        assumes at least one path exists.
        """
        if path_id not in self._paths:
            raise KeyError(f"unknown path id {path_id}")
        if len(self._paths) == 1:
            raise ValueError("cannot remove the last path of a call")
        return self._paths.pop(path_id)

    def __iter__(self) -> Iterator[Path]:
        return iter(self._paths.values())

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, path_id: int) -> bool:
        return path_id in self._paths

    def get(self, path_id: int) -> Path:
        return self._paths[path_id]

    @property
    def path_ids(self) -> List[int]:
        return list(self._paths.keys())

    def total_capacity_now(self) -> float:
        """Aggregate instantaneous capacity across all paths (bps)."""
        return sum(path.capacity_now() for path in self._paths.values())
