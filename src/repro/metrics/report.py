"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.metrics.qoe import QoeSummary


def normalize_qoe(
    summary: QoeSummary,
    max_rate_per_stream: float = 10_000_000.0,
    target_fps: float = 24.0,
    worst_qp: float = 60.0,
) -> Dict[str, float]:
    """The paper's normalized QoE metrics (see §6)."""
    return summary.normalized(max_rate_per_stream, target_fps, worst_qp)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned plain-text table."""
    text_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
