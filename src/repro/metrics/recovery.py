"""Recovery-time accounting: how fast the call heals after each fault.

Steady-state QoE averages hide the pathology this repo's robustness
work targets: a control loop that survives a fault but takes ten
seconds to re-admit a path has failed the user even if the per-call
mean looks fine.  This module turns the raw events the collector holds
(fault windows, path lifecycle transitions, per-path rate series,
rendered frames) into per-fault recovery latencies that benchmarks can
regress on:

- ``reenable_time``: fault clear -> the sender re-admits the path
  (first ``enabled`` path event after the fault window).
- ``rate_recovery_time``: fault clear -> the path's GCC target rate is
  back to ``rate_fraction`` of its pre-fault baseline.
- ``qoe_recovery_time``: fault clear -> rendered frame rate is back to
  ``fps_fraction`` of its pre-fault baseline.

All three are ``None`` when recovery never happened inside the call
(itself a signal: the regression gate treats ``None`` as failure), and
0.0 when the metric never degraded in the first place.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.collector import FaultRecord, MetricsCollector

# How much pre-fault history anchors the baseline.
_BASELINE_WINDOW = 5.0
# Sliding-window step when scanning for QoE recovery.
_SCAN_STEP = 0.1


@dataclass
class FaultRecovery:
    """Recovery latencies (seconds after fault clear) for one fault."""

    fault: FaultRecord
    reenable_time: Optional[float]
    rate_recovery_time: Optional[float]
    qoe_recovery_time: Optional[float]

    @property
    def recovered(self) -> bool:
        """Whether every tracked dimension recovered within the call."""
        return all(
            value is not None
            for value in (
                self.reenable_time,
                self.rate_recovery_time,
                self.qoe_recovery_time,
            )
        )

    @property
    def worst_time(self) -> Optional[float]:
        """The slowest recovery dimension, or ``None`` if any wedged."""
        if not self.recovered:
            return None
        return max(
            self.reenable_time, self.rate_recovery_time, self.qoe_recovery_time
        )


def compute_recovery(
    metrics: MetricsCollector,
    duration: float,
    frame_rate: float = 30.0,
    rate_fraction: float = 0.7,
    fps_fraction: float = 0.7,
) -> List[FaultRecovery]:
    """Per-fault recovery latencies for one finished call."""
    render_times = sorted(f.render_time for f in metrics.rendered)
    reports: List[FaultRecovery] = []
    for fault in metrics.fault_events:
        reports.append(
            FaultRecovery(
                fault=fault,
                reenable_time=_reenable_time(metrics, fault, duration),
                rate_recovery_time=_rate_recovery_time(
                    metrics, fault, duration, rate_fraction
                ),
                qoe_recovery_time=_qoe_recovery_time(
                    render_times, fault, duration, frame_rate, fps_fraction
                ),
            )
        )
    return reports


def _reenable_time(
    metrics: MetricsCollector, fault: FaultRecord, duration: float
) -> Optional[float]:
    """Fault clear -> path re-admitted; 0.0 if it was never demoted."""
    demoted = False
    for time, path_id, event in metrics.path_events:
        if path_id != fault.path_id or time < fault.start:
            continue
        if event in ("disabled", "degraded"):
            demoted = True
        elif demoted and event in ("enabled", "restored") and time >= fault.end:
            return time - fault.end
    if not demoted:
        return 0.0
    return None


def _rate_recovery_time(
    metrics: MetricsCollector,
    fault: FaultRecord,
    duration: float,
    rate_fraction: float,
) -> Optional[float]:
    series = metrics.path_rate_series.get(fault.path_id)
    if series is None or not len(series):
        return None
    baseline_window = series.window(
        max(fault.start - _BASELINE_WINDOW, 0.0), fault.start
    )
    if not baseline_window:
        return None
    baseline = sum(baseline_window) / len(baseline_window)
    target = rate_fraction * baseline
    start = bisect_left(series.times, fault.end)
    degraded = False
    for time, value in zip(series.times[start:], series.values[start:]):
        if value >= target:
            # Count a recovery only if the rate had actually dipped
            # after the fault hit; an untouched rate recovers in 0.
            if not degraded:
                dipped = any(
                    v < target
                    for v in series.window(fault.start, fault.end + 1e-9)
                )
                return (time - fault.end) if dipped else 0.0
            return time - fault.end
        degraded = True
    return None


# ---------------------------------------------------------------------------
# Path churn accounting


@dataclass
class ChurnRecovery:
    """Render-continuity accounting for one path membership change.

    ``render_gap`` is the longest interval without a rendered frame in
    the window starting at the event (bounded by ``window``); for a
    BIRTH it measures disruption from re-normalizing the split, for a
    DEATH it is the migration latency — how long media stalled while
    the call re-routed onto the survivors.  ``time_to_next_render``
    is event -> first frame rendered afterwards (``None`` if the call
    never rendered again: the session did not survive this event).
    """

    time: float
    path_id: int
    action: str
    time_to_next_render: Optional[float]
    render_gap: float

    @property
    def survived(self) -> bool:
        return self.time_to_next_render is not None


@dataclass
class ChurnReport:
    """Aggregate churn survival for one call."""

    events: List[ChurnRecovery]

    @property
    def session_survived(self) -> bool:
        """Frames kept rendering after every membership change."""
        return all(e.survived for e in self.events)

    @property
    def max_render_gap(self) -> float:
        return max((e.render_gap for e in self.events), default=0.0)

    @property
    def worst_migration_latency(self) -> Optional[float]:
        """Slowest event -> next-render latency, None if any wedged."""
        latencies = [e.time_to_next_render for e in self.events]
        if any(value is None for value in latencies):
            return None
        return max((v for v in latencies if v is not None), default=0.0)


def compute_churn_recovery(
    metrics: MetricsCollector,
    duration: float,
    window: float = 5.0,
) -> ChurnReport:
    """Per-churn-event render continuity for one finished call.

    Only the driver-level transitions (``birth``, ``death``, ``drain``)
    are scored; the bookkeeping ``removed`` instant that follows every
    teardown is skipped so a graceful drain is not double-counted.
    """
    render_times = sorted(f.render_time for f in metrics.rendered)
    events: List[ChurnRecovery] = []
    for time, path_id, action in metrics.churn_events:
        if action == "removed":
            continue
        horizon = min(time + window, duration)
        events.append(
            ChurnRecovery(
                time=time,
                path_id=path_id,
                action=action,
                time_to_next_render=_next_render_after(render_times, time),
                render_gap=_longest_render_gap(render_times, time, horizon),
            )
        )
    return ChurnReport(events=events)


def _next_render_after(
    render_times: List[float], time: float
) -> Optional[float]:
    index = bisect_left(render_times, time)
    if index >= len(render_times):
        return None
    return render_times[index] - time


def _longest_render_gap(
    render_times: List[float], start: float, end: float
) -> float:
    """Longest frame-less interval inside [start, end]."""
    if end <= start:
        return 0.0
    lo = bisect_left(render_times, start)
    hi = bisect_left(render_times, end)
    previous = start
    longest = 0.0
    for time in render_times[lo:hi]:
        longest = max(longest, time - previous)
        previous = time
    return max(longest, end - previous)


def _qoe_recovery_time(
    render_times: List[float],
    fault: FaultRecord,
    duration: float,
    frame_rate: float,
    fps_fraction: float,
) -> Optional[float]:
    if not render_times:
        return None

    def fps_in(start: float, end: float) -> float:
        if end <= start:
            return 0.0
        lo = bisect_left(render_times, start)
        hi = bisect_left(render_times, end)
        return (hi - lo) / (end - start)

    baseline = fps_in(max(fault.start - _BASELINE_WINDOW, 0.0), fault.start)
    if baseline <= 0:
        baseline = frame_rate
    target = fps_fraction * baseline
    # Scan trailing 1 s windows after the fault clears.
    t = fault.end
    while t + 1.0 <= duration + 1e-9:
        if fps_in(t, t + 1.0) >= target:
            return t - fault.end
        t += _SCAN_STEP
    return None
