"""Event collection for QoE analysis."""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    def __init__(self) -> None:
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be appended in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window(self, start: float, end: float) -> List[float]:
        """Values with timestamps in ``[start, end)``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return self.values[lo:hi]

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)


@dataclass
class RenderedFrame:
    """One frame that reached the screen."""

    ssrc: int
    frame_id: int
    capture_time: float
    render_time: float
    size_bytes: int
    is_keyframe: bool
    fec_recovered: bool
    qp: float = float("nan")

    @property
    def e2e_latency(self) -> float:
        return self.render_time - self.capture_time


@dataclass
class EncodedFrameRecord:
    ssrc: int
    frame_id: int
    capture_time: float
    size_bytes: int
    qp: float
    is_keyframe: bool


@dataclass
class FaultRecord:
    """One fault window injected into the call."""

    kind: str
    path_id: int
    start: float
    end: float


@dataclass
class PathSendRecord:
    media_packets: int = 0
    media_bytes: int = 0
    fec_packets: int = 0
    fec_bytes: int = 0
    rtx_packets: int = 0
    rtx_bytes: int = 0


class MetricsCollector:
    """Receives raw events from the pipeline; queried by the summary layer."""

    def __init__(self) -> None:
        self.rendered: List[RenderedFrame] = []
        self.encoded: Dict[Tuple[int, int], EncodedFrameRecord] = {}
        self.frame_drops: List[Tuple[float, int, int, str]] = []
        self.frame_drop_count = 0
        self.keyframe_requests: List[Tuple[float, int]] = []
        self.feedback_events: List[Tuple[float, int, int, float]] = []
        self.path_sends: Dict[int, PathSendRecord] = {}
        self.received_media_bytes = 0
        self.fec_received = 0
        self.fec_recoveries = 0
        self.receive_rate_series = TimeSeries()
        self.target_rate_series = TimeSeries()
        self.ifd_series = TimeSeries()
        self.fcd_series = TimeSeries()
        self.path_rate_series: Dict[int, TimeSeries] = {}
        self._received_bytes_window: Deque[Tuple[float, int]] = deque()
        # Running byte total of the window (exact: sizes are ints).
        self._received_window_bytes = 0
        # Fault windows injected by repro.faults and the sender-side
        # path lifecycle transitions (degraded/disabled/enabled/...),
        # the raw material for recovery-time accounting.
        self.fault_events: List[FaultRecord] = []
        self.path_events: List[Tuple[float, int, str]] = []
        # Path membership changes applied by the churn driver: birth,
        # drain (graceful teardown started), death (abrupt teardown),
        # removed (state fully torn down).
        self.churn_events: List[Tuple[float, int, str]] = []

    # -- sender events -----------------------------------------------------

    def record_encoded_frame(
        self,
        ssrc: int,
        frame_id: int,
        capture_time: float,
        size_bytes: int,
        qp: float,
        is_keyframe: bool,
    ) -> None:
        self.encoded[(ssrc, frame_id)] = EncodedFrameRecord(
            ssrc, frame_id, capture_time, size_bytes, qp, is_keyframe
        )

    def record_packet_sent(
        self, path_id: int, kind: str, size_bytes: int
    ) -> None:
        record = self.path_sends.get(path_id)
        if record is None:
            record = self.path_sends[path_id] = PathSendRecord()
        if kind == "fec":
            record.fec_packets += 1
            record.fec_bytes += size_bytes
        elif kind == "rtx":
            record.rtx_packets += 1
            record.rtx_bytes += size_bytes
        else:
            record.media_packets += 1
            record.media_bytes += size_bytes

    def record_target_rate(self, time: float, rate_bps: float) -> None:
        self.target_rate_series.append(time, rate_bps)

    def record_path_rate(self, time: float, path_id: int, rate: float) -> None:
        series = self.path_rate_series.setdefault(path_id, TimeSeries())
        series.append(time, rate)

    # -- receiver events -----------------------------------------------------

    def record_render(self, frame: RenderedFrame) -> None:
        encoded = self.encoded.get((frame.ssrc, frame.frame_id))
        if encoded is not None:
            frame.qp = encoded.qp
        self.rendered.append(frame)

    def record_media_received(self, time: float, size_bytes: int) -> None:
        self.received_media_bytes += size_bytes
        self._received_bytes_window.append((time, size_bytes))
        self._received_window_bytes += size_bytes

    def record_receive_rate_sample(self, time: float, window: float = 1.0) -> None:
        """Sample the received media rate over the trailing window."""
        cutoff = time - window
        pending = self._received_bytes_window
        while pending and pending[0][0] < cutoff:
            self._received_window_bytes -= pending.popleft()[1]
        self.receive_rate_series.append(
            time, self._received_window_bytes * 8 / window
        )

    def record_frame_drop(
        self, time: float, ssrc: int, frame_id: int, reason: str
    ) -> None:
        self.frame_drops.append((time, ssrc, frame_id, reason))
        self.frame_drop_count += 1

    def add_frame_drops(self, count: int) -> None:
        """Bulk-add drops tallied by a buffer's own statistics."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.frame_drop_count += count

    def record_keyframe_request(self, time: float, ssrc: int) -> None:
        self.keyframe_requests.append((time, ssrc))

    def record_feedback(
        self, time: float, path_id: int, alpha: int, fcd: float
    ) -> None:
        self.feedback_events.append((time, path_id, alpha, fcd))

    def record_ifd(self, time: float, ifd: float) -> None:
        self.ifd_series.append(time, ifd)

    def record_fcd(self, time: float, fcd: float) -> None:
        self.fcd_series.append(time, fcd)

    def record_fault(
        self, kind: str, path_id: int, start: float, end: float
    ) -> None:
        """Register one injected fault window (called at arm time)."""
        self.fault_events.append(FaultRecord(kind, path_id, start, end))

    def record_path_event(self, time: float, path_id: int, event: str) -> None:
        """Log a sender-side path lifecycle transition.

        Events: ``degraded`` (feedback-silence watchdog froze the
        path's rate), ``restored`` (feedback returned to a degraded
        path), ``disabled`` / ``enabled`` (scheduler eligibility), and
        ``failsafe`` (total feedback starvation forced last-known-good
        single-path operation).
        """
        self.path_events.append((time, path_id, event))

    def record_churn_event(
        self, time: float, path_id: int, event: str
    ) -> None:
        """Log a path membership change (birth/drain/death/removed)."""
        self.churn_events.append((time, path_id, event))

    def record_fec_stats(self, fec_received: int, recoveries: int) -> None:
        self.fec_received = fec_received
        self.fec_recoveries = recoveries

    def add_fec_stats(self, fec_received: int, recoveries: int) -> None:
        self.fec_received += fec_received
        self.fec_recoveries += recoveries

    # -- derived ---------------------------------------------------------------

    @property
    def total_media_bytes_sent(self) -> int:
        return sum(r.media_bytes for r in self.path_sends.values())

    @property
    def total_fec_bytes_sent(self) -> int:
        return sum(r.fec_bytes for r in self.path_sends.values())

    @property
    def total_media_packets_sent(self) -> int:
        return sum(r.media_packets for r in self.path_sends.values())

    @property
    def total_fec_packets_sent(self) -> int:
        return sum(r.fec_packets for r in self.path_sends.values())

    def rendered_for_stream(self, ssrc: int) -> List[RenderedFrame]:
        return [f for f in self.rendered if f.ssrc == ssrc]

    def fps_series(
        self, duration: float, bucket: float = 1.0, ssrc: Optional[int] = None
    ) -> TimeSeries:
        """Frames rendered per second, bucketed over the call."""
        series = TimeSeries()
        frames = (
            self.rendered
            if ssrc is None
            else [f for f in self.rendered if f.ssrc == ssrc]
        )
        times = sorted(f.render_time for f in frames)
        t = 0.0
        index = 0
        while t < duration:
            count = 0
            while index < len(times) and times[index] < t + bucket:
                count += 1
                index += 1
            series.append(t + bucket, count / bucket)
            t += bucket
        return series
