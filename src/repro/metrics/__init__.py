"""QoE metrics collection and reporting.

The collector receives events from sender and receiver (frames
encoded, packets sent per path, frames rendered, drops, keyframe
requests, feedback) and the summary layer computes the paper's QoE
metrics: FPS, freeze duration, E2E latency, media throughput, QP,
PSNR, FEC overhead and utilization — plus the normalized forms used in
Figures 10/14/17.
"""

from repro.metrics.collector import MetricsCollector, TimeSeries
from repro.metrics.qoe import QoeSummary, summarize
from repro.metrics.report import format_table, normalize_qoe

__all__ = [
    "MetricsCollector",
    "QoeSummary",
    "TimeSeries",
    "format_table",
    "normalize_qoe",
    "summarize",
]
