"""QoE summary computation.

Turns the raw event log into the metrics the paper reports (§6):
average FPS, freeze duration, E2E latency, media throughput, QP, PSNR,
FEC overhead and utilization, frame drops and keyframe requests.

Freeze definition: a gap between consecutive rendered frames larger
than ``freeze_threshold`` counts as a freeze; its duration is the gap
minus the nominal frame interval (the part of the gap the user
perceives as stalled video).  PSNR per rendered interval comes from
the encoder's RD model via the frame's QP; freezes repeat the last
frame, which contributes a fixed repeated-frame PSNR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.metrics.collector import MetricsCollector, RenderedFrame
from repro.video.quality import RateDistortionModel

FREEZE_THRESHOLD = 0.2
REPEATED_FRAME_PSNR = 18.0  # PSNR of showing a stale frame vs live scene


@dataclass
class FreezeStats:
    count: int = 0
    total_duration: float = 0.0
    durations: List[float] = field(default_factory=list)

    @property
    def mean_duration(self) -> float:
        if not self.durations:
            return 0.0
        return self.total_duration / len(self.durations)


@dataclass
class QoeSummary:
    """All per-call QoE metrics in one record."""

    duration: float
    num_streams: int
    frames_rendered: int
    average_fps: float
    freeze: FreezeStats
    e2e_mean: float
    e2e_std: float
    e2e_p95: float
    e2e_samples: List[float]
    throughput_bps: float
    average_qp: float
    average_psnr: float
    psnr_samples: List[float]
    fec_overhead: float
    fec_utilization: float
    frame_drops: int
    keyframe_requests: int

    def normalized(
        self,
        max_rate_per_stream: float = 10_000_000.0,
        target_fps: float = 24.0,
        worst_qp: float = 60.0,
    ) -> Dict[str, float]:
        """Normalized QoE per §6: throughput/10 Mbps, FPS/24, QP/60."""
        return {
            "throughput": self.throughput_bps
            / (max_rate_per_stream * self.num_streams),
            "fps": self.average_fps / target_fps,
            "stall": self.freeze.total_duration / max(self.duration, 1e-9),
            "qp": self.average_qp / worst_qp,
        }


def _freeze_stats(
    render_times: Sequence[float],
    duration: float,
    nominal_interval: float,
    threshold: float,
) -> FreezeStats:
    stats = FreezeStats()
    if not render_times:
        stats.count = 1
        stats.total_duration = duration
        stats.durations.append(duration)
        return stats
    ordered = sorted(render_times)
    # Include the leading gap (call start to first frame) and trailing
    # gap (last frame to call end): both are perceived as frozen video.
    boundaries = [0.0] + list(ordered) + [duration]
    for previous, current in zip(boundaries, boundaries[1:]):
        gap = current - previous
        if gap > threshold:
            stats.count += 1
            frozen = gap - nominal_interval
            stats.total_duration += frozen
            stats.durations.append(frozen)
    return stats


def summarize(
    collector: MetricsCollector,
    duration: float,
    num_streams: int = 1,
    frame_rate: float = 30.0,
    rd_model: Optional[RateDistortionModel] = None,
    freeze_threshold: float = FREEZE_THRESHOLD,
) -> QoeSummary:
    """Compute the QoE summary for one finished call."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    rd = rd_model or RateDistortionModel(frame_rate=frame_rate)
    nominal_interval = 1.0 / frame_rate

    rendered: List[RenderedFrame] = collector.rendered
    e2e = [f.e2e_latency for f in rendered]
    qps = [f.qp for f in rendered if not math.isnan(f.qp)]

    # Freeze statistics are computed per stream then aggregated, since
    # each camera stream freezes independently.
    freeze = FreezeStats()
    ssrcs = sorted({f.ssrc for f in rendered})
    if not ssrcs:
        ssrcs = [0]
    for ssrc in ssrcs:
        times = [f.render_time for f in rendered if f.ssrc == ssrc]
        stream_freeze = _freeze_stats(
            times, duration, nominal_interval, freeze_threshold
        )
        freeze.count += stream_freeze.count
        freeze.total_duration += stream_freeze.total_duration
        freeze.durations.extend(stream_freeze.durations)

    psnr_samples: List[float] = []
    for frame in rendered:
        if math.isnan(frame.qp):
            continue
        psnr_samples.append(rd.psnr_for_qp(frame.qp))
    # Frozen intervals show a stale frame: add repeated-frame samples
    # at the nominal frame rate for the frozen time.
    frozen_frames = int(freeze.total_duration * frame_rate)
    psnr_samples.extend([REPEATED_FRAME_PSNR] * frozen_frames)

    e2e_mean = sum(e2e) / len(e2e) if e2e else 0.0
    e2e_std = (
        math.sqrt(sum((x - e2e_mean) ** 2 for x in e2e) / len(e2e))
        if e2e
        else 0.0
    )
    e2e_sorted = sorted(e2e)
    e2e_p95 = (
        e2e_sorted[min(int(0.95 * len(e2e_sorted)), len(e2e_sorted) - 1)]
        if e2e_sorted
        else 0.0
    )

    media_packets = collector.total_media_packets_sent
    fec_packets = collector.total_fec_packets_sent
    fec_overhead = fec_packets / media_packets if media_packets else 0.0
    fec_utilization = (
        collector.fec_recoveries / collector.fec_received
        if collector.fec_received
        else 0.0
    )

    return QoeSummary(
        duration=duration,
        num_streams=num_streams,
        frames_rendered=len(rendered),
        average_fps=len(rendered) / duration / max(len(ssrcs), 1),
        freeze=freeze,
        e2e_mean=e2e_mean,
        e2e_std=e2e_std,
        e2e_p95=e2e_p95,
        e2e_samples=e2e,
        throughput_bps=collector.received_media_bytes * 8 / duration,
        average_qp=sum(qps) / len(qps) if qps else rd.qp_max,
        average_psnr=(
            sum(psnr_samples) / len(psnr_samples) if psnr_samples else 0.0
        ),
        psnr_samples=psnr_samples,
        fec_overhead=fec_overhead,
        fec_utilization=fec_utilization,
        frame_drops=collector.frame_drop_count,
        keyframe_requests=len(collector.keyframe_requests),
    )
