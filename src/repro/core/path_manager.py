"""Sender-side per-path state: GCC, Eq. 2 budgets, disable/re-enable.

The path manager owns, per path:

- one uncoupled GCC instance fed by transport feedback and receiver
  reports,
- the multipath sequence counters (``mp_seq`` / ``mp_transport_seq``)
  bound into each packet's header extension,
- the Eq. 2 feedback adjustment ``alpha`` accumulated from QoE
  feedback, with slow decay so a penalized path can earn traffic back,
- the disable logic (budget reaches zero) and the Eq. 3 re-enable
  check ``(rtt_fast - rtt_i)/2 <= FCD`` driven by probe duplicates,
- the feedback-silence watchdog: the whole control loop rides on RTCP,
  so when a path's feedback goes silent the sender must not trust (or
  wedge on) stale state.  Silence past ``degrade_timeout`` freezes the
  path's rate at its last-known-good value and decays it
  multiplicatively while demoting the path from priority-packet
  eligibility; past ``silence_timeout`` the path is disabled and
  re-probed with exponential backoff (cap + jitter).  If silence would
  take down the *last* enabled path, the sender falls back to
  last-known-good single-path operation instead of wedging.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Dict, List, Optional, Tuple

from repro.cc.gcc import GccConfig, GoogleCongestionControl
from repro.core.config import WatchdogConfig
from repro.metrics.collector import MetricsCollector
from repro.net.multipath import PathSet
from repro.rtp.packets import RtpPacket
from repro.rtp.rtcp import QoeFeedback, ReceiverReport, TransportFeedback
from repro.rtp.sequence import SEQ_MOD
from repro.scheduling.base import PathSnapshot
from repro.simulation.process import PeriodicProcess
from repro.simulation.simulator import Simulator

# How far behind the newest acked transport seq a recorded send must be
# before we declare it lost (tolerates delivery jitter reordering).
_LOSS_REORDER_MARGIN = 3
_ADJUST_DECAY_INTERVAL = 1.0
_ADJUST_DECAY_FACTOR = 0.9
_ADJUST_LIMIT = 200
_BUDGET_HEADROOM = 1.25
# How strongly the Eq. 1 media split is discounted by per-path loss.
_LOSS_AVERSION = 4.0


@dataclass
class _PathState:
    gcc: GoogleCongestionControl
    next_mp_seq: int = 0
    next_transport_seq: int = 0
    sent: Dict[int, Tuple[float, int]] = field(default_factory=dict)
    highest_acked_tseq: int = -1
    adjust: float = 0.0
    zero_budget_rounds: int = 0
    # Fractional packet carry so a path whose Eq. 1 share is below one
    # packet per round still receives its long-run proportion (without
    # this, integer rounding starves the path and its GCC estimate can
    # never grow — the multipath bootstrap deadlock).
    share_carry: float = 0.0
    enabled: bool = True
    disabled_at: float = -1.0
    last_feedback_time: float = -1.0
    last_probe_time: float = -1.0
    # Exponential backoff for blind re-enables of a silent path.
    reenable_backoff: float = 10.0
    last_send_time: float = -1.0
    # Media sends only (padding probes excluded): paths that carry no
    # media are not capacity-probed, or an unused path's inflated
    # estimate would leak into the encoder budget.
    last_media_send_time: float = -1.0
    # -- feedback-silence watchdog state ------------------------------
    # Degraded: feedback silent past degrade_timeout; the rate below is
    # the last-known-good GCC target frozen at degrade time, decayed
    # multiplicatively while silence persists.
    degraded: bool = False
    frozen_rate: float = 0.0
    degraded_at: float = -1.0
    # Failsafe: this is the last enabled path and its feedback is
    # silent — the call runs on it at decayed last-known-good rate
    # rather than wedging with zero paths.
    failsafe: bool = False
    # Probe backoff (disabled paths): current interval and the jittered
    # wait actually applied before the next probe.
    probe_interval: float = 0.2
    probe_wait: float = 0.2
    # Graceful teardown: the path takes no new media (zero Eq. 1
    # weight, invisible to schedulers) but keeps processing feedback so
    # in-flight packets can still be acknowledged before removal.
    draining: bool = False


class PathManager:
    """Aggregates sender-side state across all paths of one call."""

    def __init__(
        self,
        sim: Simulator,
        paths: PathSet,
        gcc_config: GccConfig | None = None,
        watchdog: WatchdogConfig | None = None,
        metrics: MetricsCollector | None = None,
    ) -> None:
        self.sim = sim
        self.paths = paths
        self.watchdog = watchdog or WatchdogConfig()
        self.metrics = metrics
        self._gcc_config = gcc_config
        self._states: Dict[int, _PathState] = {
            pid: self._new_state(pid) for pid in paths.path_ids
        }
        self.last_fcd: float = 0.0
        self._decay_process = PeriodicProcess(
            sim, _ADJUST_DECAY_INTERVAL, self._decay_adjustments
        )
        # Jitter draws for the probe backoff come from a named stream
        # so adding the watchdog does not perturb other consumers.
        self._probe_rng = sim.streams.stream("path-manager-probe-jitter")
        # The most recent packet bound per path, used as probe material.
        self._last_bound: Optional[RtpPacket] = None

    def _new_state(self, path_id: int) -> _PathState:
        return _PathState(
            gcc=GoogleCongestionControl(path_id, self._gcc_config),
            reenable_backoff=self.watchdog.reenable_backoff_initial,
            probe_interval=self.watchdog.probe_interval_initial,
            probe_wait=self.watchdog.probe_interval_initial,
        )

    # -- path lifecycle ----------------------------------------------------

    def add_path(self, path_id: int) -> None:
        """Create fresh sender-side state for a path born mid-call.

        The new path starts enabled with a bootstrap GCC estimate;
        Eq. 1 re-normalizes on the next scheduling round, so survivors
        shed share to the newcomer only as its estimate earns it.
        """
        if path_id in self._states:
            raise ValueError(f"path {path_id} already managed")
        self._states[path_id] = self._new_state(path_id)

    def begin_drain(self, path_id: int) -> None:
        """Stop offering new media to ``path_id`` but keep feedback.

        The drain leg of graceful removal: schedulers no longer see the
        path (its Eq. 1 weight is zero and it is excluded from
        snapshots), while transport feedback for packets already on the
        wire keeps flowing so they are acked rather than presumed lost.
        """
        self._states[path_id].draining = True

    def remove_path(self, path_id: int) -> List[int]:
        """Drop all state for ``path_id``; returns in-flight seq numbers.

        The returned multipath transport sequence numbers identify
        packets sent on the dying path that were never acknowledged —
        the sender reroutes those to surviving paths as priority
        retransmissions.  Removing the state removes the path's Eq. 1
        weight, Eq. 2 adjustment and fractional carry, so budgets
        re-normalize across the survivors on the next round.
        """
        state = self._states.pop(path_id)
        return sorted(state.sent)

    def has_path(self, path_id: int) -> bool:
        return path_id in self._states

    def is_draining(self, path_id: int) -> bool:
        return self._states[path_id].draining

    def draining_path_ids(self) -> List[int]:
        return [pid for pid, s in self._states.items() if s.draining]

    def managed_path_ids(self) -> List[int]:
        return list(self._states)

    # -- packet binding ----------------------------------------------------

    def bind(self, packet: RtpPacket, path_id: int, now: float) -> RtpPacket:
        """Assign multipath header fields and record the send."""
        state = self._states[path_id]
        packet.path_id = path_id
        packet.mp_seq = state.next_mp_seq
        packet.mp_transport_seq = state.next_transport_seq
        packet.send_time = now
        state.next_mp_seq = (state.next_mp_seq + 1) % SEQ_MOD
        state.next_transport_seq += 1
        state.sent[packet.mp_transport_seq] = (now, packet.size_bytes)
        state.last_send_time = now
        if packet.ssrc != 0:
            state.last_media_send_time = now
        self._last_bound = packet
        return packet

    def make_probe(self, path_id: int, now: float) -> Optional[RtpPacket]:
        """Duplicate the most recent packet as a probe for ``path_id``.

        §4.2: probing a disabled path with duplicates lets GCC keep
        measuring its RTT/loss without risking media on it; the
        receiver's packet buffer discards the duplicate.
        """
        if self._last_bound is None:
            return None
        probe = dataclasses.replace(self._last_bound)
        return self.bind(probe, path_id, now)

    # -- feedback handling -----------------------------------------------------

    def on_transport_feedback(self, message: TransportFeedback) -> None:
        state = self._states.get(message.path_id)
        if state is None:
            return
        now = self.sim.now
        self._mark_feedback(state, message.path_id, now)
        acked: List[Tuple[float, float, int]] = []
        max_tseq = state.highest_acked_tseq
        sent_pop = state.sent.pop
        acked_append = acked.append
        for tseq, arrival in message.packets:
            record = sent_pop(tseq, None)
            if record is None:
                continue
            acked_append((record[0], arrival, record[1]))
            if tseq > max_tseq:
                max_tseq = tseq
        state.highest_acked_tseq = max_tseq
        lost = self._collect_losses(state, now)
        acked.sort(key=itemgetter(1))
        state.gcc.on_transport_feedback(acked, lost, now)

    def _collect_losses(self, state: _PathState, now: float) -> int:
        threshold = state.highest_acked_tseq - _LOSS_REORDER_MARGIN
        stale = [
            tseq
            for tseq, (send_time, _) in state.sent.items()
            if tseq < threshold and now - send_time > state.gcc.srtt
        ]
        for tseq in stale:
            del state.sent[tseq]
        return len(stale)

    def on_receiver_report(self, message: ReceiverReport) -> None:
        state = self._states.get(message.path_id)
        if state is None:
            return
        self._mark_feedback(state, message.path_id, self.sim.now)
        state.gcc.on_receiver_report(message.fraction_lost, self.sim.now)

    def _mark_feedback(
        self, state: _PathState, path_id: int, now: float
    ) -> None:
        """Feedback arrived: the path is alive again."""
        state.last_feedback_time = now
        state.probe_interval = self.watchdog.probe_interval_initial
        state.probe_wait = self.watchdog.probe_interval_initial
        state.failsafe = False
        if state.degraded:
            state.degraded = False
            state.frozen_rate = 0.0
            state.degraded_at = -1.0
            self._record_event(now, path_id, "restored")

    def on_qoe_feedback(self, message: QoeFeedback) -> None:
        """Apply Eq. 2: shift the path's packet budget by ``alpha``.

        Positive feedback only *restores* a previously penalized path
        (Eq. 2 caps the budget at ``P_max`` anyway); letting it push a
        path above its Eq. 1 share would grow exposure on a path whose
        only credential is having been early once.
        """
        state = self._states.get(message.path_id)
        if state is None:
            return
        if message.alpha >= 0:
            state.adjust = min(state.adjust + message.alpha, 0.0)
        else:
            state.adjust = max(state.adjust + message.alpha, -_ADJUST_LIMIT)
        self.last_fcd = message.fcd

    # -- feedback-silence watchdog ---------------------------------------------

    def _silence_age(self, state: _PathState, now: float) -> float:
        """Seconds of feedback silence while sends were outstanding.

        Returns 0 when the path is not silently failing (no sends
        newer than the last feedback, or no sends at all).
        """
        if state.last_send_time < 0:
            return 0.0
        if state.last_feedback_time < 0:
            # Never any feedback: silence measured from first send is
            # handled by the bootstrap-dead check, not the watchdog.
            return 0.0
        if state.last_send_time <= state.last_feedback_time:
            return 0.0
        return now - state.last_feedback_time

    def _update_watchdog(self, now: float) -> None:
        """Degrade enabled paths whose feedback has gone silent."""
        for path_id, state in self._states.items():
            if not state.enabled or state.degraded or state.draining:
                continue
            if self._silence_age(state, now) > self.watchdog.degrade_timeout:
                state.degraded = True
                state.frozen_rate = state.gcc.target_rate
                state.degraded_at = now
                self._record_event(now, path_id, "degraded")

    def _effective_rate(self, state: _PathState, now: float) -> float:
        """GCC target rate, frozen and decayed while feedback is silent."""
        if not state.degraded:
            return state.gcc.target_rate
        silent_for = max(now - state.degraded_at, 0.0)
        periods = silent_for / self.watchdog.rate_decay_interval
        decayed = state.frozen_rate * (
            self.watchdog.rate_decay_factor ** periods
        )
        return max(decayed, state.gcc.config.min_rate)

    def effective_rate(self, path_id: int) -> float:
        """The rate the rest of the sender should trust for ``path_id``."""
        return self._effective_rate(self._states[path_id], self.sim.now)

    def pacing_rate(self, path_id: int) -> float:
        """Alias of :meth:`effective_rate` for the pacer wiring."""
        return self.effective_rate(path_id)

    def is_degraded(self, path_id: int) -> bool:
        return self._states[path_id].degraded

    def feedback_starved(self) -> bool:
        """True when no enabled path has live (non-silent) feedback."""
        live = [
            s
            for s in self._states.values()
            if s.enabled and not s.draining
        ]
        return bool(live) and all(s.degraded for s in live)

    def _record_event(self, now: float, path_id: int, event: str) -> None:
        if self.metrics is not None:
            self.metrics.record_path_event(now, path_id, event)

    # -- budgets / snapshots ------------------------------------------------------

    def snapshots(
        self, num_media_packets: int, avg_packet_size: int, now: float
    ) -> List[PathSnapshot]:
        """Per-path scheduling snapshots for one round (one frame)."""
        self._update_watchdog(now)
        self._update_enablement(now)
        states = self._states
        # §4.3: "if there is a path with a higher loss rate, we reduce
        # the number of packets on that path" — the Eq. 1 weights are
        # loss-discounted so media migrates toward cleaner paths
        # instead of being FEC-protected harder on lossy ones.
        def weight(state: _PathState) -> float:
            penalty = max(1.0 - _LOSS_AVERSION * state.gcc.loss_estimate, 0.2)
            return self._effective_rate(state, now) * penalty

        total_rate = sum(
            weight(s)
            for s in states.values()
            if s.enabled and not s.draining
        )
        snapshots: List[PathSnapshot] = []
        for path_id, state in states.items():
            if state.draining:
                # A draining path is invisible to schedulers: no new
                # media rides it, only in-flight acks drain off.
                continue
            rate = self._effective_rate(state, now)
            interval = 1.0 / 30.0  # one scheduling round per frame tick
            max_packets = max(
                int(
                    math.ceil(
                        rate * interval * _BUDGET_HEADROOM
                        / (8 * max(avg_packet_size, 1))
                    )
                ),
                1,
            )
            if state.enabled and total_rate > 0:
                share = num_media_packets * weight(state) / total_rate
            else:
                share = 0.0
            with_carry = share + state.share_carry + state.adjust
            budget = int(with_carry)
            state.share_carry = min(max(with_carry - budget - state.adjust, 0.0), 1.0)
            budget = min(max(budget, 0), max_packets)
            # Eq. 2: a path whose feedback-adjusted budget stays at
            # zero while media is flowing gets disabled outright.
            if state.enabled and share > 0 and budget == 0:
                state.zero_budget_rounds += 1
            else:
                state.zero_budget_rounds = 0
            age = (
                now - state.last_feedback_time
                if state.last_feedback_time >= 0
                else now
            )
            snapshots.append(
                PathSnapshot(
                    path_id=path_id,
                    srtt=state.gcc.srtt,
                    loss=state.gcc.loss_estimate,
                    send_rate=rate,
                    goodput=state.gcc.goodput,
                    budget_packets=budget,
                    max_packets=max_packets,
                    enabled=state.enabled,
                    last_feedback_age=age,
                    degraded=state.degraded,
                )
            )
        return snapshots

    def _update_enablement(self, now: float) -> None:
        wd = self.watchdog
        fast_srtt = min(
            (
                s.gcc.srtt
                for s in self._states.values()
                if s.enabled and not s.draining
            ),
            default=0.1,
        )
        enabled_count = sum(
            1 for s in self._states.values() if s.enabled and not s.draining
        )
        for path_id, state in self._states.items():
            if state.draining:
                # Lifecycle transitions are pointless on a path being
                # torn down; it leaves the state machine as-is.
                continue
            if state.enabled:
                silent = (
                    self._silence_age(state, now) > wd.silence_timeout
                )
                bootstrap_dead = (
                    state.last_feedback_time < 0
                    and state.last_send_time >= 0
                    and now - state.last_send_time < 0.5
                    and now > 3.0
                )
                if not (
                    state.zero_budget_rounds >= 5
                    or state.adjust <= -_ADJUST_LIMIT * 0.9
                    or silent
                    or bootstrap_dead
                ):
                    continue
                if (silent or bootstrap_dead) and enabled_count <= 1:
                    # Total feedback starvation: this is the last
                    # enabled path.  Disabling it would wedge the call,
                    # so run on it at decayed last-known-good rate and
                    # keep the disable backoff armed for when another
                    # path returns.
                    if not state.failsafe:
                        state.failsafe = True
                        if not state.degraded:
                            state.degraded = True
                            state.frozen_rate = state.gcc.target_rate
                            state.degraded_at = now
                        self._record_event(now, path_id, "failsafe")
                    continue
                state.enabled = False
                state.disabled_at = now
                state.zero_budget_rounds = 0
                enabled_count -= 1
                self._record_event(now, path_id, "disabled")
                if silent or bootstrap_dead:
                    state.reenable_backoff = min(
                        state.reenable_backoff * 2, wd.reenable_backoff_max
                    )
                continue
            # Eq. 3 re-enable: the disabled path's extra one-way delay
            # must fit inside the tolerated frame construction delay.
            # Requires fresh probe feedback so a path in outage (whose
            # stale srtt looks fine) cannot sneak back in.
            extra_delay = (state.gcc.srtt - fast_srtt) / 2
            fresh = (
                state.last_feedback_time >= 0
                and now - state.last_feedback_time < 0.5
            )
            recovered = fresh and extra_delay <= max(self.last_fcd, 0.02)
            timed_out = now - state.disabled_at > state.reenable_backoff
            if recovered or timed_out:
                state.enabled = True
                state.adjust = 0.0
                enabled_count += 1
                self._record_event(now, path_id, "enabled")
                if recovered:
                    state.reenable_backoff = wd.reenable_backoff_initial

    def _decay_adjustments(self) -> None:
        for state in self._states.values():
            state.adjust *= _ADJUST_DECAY_FACTOR
            if abs(state.adjust) < 0.5:
                state.adjust = 0.0

    # -- aggregate views ----------------------------------------------------------

    def aggregate_rate(self) -> float:
        """Sum of per-path GCC rates over *live* enabled paths (§4.1).

        A path that has never produced feedback (e.g. the unused second
        network of a single-path call) still holds its initial GCC rate;
        counting it would make the encoder overshoot the real capacity,
        so only paths with recent feedback contribute — a degraded
        (feedback-silent) path contributes its decayed last-known-good
        rate rather than dropping off a cliff or inflating the budget.
        """
        now = self.sim.now
        total = 0.0
        any_live = False
        for state in self._states.values():
            if not state.enabled or state.draining:
                continue
            if state.degraded:
                any_live = True
                total += self._effective_rate(state, now)
                continue
            live = (
                state.last_feedback_time >= 0
                and now - state.last_feedback_time < 1.0
            )
            if live:
                any_live = True
                total += state.gcc.target_rate
        if not any_live:
            # Bootstrap: no feedback yet anywhere, start conservative.
            # (Falls back over every state — draining included — so a
            # transient all-draining window cannot raise on min().)
            return min(
                s.gcc.target_rate
                for s in self._states.values()
            )
        return total

    def effective_aggregate_rate(
        self, avg_packet_bytes: int = 1224, frame_rate: float = 30.0
    ) -> float:
        """Aggregate rate net of negative Eq. 2 budget adjustments.

        Feedback that removes packets from a path removes real
        capacity from the call; the encoder must track it or the
        displaced packets overload the remaining paths and get shed.
        """
        now = self.sim.now
        packet_rate = avg_packet_bytes * 8 * frame_rate
        total = 0.0
        any_live = False
        for state in self._states.values():
            if not state.enabled or state.draining:
                continue
            if state.degraded:
                any_live = True
                total += self._effective_rate(state, now)
                continue
            live = (
                state.last_feedback_time >= 0
                and now - state.last_feedback_time < 1.0
            )
            if not live:
                continue
            any_live = True
            rate = state.gcc.target_rate
            if state.adjust < 0:
                rate = max(rate + state.adjust * packet_rate, 0.0)
            total += rate
        if not any_live:
            return min(s.gcc.target_rate for s in self._states.values())
        return total

    def enabled_path_ids(self) -> List[int]:
        return [
            pid
            for pid, s in self._states.items()
            if s.enabled and not s.draining
        ]

    def disabled_path_ids(self) -> List[int]:
        return [
            pid
            for pid, s in self._states.items()
            if not s.enabled and not s.draining
        ]

    def loss_estimate(self, path_id: int) -> float:
        return self._states[path_id].gcc.loss_estimate

    def loss_for_fec(self, path_id: int) -> float:
        """Loss rate to protect against: peak-hold over recent reports.

        When the path shows a standing queue, the loss is self-inflicted
        congestion — FEC against it only deepens the queue, so fall
        back to a small bound and let GCC drain it (§4.3's trade-off).
        """
        gcc = self._states[path_id].gcc
        min_rtt = gcc.min_rtt if not math.isinf(gcc.min_rtt) else gcc.srtt
        if gcc.srtt > min_rtt + 0.08:
            return min(gcc.loss_estimate, 0.05)
        return max(gcc.loss_estimate, gcc.loss_peak)

    def target_rate(self, path_id: int) -> float:
        return self._states[path_id].gcc.target_rate

    def srtt(self, path_id: int) -> float:
        return self._states[path_id].gcc.srtt

    def min_rtt(self, path_id: int) -> float:
        value = self._states[path_id].gcc.min_rtt
        return value if not math.isinf(value) else 0.0

    def aggregate_loss(self) -> float:
        """Packet-weighted aggregate loss across paths (application level)."""
        states = list(self._states.values())
        total_rate = sum(s.gcc.target_rate for s in states)
        if total_rate <= 0:
            return 0.0
        return sum(
            s.gcc.loss_estimate * s.gcc.target_rate for s in states
        ) / total_rate

    def carries_media(self, path_id: int, now: float, window: float = 1.0) -> bool:
        """Whether ``path_id`` recently carried media (not just padding)."""
        state = self._states[path_id]
        return (
            state.last_media_send_time >= 0
            and now - state.last_media_send_time < window
        )

    def should_probe(self, path_id: int, now: float) -> bool:
        """Whether to send a probe duplicate on a disabled path now.

        Probe cadence backs off exponentially (with jitter, so probes
        across paths do not synchronize) while the path stays silent;
        any feedback arrival resets the cadence via
        :meth:`_mark_feedback`.
        """
        state = self._states[path_id]
        if state.enabled:
            return False
        if (
            state.last_probe_time >= 0
            and now - state.last_probe_time < state.probe_wait
        ):
            return False
        state.last_probe_time = now
        wd = self.watchdog
        jitter = 1.0 + self._probe_rng.uniform(
            -wd.probe_jitter_fraction, wd.probe_jitter_fraction
        )
        state.probe_wait = state.probe_interval * jitter
        # Back off for the round after this one: the first retry keeps
        # the initial cadence, then each silent round stretches it.
        state.probe_interval = min(
            state.probe_interval * wd.probe_backoff_factor,
            wd.probe_interval_max,
        )
        return True

    def adjustment(self, path_id: int) -> float:
        return self._states[path_id].adjust

    def stop(self) -> None:
        self._decay_process.stop()
