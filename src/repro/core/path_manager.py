"""Sender-side per-path state: GCC, Eq. 2 budgets, disable/re-enable.

The path manager owns, per path:

- one uncoupled GCC instance fed by transport feedback and receiver
  reports,
- the multipath sequence counters (``mp_seq`` / ``mp_transport_seq``)
  bound into each packet's header extension,
- the Eq. 2 feedback adjustment ``alpha`` accumulated from QoE
  feedback, with slow decay so a penalized path can earn traffic back,
- the disable logic (budget reaches zero) and the Eq. 3 re-enable
  check ``(rtt_fast - rtt_i)/2 <= FCD`` driven by probe duplicates.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cc.gcc import GccConfig, GoogleCongestionControl
from repro.net.multipath import PathSet
from repro.rtp.packets import RtpPacket
from repro.rtp.rtcp import QoeFeedback, ReceiverReport, TransportFeedback
from repro.rtp.sequence import SEQ_MOD
from repro.scheduling.base import PathSnapshot
from repro.simulation.process import PeriodicProcess
from repro.simulation.simulator import Simulator

# How far behind the newest acked transport seq a recorded send must be
# before we declare it lost (tolerates delivery jitter reordering).
_LOSS_REORDER_MARGIN = 3
_ADJUST_DECAY_INTERVAL = 1.0
_ADJUST_DECAY_FACTOR = 0.9
_ADJUST_LIMIT = 200
_PROBE_INTERVAL = 0.2
# Last-resort re-enable when probe evidence never materializes; the
# normal path back is Eq. 3 (probe RTT recovering toward the fast
# path's).  Re-enabling blindly mid-fade feeds frames to a dead link,
# so consecutive blind re-enables back off exponentially.
_PROBE_FALLBACK_REENABLE = 10.0
_PROBE_FALLBACK_MAX = 60.0
# A path that has carried packets but produced no feedback for this
# long is dead (total blackout produces no "late packets" for the QoE
# feedback to report — the sender must notice the silence itself).
_FEEDBACK_SILENCE_TIMEOUT = 1.5
_BUDGET_HEADROOM = 1.25
# How strongly the Eq. 1 media split is discounted by per-path loss.
_LOSS_AVERSION = 4.0


@dataclass
class _PathState:
    gcc: GoogleCongestionControl
    next_mp_seq: int = 0
    next_transport_seq: int = 0
    sent: Dict[int, Tuple[float, int]] = field(default_factory=dict)
    highest_acked_tseq: int = -1
    adjust: float = 0.0
    zero_budget_rounds: int = 0
    # Fractional packet carry so a path whose Eq. 1 share is below one
    # packet per round still receives its long-run proportion (without
    # this, integer rounding starves the path and its GCC estimate can
    # never grow — the multipath bootstrap deadlock).
    share_carry: float = 0.0
    enabled: bool = True
    disabled_at: float = -1.0
    last_feedback_time: float = -1.0
    last_probe_time: float = -1.0
    # Exponential backoff for blind re-enables of a silent path.
    reenable_backoff: float = _PROBE_FALLBACK_REENABLE
    last_send_time: float = -1.0
    # Media sends only (padding probes excluded): paths that carry no
    # media are not capacity-probed, or an unused path's inflated
    # estimate would leak into the encoder budget.
    last_media_send_time: float = -1.0


class PathManager:
    """Aggregates sender-side state across all paths of one call."""

    def __init__(
        self,
        sim: Simulator,
        paths: PathSet,
        gcc_config: GccConfig | None = None,
    ) -> None:
        self.sim = sim
        self.paths = paths
        self._states: Dict[int, _PathState] = {
            pid: _PathState(gcc=GoogleCongestionControl(pid, gcc_config))
            for pid in paths.path_ids
        }
        self.last_fcd: float = 0.0
        self._decay_process = PeriodicProcess(
            sim, _ADJUST_DECAY_INTERVAL, self._decay_adjustments
        )
        # The most recent packet bound per path, used as probe material.
        self._last_bound: Optional[RtpPacket] = None

    # -- packet binding ----------------------------------------------------

    def bind(self, packet: RtpPacket, path_id: int, now: float) -> RtpPacket:
        """Assign multipath header fields and record the send."""
        state = self._states[path_id]
        packet.path_id = path_id
        packet.mp_seq = state.next_mp_seq
        packet.mp_transport_seq = state.next_transport_seq
        packet.send_time = now
        state.next_mp_seq = (state.next_mp_seq + 1) % SEQ_MOD
        state.next_transport_seq += 1
        state.sent[packet.mp_transport_seq] = (now, packet.size_bytes)
        state.last_send_time = now
        if packet.ssrc != 0:
            state.last_media_send_time = now
        self._last_bound = packet
        return packet

    def make_probe(self, path_id: int, now: float) -> Optional[RtpPacket]:
        """Duplicate the most recent packet as a probe for ``path_id``.

        §4.2: probing a disabled path with duplicates lets GCC keep
        measuring its RTT/loss without risking media on it; the
        receiver's packet buffer discards the duplicate.
        """
        if self._last_bound is None:
            return None
        probe = dataclasses.replace(self._last_bound)
        return self.bind(probe, path_id, now)

    # -- feedback handling -----------------------------------------------------

    def on_transport_feedback(self, message: TransportFeedback) -> None:
        state = self._states.get(message.path_id)
        if state is None:
            return
        now = self.sim.now
        state.last_feedback_time = now
        acked: List[Tuple[float, float, int]] = []
        max_tseq = state.highest_acked_tseq
        for tseq, arrival in message.packets:
            record = state.sent.pop(tseq, None)
            if record is None:
                continue
            send_time, size = record
            acked.append((send_time, arrival, size))
            max_tseq = max(max_tseq, tseq)
        state.highest_acked_tseq = max_tseq
        lost = self._collect_losses(state, now)
        acked.sort(key=lambda item: item[1])
        state.gcc.on_transport_feedback(acked, lost, now)

    def _collect_losses(self, state: _PathState, now: float) -> int:
        threshold = state.highest_acked_tseq - _LOSS_REORDER_MARGIN
        stale = [
            tseq
            for tseq, (send_time, _) in state.sent.items()
            if tseq < threshold and now - send_time > state.gcc.srtt
        ]
        for tseq in stale:
            del state.sent[tseq]
        return len(stale)

    def on_receiver_report(self, message: ReceiverReport) -> None:
        state = self._states.get(message.path_id)
        if state is None:
            return
        state.last_feedback_time = self.sim.now
        state.gcc.on_receiver_report(message.fraction_lost, self.sim.now)

    def on_qoe_feedback(self, message: QoeFeedback) -> None:
        """Apply Eq. 2: shift the path's packet budget by ``alpha``.

        Positive feedback only *restores* a previously penalized path
        (Eq. 2 caps the budget at ``P_max`` anyway); letting it push a
        path above its Eq. 1 share would grow exposure on a path whose
        only credential is having been early once.
        """
        state = self._states.get(message.path_id)
        if state is None:
            return
        if message.alpha >= 0:
            state.adjust = min(state.adjust + message.alpha, 0.0)
        else:
            state.adjust = max(state.adjust + message.alpha, -_ADJUST_LIMIT)
        self.last_fcd = message.fcd

    # -- budgets / snapshots ------------------------------------------------------

    def snapshots(
        self, num_media_packets: int, avg_packet_size: int, now: float
    ) -> List[PathSnapshot]:
        """Per-path scheduling snapshots for one round (one frame)."""
        self._update_enablement(now)
        states = self._states
        # §4.3: "if there is a path with a higher loss rate, we reduce
        # the number of packets on that path" — the Eq. 1 weights are
        # loss-discounted so media migrates toward cleaner paths
        # instead of being FEC-protected harder on lossy ones.
        def weight(state: _PathState) -> float:
            penalty = max(1.0 - _LOSS_AVERSION * state.gcc.loss_estimate, 0.2)
            return state.gcc.target_rate * penalty

        total_rate = sum(
            weight(s) for s in states.values() if s.enabled
        )
        snapshots: List[PathSnapshot] = []
        for path_id, state in states.items():
            rate = state.gcc.target_rate
            interval = 1.0 / 30.0  # one scheduling round per frame tick
            max_packets = max(
                int(
                    math.ceil(
                        rate * interval * _BUDGET_HEADROOM
                        / (8 * max(avg_packet_size, 1))
                    )
                ),
                1,
            )
            if state.enabled and total_rate > 0:
                share = num_media_packets * weight(state) / total_rate
            else:
                share = 0.0
            with_carry = share + state.share_carry + state.adjust
            budget = int(with_carry)
            state.share_carry = min(max(with_carry - budget - state.adjust, 0.0), 1.0)
            budget = min(max(budget, 0), max_packets)
            # Eq. 2: a path whose feedback-adjusted budget stays at
            # zero while media is flowing gets disabled outright.
            if state.enabled and share > 0 and budget == 0:
                state.zero_budget_rounds += 1
            else:
                state.zero_budget_rounds = 0
            age = (
                now - state.last_feedback_time
                if state.last_feedback_time >= 0
                else now
            )
            snapshots.append(
                PathSnapshot(
                    path_id=path_id,
                    srtt=state.gcc.srtt,
                    loss=state.gcc.loss_estimate,
                    send_rate=rate,
                    goodput=state.gcc.goodput,
                    budget_packets=budget,
                    max_packets=max_packets,
                    enabled=state.enabled,
                    last_feedback_age=age,
                )
            )
        return snapshots

    def _update_enablement(self, now: float) -> None:
        fast_srtt = min(
            (s.gcc.srtt for s in self._states.values() if s.enabled),
            default=0.1,
        )
        for state in self._states.values():
            if state.enabled:
                silent = (
                    state.last_send_time >= 0
                    and state.last_feedback_time >= 0
                    and now - state.last_feedback_time
                    > _FEEDBACK_SILENCE_TIMEOUT
                    and state.last_send_time > state.last_feedback_time
                )
                bootstrap_dead = (
                    state.last_feedback_time < 0
                    and state.last_send_time >= 0
                    and now - state.last_send_time < 0.5
                    and now > 3.0
                )
                if (
                    state.zero_budget_rounds >= 5
                    or state.adjust <= -_ADJUST_LIMIT * 0.9
                    or silent
                    or bootstrap_dead
                ):
                    state.enabled = False
                    state.disabled_at = now
                    state.zero_budget_rounds = 0
                    if silent or bootstrap_dead:
                        state.reenable_backoff = min(
                            state.reenable_backoff * 2, _PROBE_FALLBACK_MAX
                        )
                continue
            # Eq. 3 re-enable: the disabled path's extra one-way delay
            # must fit inside the tolerated frame construction delay.
            # Requires fresh probe feedback so a path in outage (whose
            # stale srtt looks fine) cannot sneak back in.
            extra_delay = (state.gcc.srtt - fast_srtt) / 2
            fresh = (
                state.last_feedback_time >= 0
                and now - state.last_feedback_time < 0.5
            )
            recovered = fresh and extra_delay <= max(self.last_fcd, 0.02)
            timed_out = now - state.disabled_at > state.reenable_backoff
            if recovered or timed_out:
                state.enabled = True
                state.adjust = 0.0
                if recovered:
                    state.reenable_backoff = _PROBE_FALLBACK_REENABLE

    def _decay_adjustments(self) -> None:
        for state in self._states.values():
            state.adjust *= _ADJUST_DECAY_FACTOR
            if abs(state.adjust) < 0.5:
                state.adjust = 0.0

    # -- aggregate views ----------------------------------------------------------

    def aggregate_rate(self) -> float:
        """Sum of per-path GCC rates over *live* enabled paths (§4.1).

        A path that has never produced feedback (e.g. the unused second
        network of a single-path call) still holds its initial GCC rate;
        counting it would make the encoder overshoot the real capacity,
        so only paths with recent feedback contribute.
        """
        now = self.sim.now
        total = 0.0
        any_live = False
        for state in self._states.values():
            if not state.enabled:
                continue
            live = (
                state.last_feedback_time >= 0
                and now - state.last_feedback_time < 1.0
            )
            if live:
                any_live = True
                total += state.gcc.target_rate
        if not any_live:
            # Bootstrap: no feedback yet anywhere, start conservative.
            return min(
                s.gcc.target_rate
                for s in self._states.values()
            )
        return total

    def effective_aggregate_rate(
        self, avg_packet_bytes: int = 1224, frame_rate: float = 30.0
    ) -> float:
        """Aggregate rate net of negative Eq. 2 budget adjustments.

        Feedback that removes packets from a path removes real
        capacity from the call; the encoder must track it or the
        displaced packets overload the remaining paths and get shed.
        """
        now = self.sim.now
        packet_rate = avg_packet_bytes * 8 * frame_rate
        total = 0.0
        any_live = False
        for state in self._states.values():
            if not state.enabled:
                continue
            live = (
                state.last_feedback_time >= 0
                and now - state.last_feedback_time < 1.0
            )
            if not live:
                continue
            any_live = True
            rate = state.gcc.target_rate
            if state.adjust < 0:
                rate = max(rate + state.adjust * packet_rate, 0.0)
            total += rate
        if not any_live:
            return min(s.gcc.target_rate for s in self._states.values())
        return total

    def enabled_path_ids(self) -> List[int]:
        return [pid for pid, s in self._states.items() if s.enabled]

    def disabled_path_ids(self) -> List[int]:
        return [pid for pid, s in self._states.items() if not s.enabled]

    def loss_estimate(self, path_id: int) -> float:
        return self._states[path_id].gcc.loss_estimate

    def loss_for_fec(self, path_id: int) -> float:
        """Loss rate to protect against: peak-hold over recent reports.

        When the path shows a standing queue, the loss is self-inflicted
        congestion — FEC against it only deepens the queue, so fall
        back to a small bound and let GCC drain it (§4.3's trade-off).
        """
        gcc = self._states[path_id].gcc
        min_rtt = gcc.min_rtt if gcc.min_rtt != float("inf") else gcc.srtt
        if gcc.srtt > min_rtt + 0.08:
            return min(gcc.loss_estimate, 0.05)
        return max(gcc.loss_estimate, gcc.loss_peak)

    def target_rate(self, path_id: int) -> float:
        return self._states[path_id].gcc.target_rate

    def srtt(self, path_id: int) -> float:
        return self._states[path_id].gcc.srtt

    def min_rtt(self, path_id: int) -> float:
        value = self._states[path_id].gcc.min_rtt
        return value if value != float("inf") else 0.0

    def aggregate_loss(self) -> float:
        """Packet-weighted aggregate loss across paths (application level)."""
        states = list(self._states.values())
        total_rate = sum(s.gcc.target_rate for s in states)
        if total_rate <= 0:
            return 0.0
        return sum(
            s.gcc.loss_estimate * s.gcc.target_rate for s in states
        ) / total_rate

    def carries_media(self, path_id: int, now: float, window: float = 1.0) -> bool:
        """Whether ``path_id`` recently carried media (not just padding)."""
        state = self._states[path_id]
        return (
            state.last_media_send_time >= 0
            and now - state.last_media_send_time < window
        )

    def should_probe(self, path_id: int, now: float) -> bool:
        state = self._states[path_id]
        if state.enabled:
            return False
        if now - state.last_probe_time >= _PROBE_INTERVAL:
            state.last_probe_time = now
            return True
        return False

    def adjustment(self, path_id: int) -> float:
        return self._states[path_id].adjust

    def stop(self) -> None:
        self._decay_process.stop()
