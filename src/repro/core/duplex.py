"""Full-duplex conference calls: both endpoints send video.

The paper's conferencing setup is two-way (§6 runs calls between
laptops/phones); uplink and downlink of a cellular/WiFi attachment are
separate radio resources, so each direction gets its own emulated
paths — but both live on one simulator clock, and each endpoint's QoE
is summarized independently.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.api import build_scheduler
from repro.core.config import CallConfig
from repro.core.sender import SenderSession
from repro.core.session import CallResult
from repro.metrics.collector import MetricsCollector
from repro.metrics.qoe import summarize
from repro.net.multipath import PathSet
from repro.net.path import PathConfig
from repro.receiver.session import ReceiverSession
from repro.rtp.rtcp import RtcpMessage
from repro.scheduling.base import Scheduler
from repro.simulation.process import PeriodicProcess
from repro.simulation.simulator import Simulator


@dataclass
class _Direction:
    """One media direction: a sender, its paths, and the far receiver."""

    name: str
    paths: PathSet
    sender: SenderSession
    receiver: ReceiverSession
    metrics: MetricsCollector
    sampler: PeriodicProcess


class DuplexCall:
    """A two-way call between endpoints A and B on one simulator."""

    def __init__(
        self,
        config: CallConfig,
        forward_paths: List[PathConfig],
        reverse_paths: Optional[List[PathConfig]] = None,
        config_reverse: Optional[CallConfig] = None,
        scheduler_forward: Optional[Scheduler] = None,
        scheduler_reverse: Optional[Scheduler] = None,
    ) -> None:
        self.config_forward = config
        self.config_reverse = config_reverse or dataclasses.replace(
            config, label=f"{config.label}-reverse"
        )
        self.sim = Simulator(config.seed)
        reverse_configs = (
            reverse_paths
            if reverse_paths is not None
            else [_mirror(pc) for pc in forward_paths]
        )
        self.forward = self._build_direction(
            "a-to-b",
            self.config_forward,
            forward_paths,
            scheduler_forward or build_scheduler(self.config_forward),
        )
        self.reverse = self._build_direction(
            "b-to-a",
            self.config_reverse,
            reverse_configs,
            scheduler_reverse or build_scheduler(self.config_reverse),
        )

    def _build_direction(
        self,
        name: str,
        config: CallConfig,
        path_configs: List[PathConfig],
        scheduler: Scheduler,
    ) -> _Direction:
        paths = PathSet(self.sim, path_configs)
        metrics = MetricsCollector()
        ssrcs = [index + 1 for index in range(config.num_streams)]
        receiver = ReceiverSession(
            self.sim, paths, ssrcs, config.receiver, metrics
        )

        rtcp_delay = min(p.config.propagation_delay for p in paths)

        def deliver_rtcp(message: RtcpMessage) -> None:
            self.sim.schedule(
                rtcp_delay, receiver.on_rtcp_from_sender, message
            )

        sender = SenderSession(
            self.sim,
            paths,
            config,
            scheduler,
            metrics,
            send_rtcp_to_receiver=deliver_rtcp,
        )
        for path in paths:
            path.on_feedback_deliver = sender.on_rtcp
        sampler = PeriodicProcess(
            self.sim,
            config.sample_interval,
            lambda: metrics.record_receive_rate_sample(self.sim.now),
        )
        return _Direction(
            name=name,
            paths=paths,
            sender=sender,
            receiver=receiver,
            metrics=metrics,
            sampler=sampler,
        )

    def run(
        self, duration: Optional[float] = None
    ) -> Tuple[CallResult, CallResult]:
        """Run both directions to completion; returns (forward, reverse)."""
        duration = duration if duration is not None else self.config_forward.duration
        self.sim.run(until=duration)
        results = []
        for direction, config in (
            (self.forward, self.config_forward),
            (self.reverse, self.config_reverse),
        ):
            direction.sender.stop()
            direction.receiver.stop()
            direction.receiver.finalize()
            summary = summarize(
                direction.metrics,
                duration=duration,
                num_streams=config.num_streams,
                frame_rate=config.frame_rate,
                rd_model=config.encoder_template.rd_model,
            )
            results.append(
                CallResult(config=config, summary=summary, metrics=direction.metrics)
            )
        return results[0], results[1]


def _mirror(config: PathConfig) -> PathConfig:
    """The reverse direction of a network attachment.

    Uplink and downlink are distinct resources; by default the mirror
    keeps the same profile but gets independent loss/jitter draws
    (the Path seeds its streams from path id + name, so a distinct
    name suffices).
    """
    import copy

    return dataclasses.replace(
        config,
        name=f"{config.name}-rev",
        # Stateful loss models (Gilbert-Elliott) must not share state
        # across directions.
        loss_model=copy.deepcopy(config.loss_model),
    )
