"""Call configuration shared by sender, receiver and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.cc.gcc import GccConfig
from repro.receiver.session import ReceiverConfig
from repro.video.encoder import EncoderConfig


class SystemKind(Enum):
    """The systems compared in the paper's evaluation."""

    CONVERGE = "converge"
    WEBRTC = "webrtc"  # single path
    WEBRTC_CM = "webrtc-cm"  # single path with connection migration
    SRTT = "srtt"  # minRTT multipath
    MTPUT = "m-tput"  # Musher throughput multipath
    MRTP = "m-rtp"  # MPRTP multipath


class FecMode(Enum):
    """Which FEC controller protects the media."""

    CONVERGE = "converge"  # path-specific, beta-adaptive (§4.3)
    WEBRTC_TABLE = "webrtc-table"  # static table, application-level
    NONE = "none"


@dataclass
class CallConfig:
    """Everything needed to run one simulated conference call."""

    system: SystemKind = SystemKind.CONVERGE
    fec_mode: FecMode = FecMode.CONVERGE
    duration: float = 60.0
    num_streams: int = 1
    frame_rate: float = 30.0
    max_rate_per_stream: float = 10_000_000.0
    seed: int = 1
    # Which path single-path systems pin to.
    single_path_id: int = 0
    # Ablation switches (Fig. 11 / Table 4 run Converge without the
    # QoE feedback loop).
    qoe_feedback_enabled: bool = True
    nack_enabled: bool = True
    receiver: ReceiverConfig = field(default_factory=ReceiverConfig)
    encoder_template: EncoderConfig = field(default_factory=EncoderConfig)
    gcc: GccConfig = field(default_factory=GccConfig)
    # FEC grouping: at most this many media packets per XOR group.
    fec_group_size: int = 10
    # Fraction of the (FEC-discounted) transport budget the encoder
    # may use.  Converge runs with headroom: QoE-driven means trading
    # a little raw rate for far fewer late frames under fades.
    encoder_utilization: float = 0.97
    # Interval for time-series sampling in the metrics collector.
    sample_interval: float = 0.5
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.num_streams < 1:
            raise ValueError("need at least one stream")
        if self.fec_group_size < 2:
            raise ValueError("FEC group size must be at least 2")
        self.receiver.qoe_feedback_enabled = self.qoe_feedback_enabled
        self.receiver.nack_enabled = self.nack_enabled
        if self.label is None:
            self.label = self.system.value

    @property
    def is_multipath(self) -> bool:
        return self.system in (
            SystemKind.CONVERGE,
            SystemKind.SRTT,
            SystemKind.MTPUT,
            SystemKind.MRTP,
        )
