"""Call configuration shared by sender, receiver and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.cc.gcc import GccConfig
from repro.receiver.session import ReceiverConfig
from repro.video.encoder import EncoderConfig


class SystemKind(Enum):
    """The systems compared in the paper's evaluation."""

    CONVERGE = "converge"
    WEBRTC = "webrtc"  # single path
    WEBRTC_CM = "webrtc-cm"  # single path with connection migration
    SRTT = "srtt"  # minRTT multipath
    MTPUT = "m-tput"  # Musher throughput multipath
    MRTP = "m-rtp"  # MPRTP multipath


class FecMode(Enum):
    """Which FEC controller protects the media."""

    CONVERGE = "converge"  # path-specific, beta-adaptive (§4.3)
    WEBRTC_TABLE = "webrtc-table"  # static table, application-level
    NONE = "none"


@dataclass
class WatchdogConfig:
    """Feedback-silence watchdog: sender-side lossy-feedback hardening.

    The control loop rides on RTCP; when a path's feedback goes silent
    the sender must degrade gracefully instead of trusting (or
    wedging on) stale state.  Stages: after ``degrade_timeout`` of
    silence the path's rate is frozen at its last-known-good value and
    decayed multiplicatively, and the path loses priority-packet
    eligibility; after ``silence_timeout`` it is disabled outright and
    re-probed with exponential backoff (cap + jitter).
    """

    # Silence before the path is degraded (rate frozen + decaying,
    # priority packets diverted).  Transport feedback normally arrives
    # every 50 ms, so this tolerates several lost reports.
    degrade_timeout: float = 0.4
    # Silence before the path is disabled entirely.
    silence_timeout: float = 1.5
    # Multiplicative decay of the frozen last-known-good rate while
    # silence persists: rate *= decay_factor per decay_interval.
    rate_decay_factor: float = 0.6
    rate_decay_interval: float = 0.5
    # Probe cadence for disabled paths: exponential backoff with cap
    # and jitter, replacing the old fixed 200 ms cadence so a dead
    # path is not hammered forever at full rate.
    probe_interval_initial: float = 0.2
    probe_interval_max: float = 1.0
    probe_backoff_factor: float = 1.5
    probe_jitter_fraction: float = 0.25
    # Last-resort blind re-enable backoff (was hardcoded in the path
    # manager): consecutive blind re-enables back off exponentially.
    reenable_backoff_initial: float = 10.0
    reenable_backoff_max: float = 60.0

    def __post_init__(self) -> None:
        if self.degrade_timeout <= 0:
            raise ValueError("degrade timeout must be positive")
        if self.silence_timeout <= self.degrade_timeout:
            raise ValueError("silence timeout must exceed degrade timeout")
        if not 0.0 < self.rate_decay_factor <= 1.0:
            raise ValueError("rate decay factor must be in (0, 1]")
        if self.rate_decay_interval <= 0:
            raise ValueError("rate decay interval must be positive")
        if self.probe_interval_initial <= 0:
            raise ValueError("initial probe interval must be positive")
        if self.probe_interval_max < self.probe_interval_initial:
            raise ValueError("probe interval cap must be >= initial")
        if self.probe_backoff_factor < 1.0:
            raise ValueError("probe backoff factor must be >= 1")
        if not 0.0 <= self.probe_jitter_fraction < 1.0:
            raise ValueError("probe jitter fraction must be in [0, 1)")
        if self.reenable_backoff_initial <= 0:
            raise ValueError("re-enable backoff must be positive")
        if self.reenable_backoff_max < self.reenable_backoff_initial:
            raise ValueError("re-enable backoff cap must be >= initial")


@dataclass
class CallConfig:
    """Everything needed to run one simulated conference call."""

    system: SystemKind = SystemKind.CONVERGE
    fec_mode: FecMode = FecMode.CONVERGE
    duration: float = 60.0
    num_streams: int = 1
    frame_rate: float = 30.0
    max_rate_per_stream: float = 10_000_000.0
    seed: int = 1
    # Which path single-path systems pin to.
    single_path_id: int = 0
    # Ablation switches (Fig. 11 / Table 4 run Converge without the
    # QoE feedback loop).
    qoe_feedback_enabled: bool = True
    nack_enabled: bool = True
    receiver: ReceiverConfig = field(default_factory=ReceiverConfig)
    encoder_template: EncoderConfig = field(default_factory=EncoderConfig)
    gcc: GccConfig = field(default_factory=GccConfig)
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)
    # FEC grouping: at most this many media packets per XOR group.
    fec_group_size: int = 10
    # Fraction of the (FEC-discounted) transport budget the encoder
    # may use.  Converge runs with headroom: QoE-driven means trading
    # a little raw rate for far fewer late frames under fades.
    encoder_utilization: float = 0.97
    # Interval for time-series sampling in the metrics collector.
    sample_interval: float = 0.5
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.num_streams < 1:
            raise ValueError("need at least one stream")
        if self.fec_group_size < 2:
            raise ValueError("FEC group size must be at least 2")
        self.receiver.qoe_feedback_enabled = self.qoe_feedback_enabled
        self.receiver.nack_enabled = self.nack_enabled
        if self.label is None:
            self.label = self.system.value

    @property
    def is_multipath(self) -> bool:
        return self.system in (
            SystemKind.CONVERGE,
            SystemKind.SRTT,
            SystemKind.MTPUT,
            SystemKind.MRTP,
        )
