"""High-level public API: build and run conference calls."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.config import CallConfig, FecMode, SystemKind
from repro.core.session import CallResult, ConferenceCall
from repro.faults.plan import FaultPlan
from repro.net.path import PathConfig
from repro.simulation.profiling import SimProfiler
from repro.scheduling import (
    ConnectionMigrationScheduler,
    ConvergeScheduler,
    MinRttScheduler,
    MprtpScheduler,
    Scheduler,
    SinglePathScheduler,
    ThroughputScheduler,
)


def build_scheduler(config: CallConfig) -> Scheduler:
    """Instantiate the scheduler matching ``config.system``."""
    system = config.system
    if system is SystemKind.CONVERGE:
        return ConvergeScheduler()
    if system is SystemKind.WEBRTC:
        return SinglePathScheduler(config.single_path_id)
    if system is SystemKind.WEBRTC_CM:
        return ConnectionMigrationScheduler(config.single_path_id)
    if system is SystemKind.SRTT:
        return MinRttScheduler()
    if system is SystemKind.MTPUT:
        return ThroughputScheduler()
    if system is SystemKind.MRTP:
        return MprtpScheduler()
    raise ValueError(f"unknown system: {system}")


def build_call_config(
    system: SystemKind,
    duration: float = 60.0,
    num_streams: int = 1,
    seed: int = 1,
    single_path_id: int = 0,
    qoe_feedback_enabled: Optional[bool] = None,
    fec_mode: Optional[FecMode] = None,
    label: Optional[str] = None,
    **kwargs: Any,
) -> CallConfig:
    """A :class:`CallConfig` with the paper's per-system defaults.

    Converge gets path-specific FEC and QoE feedback; every other
    system gets WebRTC's table FEC and no QoE feedback — matching the
    baseline setups of §5 ("all of these variants utilize WebRTC's
    default FEC module and lack video-aware prioritization").
    """
    if fec_mode is None:
        fec_mode = (
            FecMode.CONVERGE
            if system is SystemKind.CONVERGE
            else FecMode.WEBRTC_TABLE
        )
    if qoe_feedback_enabled is None:
        qoe_feedback_enabled = system is SystemKind.CONVERGE
    kwargs.setdefault(
        "encoder_utilization",
        0.85 if system is SystemKind.CONVERGE else 0.97,
    )
    return CallConfig(
        system=system,
        fec_mode=fec_mode,
        duration=duration,
        num_streams=num_streams,
        seed=seed,
        single_path_id=single_path_id,
        qoe_feedback_enabled=qoe_feedback_enabled,
        label=label,
        **kwargs,
    )


def run_call(
    config: CallConfig,
    path_configs: Sequence[PathConfig],
    scheduler: Optional[Scheduler] = None,
    fault_plan: Optional[FaultPlan] = None,
    profiler: Optional[SimProfiler] = None,
    churn_scenario: Optional[str] = None,
) -> CallResult:
    """Run one simulated conference call and return its QoE result.

    ``fault_plan`` optionally injects a :class:`repro.faults.FaultPlan`
    of network/feedback faults into the call's paths.  ``profiler``
    optionally attaches a :class:`repro.simulation.SimProfiler` that
    accounts wall time per subsystem (at some dispatch overhead).
    ``churn_scenario`` names the trace scenario used to synthesize
    paths born mid-call when the plan carries churn BIRTH events.
    """
    paths: List[PathConfig] = list(path_configs)
    if not paths:
        raise ValueError("a call needs at least one path")
    if scheduler is None:
        scheduler = build_scheduler(config)
    call = ConferenceCall(
        config,
        paths,
        scheduler,
        fault_plan=fault_plan,
        profiler=profiler,
        churn_scenario=churn_scenario,
    )
    return call.run()
