"""SDP/ICE-lite multipath negotiation (§5, "Connections management").

Converge extends ICE to gather candidates for every available network
and SDP to advertise multipath capability.  Crucially it is backward
compatible: if either endpoint does not advertise multipath, the
negotiation falls back to a single path and the call proceeds as
standard WebRTC.  This module models that handshake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

MULTIPATH_SDP_ATTRIBUTE = "a=x-converge-multipath"


@dataclass(frozen=True)
class IceCandidate:
    """One transport candidate (one local network interface)."""

    path_id: int
    network_name: str
    priority: int = 0


@dataclass
class IceAgent:
    """Gathers candidates from the locally available networks."""

    networks: Sequence[str]

    def gather_candidates(self) -> List[IceCandidate]:
        """One candidate per network, priority by listing order."""
        return [
            IceCandidate(
                path_id=index,
                network_name=name,
                priority=len(self.networks) - index,
            )
            for index, name in enumerate(self.networks)
        ]


@dataclass
class SdpOffer:
    """The caller's session description."""

    ssrcs: List[int]
    candidates: List[IceCandidate]
    multipath_supported: bool = True

    def attributes(self) -> List[str]:
        attrs = [f"a=ssrc:{ssrc}" for ssrc in self.ssrcs]
        if self.multipath_supported:
            attrs.append(MULTIPATH_SDP_ATTRIBUTE)
        return attrs


@dataclass
class SdpAnswer:
    """The callee's session description."""

    candidates: List[IceCandidate]
    multipath_supported: bool = True

    def attributes(self) -> List[str]:
        attrs: List[str] = []
        if self.multipath_supported:
            attrs.append(MULTIPATH_SDP_ATTRIBUTE)
        return attrs


@dataclass
class NegotiationResult:
    """Outcome of the offer/answer exchange."""

    multipath: bool
    agreed_path_ids: List[int]
    fallback_reason: Optional[str] = None


def negotiate_multipath(offer: SdpOffer, answer: SdpAnswer) -> NegotiationResult:
    """Agree on the paths a call may use.

    Multipath requires both endpoints to advertise support and at
    least one network pairing on each side; otherwise the negotiation
    falls back to the single highest-priority candidate pair, exactly
    like a legacy WebRTC endpoint would see.
    """
    offer_paths = {c.path_id for c in offer.candidates}
    answer_paths = {c.path_id for c in answer.candidates}
    common = sorted(offer_paths & answer_paths)
    if not common:
        raise ValueError("no common transport candidates; call cannot form")
    if not offer.multipath_supported:
        return NegotiationResult(
            multipath=False,
            agreed_path_ids=[_best_path(offer.candidates, common)],
            fallback_reason="offerer lacks multipath support",
        )
    if not answer.multipath_supported:
        return NegotiationResult(
            multipath=False,
            agreed_path_ids=[_best_path(offer.candidates, common)],
            fallback_reason="answerer lacks multipath support",
        )
    if len(common) == 1:
        return NegotiationResult(
            multipath=False,
            agreed_path_ids=common,
            fallback_reason="only one common network",
        )
    return NegotiationResult(multipath=True, agreed_path_ids=common)


def _best_path(candidates: Sequence[IceCandidate], allowed: Sequence[int]) -> int:
    usable = [c for c in candidates if c.path_id in allowed]
    return max(usable, key=lambda c: c.priority).path_id


# -- mid-call path lifecycle signaling ----------------------------------------
#
# Converge renegotiates the path set without a full offer/answer cycle:
# a new interface coming up (WiFi association, LTE attach) is announced
# as an incremental candidate, and a vanished interface is torn down
# explicitly so the remote side can drop state instead of waiting out a
# timeout.  These messages model that trickle-ICE-style exchange.


@dataclass(frozen=True)
class PathAnnouncement:
    """A new transport candidate advertised mid-call."""

    path_id: int
    network_name: str
    announced_at: float

    def attribute(self) -> str:
        return f"a=x-converge-path-add:{self.path_id} {self.network_name}"


@dataclass(frozen=True)
class PathTeardown:
    """An existing path withdrawn mid-call.

    ``graceful`` distinguishes a planned teardown (the sender drains
    in-flight packets first) from an abrupt death noticed after the
    fact (interface gone; in-flight packets are rerouted as priority
    retransmissions).
    """

    path_id: int
    graceful: bool
    torn_down_at: float

    def attribute(self) -> str:
        mode = "drain" if self.graceful else "abrupt"
        return f"a=x-converge-path-del:{self.path_id} {mode}"


@dataclass
class PathSignalingLog:
    """Ordered record of the lifecycle messages exchanged in one call."""

    announcements: List[PathAnnouncement]
    teardowns: List[PathTeardown]

    def __init__(self) -> None:
        self.announcements = []
        self.teardowns = []

    def announce(self, message: PathAnnouncement) -> None:
        self.announcements.append(message)

    def tear_down(self, message: PathTeardown) -> None:
        self.teardowns.append(message)

    def live_path_ids(self, initial: Sequence[int]) -> List[int]:
        """Replay the log over ``initial`` to get the current path set."""
        live = set(initial)
        events: List[tuple[float, int, bool]] = [
            (a.announced_at, a.path_id, True) for a in self.announcements
        ] + [(t.torn_down_at, t.path_id, False) for t in self.teardowns]
        for _, path_id, added in sorted(events, key=lambda e: e[0]):
            if added:
                live.add(path_id)
            else:
                live.discard(path_id)
        return sorted(live)
