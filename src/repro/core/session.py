"""Conference call orchestration: build, wire, run, summarize."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import CallConfig
from repro.core.sender import SenderSession
from repro.core.signaling import (
    PathAnnouncement,
    PathSignalingLog,
    PathTeardown,
)
from repro.faults.churn import ChurnDriver
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.metrics.collector import MetricsCollector
from repro.metrics.qoe import QoeSummary, summarize
from repro.net.multipath import PathSet
from repro.net.path import PathConfig
from repro.receiver.session import ReceiverSession
from repro.rtp.rtcp import RtcpMessage
from repro.scheduling.base import Scheduler
from repro.simulation.process import PeriodicProcess
from repro.simulation.profiling import SimProfiler
from repro.simulation.simulator import Simulator
from repro.traces.scenarios import (
    make_loss_model,
    make_scenario_trace,
    propagation_delay,
    scenario_networks,
)

# Grace window bounds for a graceful path drain: long enough for the
# last in-flight packets' acks to return (≈ 2 RTTs plus one transport
# feedback interval), short enough not to hold dead state around.
_DRAIN_GRACE_MIN = 0.2
_DRAIN_GRACE_MAX = 1.0


@dataclass
class CallResult:
    """Everything an experiment needs from one finished call."""

    config: CallConfig
    summary: QoeSummary
    metrics: MetricsCollector

    @property
    def label(self) -> str:
        return self.config.label or self.config.system.value


class ConferenceCall:
    """One simulated call between a sender and a receiver endpoint."""

    def __init__(
        self,
        config: CallConfig,
        path_configs: List[PathConfig],
        scheduler: Scheduler,
        fault_plan: Optional[FaultPlan] = None,
        profiler: Optional["SimProfiler"] = None,
        churn_scenario: Optional[str] = None,
    ) -> None:
        self.config = config
        self.sim = Simulator(config.seed)
        self.paths = PathSet(self.sim, path_configs)
        self.metrics = MetricsCollector()
        self.scheduler = scheduler
        # Trace scenario used to synthesize capacity/loss for paths
        # born mid-call (churn BIRTH events); None disables births.
        self._churn_scenario = churn_scenario
        self.signaling = PathSignalingLog()
        self.fault_injector: Optional[FaultInjector] = None
        if fault_plan is not None and len(fault_plan):
            self.fault_injector = FaultInjector(
                self.sim, self.paths, fault_plan, self.metrics
            )
            self.fault_injector.arm()
        self.churn_driver: Optional[ChurnDriver] = None
        if fault_plan is not None and fault_plan.churn:
            self.churn_driver = ChurnDriver(self.sim, self, fault_plan.churn)
            self.churn_driver.arm()
        ssrcs = [index + 1 for index in range(config.num_streams)]
        self.receiver = ReceiverSession(
            self.sim,
            self.paths,
            ssrcs,
            config.receiver,
            self.metrics,
        )
        self.sender = SenderSession(
            self.sim,
            self.paths,
            config,
            scheduler,
            self.metrics,
            send_rtcp_to_receiver=self._deliver_rtcp_to_receiver,
        )
        for path in self.paths:
            path.on_feedback_deliver = self.sender.on_rtcp
        # Propagation delays are static per path; compute the sender→
        # receiver RTCP delay once instead of per message.
        self._rtcp_delay = min(
            p.config.propagation_delay for p in self.paths
        )
        self._sampler = PeriodicProcess(
            self.sim, config.sample_interval, self._sample
        )
        if profiler is not None:
            profiler.attach_call(self)

    def _deliver_rtcp_to_receiver(self, message: RtcpMessage) -> None:
        self.sim.schedule(
            self._rtcp_delay, self.receiver.on_rtcp_from_sender, message
        )

    # -- path lifecycle ----------------------------------------------------

    def add_path(self, path_id: int, network: str) -> None:
        """Bring a new path up mid-call (WiFi association, LTE attach).

        The path is announced over signaling, wired into both
        endpoints, and starts with a bootstrap GCC estimate; schedulers
        see it in the next round's snapshots and Eq. 1 re-normalizes
        the split as its estimate earns share.
        """
        if self._churn_scenario is None:
            raise ValueError(
                "cannot synthesize a mid-call path without a trace "
                "scenario (pass churn_scenario to the call)"
            )
        now = self.sim.now
        networks = scenario_networks(self._churn_scenario)
        if network not in networks:
            # Chaos plans name the migration scenario's WiFi/LTE
            # profiles; under any other scenario the birth attaches to
            # a profile it actually has, chosen deterministically, so
            # churn runs compose with every trace scenario.
            network = sorted(networks)[path_id % len(networks)]
        # The new path's trace rides a forked stream namespace so its
        # randomness never perturbs draws of the initial paths.
        streams = self.sim.streams.fork(f"churn-path-{path_id}-{network}")
        config = PathConfig(
            path_id=path_id,
            trace=make_scenario_trace(
                self._churn_scenario, network, self.config.duration, streams
            ),
            propagation_delay=propagation_delay(
                self._churn_scenario, network
            ),
            loss_model=make_loss_model(self._churn_scenario, network),
            name=network,
        )
        path = self.paths.add_path(config)
        path.on_feedback_deliver = self.sender.on_rtcp
        self.receiver.on_path_added(path_id)
        self.sender.on_path_added(path_id)
        self._rtcp_delay = min(
            p.config.propagation_delay for p in self.paths
        )
        self.signaling.announce(PathAnnouncement(path_id, network, now))
        self.metrics.record_churn_event(now, path_id, "birth")

    def remove_path(self, path_id: int, graceful: bool = False) -> None:
        """Tear a path down mid-call.

        Abrupt (``graceful=False``): the interface vanished — ingress
        is detached immediately, in-flight packets reroute to the
        survivors as priority retransmissions.  Graceful: the path
        stops taking new media but keeps its feedback channel for a
        short grace window so in-flight packets are acked, then the
        residue (if any) reroutes and the path is removed.
        """
        if path_id not in self.paths:
            raise KeyError(f"unknown path id {path_id}")
        pm = self.sender.path_manager
        live = [
            pid
            for pid in self.paths.path_ids
            if pid != path_id and not pm.is_draining(pid)
        ]
        if not live:
            raise ValueError("cannot remove the last live path of a call")
        now = self.sim.now
        self.signaling.tear_down(PathTeardown(path_id, graceful, now))
        if graceful:
            self.sender.begin_path_drain(path_id)
            self.metrics.record_churn_event(now, path_id, "drain")
            grace = min(
                max(2.0 * pm.srtt(path_id), _DRAIN_GRACE_MIN),
                _DRAIN_GRACE_MAX,
            )
            self.sim.schedule(grace, self._finalize_removal, path_id)
        else:
            self.metrics.record_churn_event(now, path_id, "death")
            self._finalize_removal(path_id)

    def _finalize_removal(self, path_id: int) -> None:
        if path_id not in self.paths:
            return  # already removed
        path = self.paths.remove_path(path_id)
        # Detach ingress so anything still propagating on the dead
        # path's wire silently evaporates instead of resurrecting
        # receiver state.
        path.on_deliver = None
        path.on_feedback_deliver = None
        self.receiver.on_path_removed(path_id)
        self.sender.on_path_removed(path_id)
        self._rtcp_delay = min(
            p.config.propagation_delay for p in self.paths
        )
        self.metrics.record_churn_event(self.sim.now, path_id, "removed")

    def _sample(self) -> None:
        self.metrics.record_receive_rate_sample(self.sim.now)

    def run(self, duration: Optional[float] = None) -> CallResult:
        """Run the call to completion and summarize its QoE."""
        duration = duration if duration is not None else self.config.duration
        self.sim.run(until=duration)
        self.sender.stop()
        self.receiver.stop()
        self.receiver.finalize()
        summary = summarize(
            self.metrics,
            duration=duration,
            num_streams=self.config.num_streams,
            frame_rate=self.config.frame_rate,
            rd_model=self.config.encoder_template.rd_model,
        )
        return CallResult(
            config=self.config, summary=summary, metrics=self.metrics
        )
