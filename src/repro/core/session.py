"""Conference call orchestration: build, wire, run, summarize."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import CallConfig
from repro.core.sender import SenderSession
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.metrics.collector import MetricsCollector
from repro.metrics.qoe import QoeSummary, summarize
from repro.net.multipath import PathSet
from repro.net.path import PathConfig
from repro.receiver.session import ReceiverSession
from repro.rtp.rtcp import RtcpMessage
from repro.scheduling.base import Scheduler
from repro.simulation.process import PeriodicProcess
from repro.simulation.profiling import SimProfiler
from repro.simulation.simulator import Simulator


@dataclass
class CallResult:
    """Everything an experiment needs from one finished call."""

    config: CallConfig
    summary: QoeSummary
    metrics: MetricsCollector

    @property
    def label(self) -> str:
        return self.config.label or self.config.system.value


class ConferenceCall:
    """One simulated call between a sender and a receiver endpoint."""

    def __init__(
        self,
        config: CallConfig,
        path_configs: List[PathConfig],
        scheduler: Scheduler,
        fault_plan: Optional[FaultPlan] = None,
        profiler: Optional["SimProfiler"] = None,
    ) -> None:
        self.config = config
        self.sim = Simulator(config.seed)
        self.paths = PathSet(self.sim, path_configs)
        self.metrics = MetricsCollector()
        self.fault_injector: Optional[FaultInjector] = None
        if fault_plan is not None and len(fault_plan):
            self.fault_injector = FaultInjector(
                self.sim, self.paths, fault_plan, self.metrics
            )
            self.fault_injector.arm()
        ssrcs = [index + 1 for index in range(config.num_streams)]
        self.receiver = ReceiverSession(
            self.sim,
            self.paths,
            ssrcs,
            config.receiver,
            self.metrics,
        )
        self.sender = SenderSession(
            self.sim,
            self.paths,
            config,
            scheduler,
            self.metrics,
            send_rtcp_to_receiver=self._deliver_rtcp_to_receiver,
        )
        for path in self.paths:
            path.on_feedback_deliver = self.sender.on_rtcp
        # Propagation delays are static per path; compute the sender→
        # receiver RTCP delay once instead of per message.
        self._rtcp_delay = min(
            p.config.propagation_delay for p in self.paths
        )
        self._sampler = PeriodicProcess(
            self.sim, config.sample_interval, self._sample
        )
        if profiler is not None:
            profiler.attach_call(self)

    def _deliver_rtcp_to_receiver(self, message: RtcpMessage) -> None:
        self.sim.schedule(
            self._rtcp_delay, self.receiver.on_rtcp_from_sender, message
        )

    def _sample(self) -> None:
        self.metrics.record_receive_rate_sample(self.sim.now)

    def run(self, duration: Optional[float] = None) -> CallResult:
        """Run the call to completion and summarize its QoE."""
        duration = duration if duration is not None else self.config.duration
        self.sim.run(until=duration)
        self.sender.stop()
        self.receiver.stop()
        self.receiver.finalize()
        summary = summarize(
            self.metrics,
            duration=duration,
            num_streams=self.config.num_streams,
            frame_rate=self.config.frame_rate,
            rd_model=self.config.encoder_template.rd_model,
        )
        return CallResult(
            config=self.config, summary=summary, metrics=self.metrics
        )
