"""The sender pipeline: cameras -> encoders -> scheduler -> FEC -> paths.

One :class:`SenderSession` drives all camera streams of a call.  Per
frame tick it encodes, packetizes, consults the scheduler for path
assignments, generates FEC according to the configured controller
(path-specific Converge FEC or WebRTC's application-level table), and
hands packets to the per-path pacer.  Incoming RTCP (transport
feedback, receiver reports, NACK, keyframe requests, QoE feedback)
updates GCC, the encoder rate, retransmissions and the Eq. 2 budgets.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.cc.pacing import Pacer
from repro.core.config import CallConfig, FecMode
from repro.core.path_manager import PathManager
from repro.fec.converge_controller import ConvergeFecController
from repro.fec.tables import webrtc_protection_factor
from repro.fec.webrtc_controller import WebRtcFecController
from repro.metrics.collector import MetricsCollector
from repro.net.multipath import PathSet
from repro.rtp.packets import PacketType, RtpPacket
from repro.rtp.rtcp import (
    KeyframeRequest,
    Nack,
    QoeFeedback,
    ReceiverReport,
    RtcpMessage,
    SdesFrameRate,
    TransportFeedback,
)
from repro.scheduling.base import DROP_PATH, Scheduler
from repro.simulation.process import PeriodicProcess
from repro.simulation.simulator import Simulator
from repro.video.encoder import Encoder
from repro.video.packetizer import Packetizer
from repro.video.source import CameraSource

_RTX_HISTORY_LIMIT = 4096
_RATE_UPDATE_INTERVAL = 0.1
_SDES_INTERVAL = 1.0
# Retransmissions are capped at this fraction of the transport budget
# so a NACK storm under congestion cannot displace live media (WebRTC
# bounds its RTX allocation the same way).
_RTX_RATE_FRACTION = 0.15
# Padding probe bursts (PROBE_BWE): back-to-back packets whose arrival
# spacing measures link capacity, letting GCC recover quickly after a
# coverage fade instead of crawling up at 8%/s.
_CAPACITY_PROBE_INTERVAL = 2.0
_PROBE_BURST_PACKETS = 8
_PROBE_PACKET_BYTES = 800
_PADDING_SSRC = 0
# Cap on in-flight packets rerouted when a path dies.  A path that
# dies with a deep unacked backlog mostly held stale media; replaying
# all of it onto the survivors would displace live frames, so only the
# newest packets (the ones a receiver could still render) are saved.
_REROUTE_LIMIT = 64


@dataclass
class _StreamSender:
    ssrc: int
    encoder: Encoder
    packetizer: Packetizer
    camera: CameraSource
    rtx_history: Dict[int, RtpPacket]
    rtx_order: Deque[int]
    # Set when shedding broke the reference chain: delta frames are
    # pointless to send until a keyframe re-anchors the decoder.
    chain_broken: bool = False
    frames_dropped_at_sender: int = 0


class SenderSession:
    """Drives all outgoing media for one endpoint of the call."""

    def __init__(
        self,
        sim: Simulator,
        paths: PathSet,
        config: CallConfig,
        scheduler: Scheduler,
        metrics: MetricsCollector | None = None,
        send_rtcp_to_receiver: Optional[Callable[[RtcpMessage], None]] = None,
    ) -> None:
        self.sim = sim
        self.paths = paths
        self.config = config
        self.scheduler = scheduler
        self.metrics = metrics or MetricsCollector()
        self._send_rtcp_to_receiver = send_rtcp_to_receiver
        self.path_manager = PathManager(
            sim, paths, config.gcc, config.watchdog, self.metrics
        )
        self.pacer = Pacer(sim, self._send_on_path)
        self._fec_seq = 1_000_000  # FEC/RTX use their own sequence space
        self._rtx_seq = 2_000_000
        self.nacks_received = 0
        self.packets_shed = 0
        self._last_shed_keyframe = -1e9

        self._streams: Dict[int, _StreamSender] = {}
        for index in range(config.num_streams):
            ssrc = index + 1
            encoder_config = dataclasses.replace(
                config.encoder_template,
                ssrc=ssrc,
                frame_rate=config.frame_rate,
                max_bitrate=config.max_rate_per_stream,
            )
            encoder = Encoder(encoder_config, sim.streams)
            packetizer = Packetizer(ssrc)
            camera = CameraSource(
                sim,
                config.frame_rate,
                on_capture=(
                    lambda t, _ssrc=ssrc: self._on_capture(_ssrc, t)
                ),
                start_offset=index * (1.0 / config.frame_rate / max(config.num_streams, 1)),
            )
            self._streams[ssrc] = _StreamSender(
                ssrc=ssrc,
                encoder=encoder,
                packetizer=packetizer,
                camera=camera,
                rtx_history={},
                rtx_order=deque(),
            )

        self._converge_fec = ConvergeFecController()
        self._webrtc_fec = WebRtcFecController()
        self._rtx_window: Deque[Tuple[float, int]] = deque()
        self._rtx_window_bytes = 0  # running sum of the window's sizes
        self._rate_process = PeriodicProcess(
            sim, _RATE_UPDATE_INTERVAL, self._update_rates
        )
        self._sdes_process = PeriodicProcess(
            sim, _SDES_INTERVAL, self._announce_frame_rate
        )
        self._probe_process = PeriodicProcess(
            sim, _CAPACITY_PROBE_INTERVAL, self._send_capacity_probes
        )
        self._padding_seq = 3_000_000

    @property
    def ssrcs(self) -> List[int]:
        return list(self._streams)

    # -- encode & schedule -------------------------------------------------

    def _on_capture(self, ssrc: int, capture_time: float) -> None:
        stream = self._streams[ssrc]
        frame = stream.encoder.encode_frame(capture_time)
        if stream.chain_broken:
            if frame.is_keyframe:
                stream.chain_broken = False
            else:
                # The decoder cannot use this delta anyway; dropping it
                # at the encoder (as WebRTC does) saves the bandwidth
                # for the keyframe that repairs the chain.  Keep
                # re-requesting that keyframe — a shed event inside the
                # limiter window must not leave the chain broken with
                # no repair pending.
                stream.frames_dropped_at_sender += 1
                if capture_time - self._last_shed_keyframe > 0.15:
                    self._last_shed_keyframe = capture_time
                    stream.encoder.request_keyframe()
                return
        self.metrics.record_encoded_frame(
            ssrc,
            frame.frame_id,
            capture_time,
            frame.size_bytes,
            frame.qp,
            frame.is_keyframe,
        )
        packets = stream.packetizer.packetize(frame)
        for packet in packets:
            self._remember_for_rtx(stream, packet)
        self._schedule_round(stream, packets, frame.is_keyframe)

    def _schedule_round(
        self,
        stream: _StreamSender,
        packets: List[RtpPacket],
        is_keyframe: bool,
    ) -> None:
        now = self.sim.now
        avg_size = max(
            sum(p.size_bytes for p in packets) // max(len(packets), 1), 1
        )
        snapshots = self.path_manager.snapshots(len(packets), avg_size, now)

        to_schedule = list(packets)
        if self.config.fec_mode is FecMode.WEBRTC_TABLE:
            to_schedule.extend(
                self._make_webrtc_fec(stream, packets, is_keyframe)
            )
        assignments = self.scheduler.assign(to_schedule, snapshots, now)
        shed = [p for p, path_id in assignments if path_id == DROP_PATH]
        if shed:
            # Packets shed at the sender break the frame they belong
            # to.  Mark the chain broken — subsequent deltas are
            # dropped whole at the encoder — and schedule a keyframe
            # to re-anchor, rate-limited so sustained overload does
            # not turn into a keyframe-per-frame burst storm.
            self.packets_shed += len(shed)
            stream.chain_broken = True
            if now - self._last_shed_keyframe > 0.15:
                self._last_shed_keyframe = now
                stream.encoder.request_keyframe()
            # A partially-shed frame is undecodable: sending the rest
            # of it would only waste bandwidth, so drop this stream's
            # whole round (priority packets of *other* frames — RTX —
            # keep flowing).
            shed_frames = {p.frame_id for p in shed}
            assignments = [
                (p, path_id)
                for p, path_id in assignments
                if path_id != DROP_PATH and p.frame_id not in shed_frames
            ]
            stream.frames_dropped_at_sender += len(shed_frames)
        if self.config.fec_mode is FecMode.CONVERGE:
            assignments.extend(
                self._make_converge_fec(stream, assignments, now)
            )
        for packet, path_id in assignments:
            self.pacer.enqueue(packet, path_id)
        self._maybe_probe(now)

    # -- FEC generation ------------------------------------------------------

    def _make_webrtc_fec(
        self,
        stream: _StreamSender,
        packets: List[RtpPacket],
        is_keyframe: bool,
    ) -> List[RtpPacket]:
        """Application-level FEC over the whole frame (WebRTC table)."""
        media = [p for p in packets if p.packet_type is not PacketType.FEC]
        num_fec = self._webrtc_fec.num_fec_packets(len(media), is_keyframe)
        return self._build_fec_packets(stream, media, num_fec)

    def _make_converge_fec(
        self,
        stream: _StreamSender,
        assignments: List[Tuple[RtpPacket, int]],
        now: float,
    ) -> List[Tuple[RtpPacket, int]]:
        """Path-specific FEC over each path's share of the round (§4.3)."""
        by_path: Dict[int, List[RtpPacket]] = {}
        for packet, path_id in assignments:
            if packet.packet_type is not PacketType.FEC:
                by_path.setdefault(path_id, []).append(packet)
        fec_assignments: List[Tuple[RtpPacket, int]] = []
        # Reliability-level control (§3.1, Fig. 6): protection packets
        # for a lossy path's media travel on the cleanest path, so a
        # slow-path loss is repairable without waiting for RTX.
        enabled = self.path_manager.enabled_path_ids()
        cleanest = min(
            enabled,
            key=lambda pid: (
                self.path_manager.loss_estimate(pid),
                self.path_manager.srtt(pid),
            ),
            default=None,
        )
        for path_id, media in by_path.items():
            loss = self.path_manager.loss_for_fec(path_id)
            num_fec = self._converge_fec.num_fec_packets(
                path_id, len(media), loss, now
            )
            # Video-structure-aware protection (§3.3): packets whose
            # loss breaks the decode chain (keyframes, parameter sets,
            # retransmissions) get doubled protection, as WebRTC does
            # for keyframes — but path-specific here.
            critical = any(
                p.packet_type
                in (
                    PacketType.KEYFRAME,
                    PacketType.SPS,
                    PacketType.PPS,
                    PacketType.RETRANSMISSION,
                )
                for p in media
            ) and any(p.frame_type == "key" for p in media)
            if critical:
                num_fec = min(2 * num_fec, len(media))
                if num_fec == 0 and loss > 0:
                    num_fec = 1
            fec_path = path_id
            if (
                cleanest is not None
                and cleanest != path_id
                and self.path_manager.loss_estimate(path_id)
                > self.path_manager.loss_estimate(cleanest) + 0.005
            ):
                fec_path = cleanest
            for fec in self._build_fec_packets(stream, media, num_fec):
                fec_assignments.append((fec, fec_path))
        return fec_assignments

    def _build_fec_packets(
        self,
        stream: _StreamSender,
        media: List[RtpPacket],
        num_fec: int,
    ) -> List[RtpPacket]:
        """Split ``media`` into XOR groups, one FEC packet per group."""
        if num_fec <= 0 or not media:
            return []
        num_fec = min(num_fec, len(media))
        max_group = self.config.fec_group_size
        groups: List[List[RtpPacket]] = [[] for _ in range(num_fec)]
        for index, packet in enumerate(media):
            groups[index % num_fec].append(packet)
        fec_packets: List[RtpPacket] = []
        for group in groups:
            if not group:
                continue
            group = group[:max_group]
            template = group[0]
            self._fec_seq += 1
            fec_packets.append(
                RtpPacket(
                    ssrc=stream.ssrc,
                    seq=self._fec_seq,
                    timestamp=template.timestamp,
                    frame_id=template.frame_id,
                    frame_type=template.frame_type,
                    packet_type=PacketType.FEC,
                    payload_size=max(p.payload_size for p in group),
                    capture_time=template.capture_time,
                    gop_id=template.gop_id,
                    protected_seqs=[p.seq for p in group],
                    protected_packets=list(group),
                )
            )
        return fec_packets

    # -- RTCP in ----------------------------------------------------------------

    def on_rtcp(self, message: RtcpMessage) -> None:
        """Entry point for all receiver-to-sender RTCP."""
        if isinstance(message, TransportFeedback):
            self.path_manager.on_transport_feedback(message)
            # Late feedback for a path that already left the call is
            # still possible (its last report rides a surviving path).
            if self.path_manager.has_path(message.path_id):
                self.pacer.set_path_rate(
                    message.path_id,
                    self.path_manager.pacing_rate(message.path_id),
                )
        elif isinstance(message, ReceiverReport):
            self.path_manager.on_receiver_report(message)
            self._webrtc_fec.on_loss_report(self.path_manager.aggregate_loss())
        elif isinstance(message, Nack):
            self._handle_nack(message)
        elif isinstance(message, KeyframeRequest):
            stream = self._streams.get(message.ssrc)
            if stream is not None:
                stream.encoder.request_keyframe()
        elif isinstance(message, QoeFeedback):
            if (
                self.config.qoe_feedback_enabled
                and self.scheduler.uses_qoe_feedback
            ):
                self.path_manager.on_qoe_feedback(message)

    def _handle_nack(self, message: Nack) -> None:
        stream = self._streams.get(message.ssrc)
        if stream is None:
            return
        now = self.sim.now
        rtx_packets: List[RtpPacket] = []
        for seq in message.seqs:
            original = stream.rtx_history.get(seq)
            if original is None:
                continue
            self.nacks_received += 1
            if not self._rtx_budget_allows(original.size_bytes, now):
                continue
            if (
                self.config.fec_mode is FecMode.CONVERGE
                and original.path_id >= 0
            ):
                self._converge_fec.on_nack(original.path_id, 1, now)
            self._rtx_seq += 1
            rtx_packets.append(
                original.clone_for_retransmission(self._rtx_seq, now)
            )
        if not rtx_packets:
            return
        avg_size = max(
            sum(p.size_bytes for p in rtx_packets) // len(rtx_packets), 1
        )
        snapshots = self.path_manager.snapshots(
            len(rtx_packets), avg_size, now
        )
        for packet, path_id in self.scheduler.assign(
            rtx_packets, snapshots, now
        ):
            self.pacer.enqueue(packet, path_id)

    def _rtx_budget_allows(self, size_bytes: int, now: float) -> bool:
        window = self._rtx_window
        while window and window[0][0] < now - 1.0:
            self._rtx_window_bytes -= window.popleft()[1]
        budget = _RTX_RATE_FRACTION * max(
            self.path_manager.aggregate_rate(), 300_000.0
        )
        spent = self._rtx_window_bytes * 8
        if spent + size_bytes * 8 > budget:
            return False
        window.append((now, size_bytes))
        self._rtx_window_bytes += size_bytes
        return True

    # -- periodic upkeep -----------------------------------------------------------

    def _update_rates(self) -> None:
        aggregate = self.path_manager.effective_aggregate_rate(
            frame_rate=self.config.frame_rate
        )
        # The GCC target is a *transport* budget: FEC and header bytes
        # ride inside it, so the encoder gets what is left after
        # protection (WebRTC's media-optimization split).  Without
        # this, table-FEC overhead stacks on top of the target and
        # self-congests the path.
        media_fraction = (
            1.0 - self._expected_fec_overhead()
        ) * self.config.encoder_utilization
        per_stream = aggregate * media_fraction / max(self.config.num_streams, 1)
        for stream in self._streams.values():
            stream.encoder.set_target_bitrate(per_stream)
        self.metrics.record_target_rate(self.sim.now, aggregate)
        for path_id in self.paths.path_ids:
            # Pace at the watchdog-effective rate: a feedback-silent
            # path must not keep draining packets at its stale GCC
            # target into what may be a dead link.
            rate = self.path_manager.pacing_rate(path_id)
            self.pacer.set_path_rate(path_id, rate)
            self.metrics.record_path_rate(self.sim.now, path_id, rate)

    def _expected_fec_overhead(self) -> float:
        """Fraction of the transport budget FEC will consume."""
        if self.config.fec_mode is FecMode.WEBRTC_TABLE:
            overhead = webrtc_protection_factor(
                self._webrtc_fec.aggregate_loss
            )
        elif self.config.fec_mode is FecMode.CONVERGE:
            total_rate = 0.0
            weighted = 0.0
            for path_id in self.path_manager.enabled_path_ids():
                rate = self.path_manager.target_rate(path_id)
                loss = self.path_manager.loss_estimate(path_id)
                beta = self._converge_fec.beta(path_id)
                total_rate += rate
                weighted += rate * min(loss * beta, 1.0)
            overhead = weighted / total_rate if total_rate > 0 else 0.0
        else:
            overhead = 0.0
        return min(overhead, 0.5)

    def _announce_frame_rate(self) -> None:
        if self._send_rtcp_to_receiver is None:
            return
        for ssrc in self._streams:
            self._send_rtcp_to_receiver(
                SdesFrameRate(
                    ssrc=ssrc,
                    path_id=-1,
                    send_time=self.sim.now,
                    frame_rate=self.config.frame_rate,
                )
            )

    def _send_capacity_probes(self) -> None:
        """Send a padding burst on each healthy path (PROBE_BWE)."""
        now = self.sim.now
        for path_id in self.path_manager.enabled_path_ids():
            if self.path_manager.is_degraded(path_id):
                # Feedback-silent: a probe burst would measure nothing
                # (no feedback comes back) and only loads the path.
                continue
            if not self.path_manager.carries_media(path_id, now):
                # Never probe an idle path: its inflated estimate would
                # leak into the encoder budget without any media there
                # to validate it.
                continue
            if self.path_manager.loss_estimate(path_id) > 0.08:
                continue
            srtt = self.path_manager.srtt(path_id)
            min_rtt = self.path_manager.min_rtt(path_id)
            if min_rtt > 0 and srtt > min_rtt + 0.08:
                continue  # standing queue: probing would only add to it
            path = self.paths.get(path_id)
            for _ in range(_PROBE_BURST_PACKETS):
                self._padding_seq += 1
                padding = RtpPacket(
                    ssrc=_PADDING_SSRC,
                    seq=self._padding_seq,
                    timestamp=0,
                    frame_id=-1,
                    frame_type="delta",
                    packet_type=PacketType.MEDIA,
                    payload_size=_PROBE_PACKET_BYTES,
                )
                self.path_manager.bind(padding, path_id, now)
                path.send(padding)

    def _maybe_probe(self, now: float) -> None:
        for path_id in self.path_manager.disabled_path_ids():
            if self.path_manager.should_probe(path_id, now):
                probe = self.path_manager.make_probe(path_id, now)
                if probe is not None:
                    # Probes bypass the pacer: they are single duplicate
                    # packets used purely for path measurement.
                    self.paths.get(path_id).send(probe)

    # -- path lifecycle ----------------------------------------------------------

    def on_path_added(self, path_id: int) -> None:
        """Register sender-side state for a path born mid-call."""
        self.path_manager.add_path(path_id)
        self.pacer.set_path_rate(
            path_id, self.path_manager.pacing_rate(path_id)
        )
        self.scheduler.on_path_added(path_id)

    def begin_path_drain(self, path_id: int) -> None:
        """Graceful removal, leg one: stop new media, keep feedback."""
        self.path_manager.begin_drain(path_id)

    def on_path_removed(self, path_id: int) -> None:
        """Tear down sender state for a path that left the call.

        Packets still unacknowledged on the dying path — both those on
        the wire (tracked by the path manager) and those waiting in its
        pacer queue — are rerouted to the surviving paths.  Sent-but-
        unacked media goes out as priority retransmissions (Table 2
        priority 1, so the fast-path rule applies); never-sent queue
        residue is rescheduled as-is.  Path-specific FEC and padding
        probes for the dead path are discarded: their redundancy
        targets no longer exist.
        """
        now = self.sim.now
        in_flight = self.path_manager.remove_path(path_id)
        leftover = self.pacer.drain_path(path_id)
        self.scheduler.on_path_removed(path_id)
        self._converge_fec.forget_path(path_id)

        rtx_packets: List[RtpPacket] = []
        wanted = set(in_flight[-_REROUTE_LIMIT:])
        if wanted:
            for stream in self._streams.values():
                for original in stream.rtx_history.values():
                    if (
                        original.path_id == path_id
                        and original.mp_transport_seq in wanted
                    ):
                        self._rtx_seq += 1
                        rtx_packets.append(
                            original.clone_for_retransmission(
                                self._rtx_seq, now
                            )
                        )
        to_reroute = rtx_packets + [
            p
            for p in leftover
            if isinstance(p, RtpPacket)
            and p.ssrc != _PADDING_SSRC
            and p.packet_type is not PacketType.FEC
        ]
        if not to_reroute:
            return
        avg_size = max(
            sum(p.size_bytes for p in to_reroute) // len(to_reroute), 1
        )
        snapshots = self.path_manager.snapshots(
            len(to_reroute), avg_size, now
        )
        if not snapshots:
            return
        # The reroute bypasses the RTX rate budget: this traffic was
        # already admitted once, on the path that just vanished.
        for packet, target in self.scheduler.assign(
            to_reroute, snapshots, now
        ):
            if target == DROP_PATH:
                self.packets_shed += 1
                continue
            self.pacer.enqueue(packet, target)

    # -- egress ------------------------------------------------------------------

    def _send_on_path(self, packet: RtpPacket, path_id: int) -> None:
        self.path_manager.bind(packet, path_id, self.sim.now)
        kind = "media"
        if packet.packet_type is PacketType.FEC:
            kind = "fec"
        elif packet.packet_type is PacketType.RETRANSMISSION:
            kind = "rtx"
        self.metrics.record_packet_sent(path_id, kind, packet.size_bytes)
        self.paths.get(path_id).send(packet)

    # -- helpers --------------------------------------------------------------------

    def _remember_for_rtx(self, stream: _StreamSender, packet: RtpPacket) -> None:
        stream.rtx_history[packet.seq] = packet
        stream.rtx_order.append(packet.seq)
        while len(stream.rtx_order) > _RTX_HISTORY_LIMIT:
            old = stream.rtx_order.popleft()
            stream.rtx_history.pop(old, None)

    def stop(self) -> None:
        self._rate_process.stop()
        self._sdes_process.stop()
        self._probe_process.stop()
        self.path_manager.stop()
        for stream in self._streams.values():
            stream.camera.stop()
