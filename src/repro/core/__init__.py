"""Converge conference core: sender, receiver wiring, call orchestration.

The public entry points are :func:`repro.core.api.run_call` and the
:class:`repro.core.session.ConferenceCall` it drives; the system
variants of the paper's evaluation (Converge, WebRTC single-path,
WebRTC-CM, SRTT, M-TPUT, M-RTP) are built by
:func:`repro.core.api.build_call_config`.
"""

from repro.core.config import CallConfig, FecMode, SystemKind
from repro.core.session import CallResult, ConferenceCall
from repro.core.api import build_call_config, run_call
from repro.core.signaling import (
    IceAgent,
    SdpAnswer,
    SdpOffer,
    negotiate_multipath,
)

__all__ = [
    "CallConfig",
    "CallResult",
    "ConferenceCall",
    "FecMode",
    "IceAgent",
    "SdpAnswer",
    "SdpOffer",
    "SystemKind",
    "build_call_config",
    "negotiate_multipath",
    "run_call",
]
