"""Loss-based branch of GCC.

Per the GCC design [6]: loss above 10% backs the rate off
proportionally, loss below 2% probes upward by 5% per report, anything
in between holds.
"""

from __future__ import annotations


class LossBasedController:
    """Rate controller driven by RTCP fraction-lost reports."""

    def __init__(
        self,
        initial_rate: float,
        min_rate: float = 100_000.0,
        max_rate: float = 30_000_000.0,
    ) -> None:
        if initial_rate <= 0:
            raise ValueError("initial rate must be positive")
        self.rate = min(max(initial_rate, min_rate), max_rate)
        self.min_rate = min_rate
        self.max_rate = max_rate

    def update(self, fraction_lost: float) -> float:
        """Apply one loss report and return the new rate."""
        if not 0.0 <= fraction_lost <= 1.0:
            raise ValueError(f"fraction lost out of range: {fraction_lost}")
        if fraction_lost > 0.10:
            self.rate *= 1.0 - 0.5 * fraction_lost
        elif fraction_lost < 0.02:
            self.rate *= 1.05
        self.rate = min(max(self.rate, self.min_rate), self.max_rate)
        return self.rate
