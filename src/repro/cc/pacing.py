"""Per-path pacer.

WebRTC never dumps a whole encoded frame onto the wire at once; the
pacer smooths each burst out at a multiple of the target rate so the
delay-based estimator sees queue growth caused by the *network*, not by
the sender's own bursts.  We implement the same idea per path: packets
are queued and released at ``pacing_factor * path_rate``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List

from repro.simulation.events import Event
from repro.simulation.simulator import Simulator

# Real WebRTC paces at 2.5x target, but its trendline copes with the
# resulting sawtooth micro-queues better than a least-squares fit on a
# simulated clean link does; 1.5x keeps the delay-based estimator's
# operating point near capacity while still draining frame bursts well
# within a frame interval.
_DEFAULT_PACING_FACTOR = 1.5
_MIN_PACING_RATE = 300_000.0


class Pacer:
    """Releases queued packets per path at a paced rate."""

    def __init__(
        self,
        sim: Simulator,
        send_fn: Callable[[object, int], None],
        pacing_factor: float = _DEFAULT_PACING_FACTOR,
    ) -> None:
        self.sim = sim
        self._send_fn = send_fn
        self.pacing_factor = pacing_factor
        self._queues: Dict[int, Deque[object]] = {}
        self._rates: Dict[int, float] = {}
        self._draining: Dict[int, bool] = {}
        # One reusable drain event per path: re-armed on every release
        # instead of allocating a closure + event per packet.
        self._drain_events: Dict[int, Event] = {}

    def set_path_rate(self, path_id: int, rate_bps: float) -> None:
        """Update the target rate the pacer multiplies for ``path_id``."""
        self._rates[path_id] = max(rate_bps, 0.0)

    def enqueue(self, packet: object, path_id: int) -> None:
        """Queue ``packet`` for paced transmission on ``path_id``."""
        queue = self._queues.get(path_id)
        if queue is None:
            queue = self._queues[path_id] = deque()
        queue.append(packet)
        if not self._draining.get(path_id, False):
            self._draining[path_id] = True
            event = self._drain_events.get(path_id)
            if event is None:
                self._drain_events[path_id] = self.sim.schedule(
                    0.0, self._drain, path_id
                )
            else:
                self.sim.reschedule(event, 0.0)

    def _drain(self, path_id: int) -> None:
        queue = self._queues.get(path_id)
        if not queue:
            self._draining[path_id] = False
            return
        packet = queue.popleft()
        self._send_fn(packet, path_id)
        pacing_rate = self._rates.get(path_id, 0.0) * self.pacing_factor
        if pacing_rate < _MIN_PACING_RATE:
            pacing_rate = _MIN_PACING_RATE
        gap = packet.size_bytes * 8 / pacing_rate
        self.sim.reschedule(self._drain_events[path_id], gap)

    def queued_packets(self, path_id: int) -> int:
        return len(self._queues.get(path_id, ()))

    def drain_path(self, path_id: int) -> List[object]:
        """Pull everything queued for ``path_id`` and forget the path.

        Used when a path dies mid-call: the still-queued packets are
        returned to the caller (which reroutes the ones worth saving)
        instead of being paced into a link that no longer exists.
        """
        queue = self._queues.pop(path_id, None)
        self._rates.pop(path_id, None)
        self._draining.pop(path_id, None)
        event = self._drain_events.pop(path_id, None)
        if event is not None:
            event.cancel()
        return list(queue) if queue else []
