"""AIMD rate controller of GCC's delay-based branch."""

from __future__ import annotations

from enum import Enum
from typing import Optional


class BandwidthUsage(Enum):
    """Overuse-detector output signal."""

    NORMAL = "normal"
    OVERUSE = "overuse"
    UNDERUSE = "underuse"


class RateControlState(Enum):
    HOLD = "hold"
    INCREASE = "increase"
    DECREASE = "decrease"


_BETA = 0.85
_MULTIPLICATIVE_INCREASE_PER_SECOND = 0.08
_NEAR_CONVERGENCE_WINDOW = 0.25  # +-25% of the last decrease point


class AimdRateController:
    """Additive-increase / multiplicative-decrease around link capacity.

    State machine per the GCC paper: overuse forces DECREASE (back off
    to ``beta * incoming_rate``), underuse forces HOLD (let queues
    drain), normal moves HOLD -> INCREASE.  Increase is multiplicative
    while far from the rate at which overuse last occurred, additive
    (one packet per response time) when near it.
    """

    def __init__(
        self,
        initial_rate: float,
        min_rate: float = 100_000.0,
        max_rate: float = 30_000_000.0,
    ) -> None:
        if initial_rate <= 0:
            raise ValueError("initial rate must be positive")
        self.rate = min(max(initial_rate, min_rate), max_rate)
        self.min_rate = min_rate
        self.max_rate = max_rate
        self.state = RateControlState.INCREASE
        self._last_update: Optional[float] = None
        self._link_capacity_estimate: Optional[float] = None

    def update(
        self,
        usage: BandwidthUsage,
        incoming_rate: float,
        now: float,
        rtt: float = 0.1,
        offered_rate: float | None = None,
    ) -> float:
        """Advance the state machine and return the new target rate.

        ``offered_rate`` is how fast the sender actually pushed packets
        onto this path.  When the path is underused (offered well below
        the target — common for the slower path of an uncoupled
        multipath sender), the incoming rate says nothing about the
        path's capacity, so the 1.5x-incoming cap must not apply or the
        estimate deadlocks at whatever trickle the scheduler sends.
        """
        self._transition(usage)
        elapsed = 0.0
        if self._last_update is not None:
            elapsed = max(now - self._last_update, 0.0)
        self._last_update = now
        path_saturated = (
            offered_rate is not None and offered_rate >= 0.75 * self.rate
        )

        if self.state is RateControlState.INCREASE:
            if self._near_convergence(incoming_rate):
                # Additive: about one MTU per response time.
                response_time = rtt + 0.1
                additive = 0.5 * 1200 * 8 / max(response_time, 1e-3)
                self.rate += additive * elapsed
            elif path_saturated:
                factor = (1 + _MULTIPLICATIVE_INCREASE_PER_SECOND) ** min(
                    elapsed, 1.0
                )
                self.rate *= factor
            # Never run more than 1.5x ahead of what is arriving — but
            # only when we genuinely tried to send at the target.
            if incoming_rate > 0 and path_saturated:
                self.rate = min(self.rate, 1.5 * incoming_rate + 10_000)
        elif self.state is RateControlState.DECREASE:
            base = incoming_rate if incoming_rate > 0 else self.rate
            self.rate = _BETA * base
            self._link_capacity_estimate = incoming_rate
            self.state = RateControlState.HOLD
        # HOLD: keep the rate.

        self.rate = min(max(self.rate, self.min_rate), self.max_rate)
        return self.rate

    def _transition(self, usage: BandwidthUsage) -> None:
        if usage is BandwidthUsage.OVERUSE:
            self.state = RateControlState.DECREASE
        elif usage is BandwidthUsage.UNDERUSE:
            self.state = RateControlState.HOLD
        else:  # NORMAL
            if self.state is RateControlState.HOLD:
                self.state = RateControlState.INCREASE
            elif self.state is RateControlState.DECREASE:
                self.state = RateControlState.HOLD

    def _near_convergence(self, incoming_rate: float) -> bool:
        if self._link_capacity_estimate is None:
            return False
        lower = (1 - _NEAR_CONVERGENCE_WINDOW) * self._link_capacity_estimate
        upper = (1 + _NEAR_CONVERGENCE_WINDOW) * self._link_capacity_estimate
        return lower <= incoming_rate <= upper
