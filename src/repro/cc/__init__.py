"""Google Congestion Control (GCC), one uncoupled instance per path.

Implements the architecture of Carlucci et al. [6]: a delay-based
controller (inter-arrival trendline estimator + adaptive-threshold
overuse detector + AIMD rate controller) combined with a loss-based
controller; the sender uses the minimum of the two rates.  Converge
runs one independent ("uncoupled", §4.1) instance per network path and
sums the per-path rates into the encoder target.
"""

from repro.cc.aimd import AimdRateController, BandwidthUsage
from repro.cc.delay_based import OveruseDetector, TrendlineEstimator
from repro.cc.loss_based import LossBasedController
from repro.cc.gcc import GccConfig, GoogleCongestionControl

__all__ = [
    "AimdRateController",
    "BandwidthUsage",
    "GccConfig",
    "GoogleCongestionControl",
    "LossBasedController",
    "OveruseDetector",
    "TrendlineEstimator",
]
