"""Delay-based bandwidth estimation: trendline filter + overuse detector.

Follows the WebRTC ``trendline_estimator`` design: per acked packet we
compute the one-way delay gradient ``(arrival_i - arrival_{i-1}) -
(send_i - send_{i-1})``, accumulate and smooth it, then fit a line over
the recent window.  A positive slope sustained past an adaptive
threshold signals overuse (queues building), a negative one underuse.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.cc.aimd import BandwidthUsage

_WINDOW_SIZE = 20
_SMOOTHING = 0.9
_THRESHOLD_GAIN = 4.0
_OVERUSE_TIME_THRESHOLD = 0.01  # seconds of sustained overuse
_MAX_ADAPT_OFFSET = 15.0  # ms, ignore spikes when adapting threshold
_K_UP = 0.0087
_K_DOWN = 0.039
# Packets sent within this window form one group; the delay gradient is
# computed between groups, not packets, so the sender's own frame
# bursts do not masquerade as queue growth (WebRTC's InterArrival).
_BURST_WINDOW = 0.005


class TrendlineEstimator:
    """Estimates the delay-gradient trend from (send, arrival) pairs.

    Packets are aggregated into send-side burst groups of at most
    ``_BURST_WINDOW`` seconds; one smoothed-delay sample is produced
    per completed group and the trend is the least-squares slope over
    the recent samples.
    """

    def __init__(self) -> None:
        self._prev_group: Optional[Tuple[float, float]] = None
        self._group_first_send: Optional[float] = None
        self._group_last_send = 0.0
        self._group_last_arrival = 0.0
        self._acc_delay_ms = 0.0
        self._smoothed_delay_ms = 0.0
        self._history: Deque[Tuple[float, float]] = deque(maxlen=_WINDOW_SIZE)
        self._first_arrival: Optional[float] = None
        self.trend = 0.0
        self.num_groups = 0

    def update(self, send_time: float, arrival_time: float) -> float:
        """Feed one acked packet; returns the current trend (ms/ms slope)."""
        if self._first_arrival is None:
            self._first_arrival = arrival_time
        if self._group_first_send is None:
            self._start_group(send_time, arrival_time)
            return self.trend
        if send_time - self._group_first_send <= _BURST_WINDOW:
            # Same burst group: extend it.
            if send_time > self._group_last_send:
                self._group_last_send = send_time
            if arrival_time > self._group_last_arrival:
                self._group_last_arrival = arrival_time
            return self.trend
        self._close_group()
        self._start_group(send_time, arrival_time)
        return self.trend

    def _start_group(self, send_time: float, arrival_time: float) -> None:
        self._group_first_send = send_time
        self._group_last_send = send_time
        self._group_last_arrival = arrival_time

    def _close_group(self) -> None:
        group = (self._group_last_send, self._group_last_arrival)
        if self._prev_group is not None:
            prev_send, prev_arrival = self._prev_group
            delta_ms = (
                (group[1] - prev_arrival) - (group[0] - prev_send)
            ) * 1000.0
            self._acc_delay_ms += delta_ms
            self._smoothed_delay_ms = (
                _SMOOTHING * self._smoothed_delay_ms
                + (1 - _SMOOTHING) * self._acc_delay_ms
            )
            assert self._first_arrival is not None
            self._history.append(
                (
                    (group[1] - self._first_arrival) * 1000.0,
                    self._smoothed_delay_ms,
                )
            )
            self.num_groups += 1
            if len(self._history) >= 2:
                self.trend = self._linear_fit_slope()
        self._prev_group = group

    def _linear_fit_slope(self) -> float:
        # Two explicit passes instead of four generator-expression
        # sums; per-term accumulation order is unchanged, so the float
        # results are bit-identical.
        history = self._history
        n = len(history)
        sum_x = 0.0
        sum_y = 0.0
        for x, y in history:
            sum_x += x
            sum_y += y
        mean_x = sum_x / n
        mean_y = sum_y / n
        numerator = 0.0
        denominator = 0.0
        for x, y in history:
            dx = x - mean_x
            numerator += dx * (y - mean_y)
            denominator += dx ** 2
        if denominator == 0:
            return 0.0
        return numerator / denominator


class OveruseDetector:
    """Turns the trend into overuse/underuse/normal with hysteresis."""

    def __init__(self) -> None:
        self._threshold_ms = 12.5
        self._last_update: Optional[float] = None
        self._overuse_start: Optional[float] = None
        self._overuse_count = 0
        self.state = BandwidthUsage.NORMAL

    def detect(self, trend: float, now: float, num_samples: int) -> BandwidthUsage:
        """Classify the current trend measured at time ``now``."""
        modified_trend = (
            (num_samples if num_samples < 60 else 60) * trend * _THRESHOLD_GAIN
        )
        if modified_trend > self._threshold_ms:
            if self._overuse_start is None:
                self._overuse_start = now
                self._overuse_count = 0
            self._overuse_count += 1
            sustained = now - self._overuse_start >= _OVERUSE_TIME_THRESHOLD
            if sustained and self._overuse_count > 1:
                self.state = BandwidthUsage.OVERUSE
        elif modified_trend < -self._threshold_ms:
            self._overuse_start = None
            self.state = BandwidthUsage.UNDERUSE
        else:
            self._overuse_start = None
            self.state = BandwidthUsage.NORMAL
        self._adapt_threshold(modified_trend, now)
        return self.state

    def _adapt_threshold(self, modified_trend: float, now: float) -> None:
        if self._last_update is None:
            self._last_update = now
        magnitude = abs(modified_trend)
        threshold = self._threshold_ms
        if magnitude > threshold + _MAX_ADAPT_OFFSET:
            self._last_update = now
            return
        k = _K_DOWN if magnitude < threshold else _K_UP
        elapsed_ms = (now - self._last_update) * 1000.0
        if elapsed_ms > 100.0:
            elapsed_ms = 100.0
        threshold += k * (magnitude - threshold) * elapsed_ms
        if threshold < 6.0:
            threshold = 6.0
        elif threshold > 600.0:
            threshold = 600.0
        self._threshold_ms = threshold
        self._last_update = now

    @property
    def threshold_ms(self) -> float:
        return self._threshold_ms
