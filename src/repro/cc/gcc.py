"""Per-path Google Congestion Control facade.

One instance per network path ("uncoupled" congestion control, §4.1).
The sender feeds it transport-wide feedback (acked packets with send
and arrival times) and receiver reports (fraction lost); it exposes the
per-path sending rate ``S_i``, a smoothed RTT, the measured goodput,
and the per-path loss estimate that the FEC controllers consume.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from operator import itemgetter
from typing import Deque, List, Tuple

from repro.cc.aimd import AimdRateController, BandwidthUsage
from repro.cc.delay_based import OveruseDetector, TrendlineEstimator
from repro.cc.loss_based import LossBasedController

_RATE_WINDOW = 1.0  # seconds of acked bytes for the incoming-rate estimate
_RTT_SMOOTHING = 0.125  # classic SRTT gain
_LOSS_SMOOTHING = 0.3
_STANDING_QUEUE_DELAY = 0.08  # srtt this far above min-RTT forces back-off
_PROBE_MIN_PACKETS = 5  # burst length needed for a capacity estimate
_PROBE_SEND_GAP = 0.0015  # max send spacing within a probe burst
_LOSS_PEAK_TAU = 3.0  # decay constant of the peak-hold loss tracker


@dataclass
class GccConfig:
    """Tunables for one GCC instance."""

    initial_rate: float = 1_000_000.0
    min_rate: float = 100_000.0
    max_rate: float = 30_000_000.0


class GoogleCongestionControl:
    """Combined delay-based and loss-based controller for one path."""

    def __init__(self, path_id: int, config: GccConfig | None = None) -> None:
        self.path_id = path_id
        self.config = config or GccConfig()
        self._trendline = TrendlineEstimator()
        self._detector = OveruseDetector()
        self._aimd = AimdRateController(
            self.config.initial_rate, self.config.min_rate, self.config.max_rate
        )
        self._loss_controller = LossBasedController(
            self.config.initial_rate, self.config.min_rate, self.config.max_rate
        )
        self._acked: Deque[Tuple[float, int]] = deque()  # (arrival, bytes)
        self._sent_acked: Deque[Tuple[float, int]] = deque()  # (send, bytes)
        # Running byte totals of the two windows above (exact — packet
        # sizes are ints), replacing an O(window) sum() per feedback.
        self._acked_bytes = 0
        self._sent_acked_bytes = 0
        self._num_samples = 0
        self.srtt = 0.1
        self.min_rtt = float("inf")
        self.loss_estimate = 0.0
        self.loss_peak = 0.0
        self._loss_peak_time = -1.0
        self.incoming_rate = 0.0

    # -- inputs ----------------------------------------------------------

    def on_transport_feedback(
        self,
        acked: List[Tuple[float, float, int]],
        lost_count: int,
        now: float,
    ) -> None:
        """Process acked packets: ``(send_time, arrival_time, size_bytes)``.

        ``lost_count`` is the number of packets the feedback reported
        as never received.
        """
        usage = BandwidthUsage.NORMAL
        latest_send = None
        trendline = self._trendline
        detect = self._detector.detect
        acked_append = self._acked.append
        sent_append = self._sent_acked.append
        for send_time, arrival_time, size in acked:
            self._num_samples += 1
            trend = trendline.update(send_time, arrival_time)
            usage = detect(trend, arrival_time, trendline.num_groups)
            acked_append((arrival_time, size))
            self._acked_bytes += size
            sent_append((send_time, size))
            self._sent_acked_bytes += size
            latest_send = send_time
        self._trim_rate_window(now)
        self.incoming_rate = self._compute_incoming_rate(now)
        if latest_send is not None:
            rtt_sample = max(now - latest_send, 1e-4)
            self.srtt += _RTT_SMOOTHING * (rtt_sample - self.srtt)
            self.min_rtt = min(self.min_rtt, rtt_sample)
        self._apply_burst_capacity_estimate(acked)
        # NOTE: a drop-tail queue sitting at capacity is flat and
        # invisible to the trendline (it only sees delay *growth*), so
        # GCC can hold a standing queue with hundreds of ms of delay —
        # WebRTC behaves the same way, and that bufferbloat is exactly
        # the E2E pathology the paper reports for the naive multipath
        # variants (Fig. 14c).  Converge's QoE feedback, not the
        # congestion controller, is what breaks the standing queue.
        offered = self._compute_offered_rate()
        self._aimd.update(
            usage, self.incoming_rate, now, self.srtt, offered_rate=offered
        )
        # Keep the loss-based estimate from drifting arbitrarily above
        # the delay-based one on an idle path (its 5%-per-report probe
        # has no evidence behind it without traffic).
        self._loss_controller.rate = min(
            self._loss_controller.rate, 2.0 * self._aimd.rate
        )

    def on_receiver_report(self, fraction_lost: float, now: float = 0.0) -> None:
        """Process an RTCP receiver report for this path."""
        self._loss_controller.update(fraction_lost)
        self.loss_estimate += _LOSS_SMOOTHING * (
            fraction_lost - self.loss_estimate
        )
        # Peak-hold with decay: bursty (Gilbert-Elliott) loss averages
        # low but arrives concentrated; FEC sized off the smoothed mean
        # cannot cover the bursts, so remember the recent worst case.
        if self._loss_peak_time >= 0:
            elapsed = max(now - self._loss_peak_time, 0.0)
            self.loss_peak *= math.exp(-elapsed / _LOSS_PEAK_TAU)
        self._loss_peak_time = now
        self.loss_peak = max(self.loss_peak, fraction_lost)

    # -- outputs ---------------------------------------------------------

    @property
    def target_rate(self) -> float:
        """The per-path sending rate ``S_i`` (bps)."""
        return min(self._aimd.rate, self._loss_controller.rate)

    @property
    def goodput(self) -> float:
        """Measured receive rate over the last window (bps)."""
        return self.incoming_rate

    # -- internals ---------------------------------------------------------

    def _trim_rate_window(self, now: float) -> None:
        horizon = now - _RATE_WINDOW
        acked = self._acked
        while acked and acked[0][0] < horizon:
            self._acked_bytes -= acked.popleft()[1]
        sent = self._sent_acked
        while sent and sent[0][0] < horizon:
            self._sent_acked_bytes -= sent.popleft()[1]

    def _apply_burst_capacity_estimate(
        self, acked: List[Tuple[float, float, int]]
    ) -> None:
        """Capacity probing from back-to-back bursts (PROBE_BWE).

        Packets sent essentially simultaneously arrive spaced by the
        bottleneck's serialization time, so the arrival rate of a
        burst measures link capacity directly.  When a probe burst
        reveals far more capacity than the current estimate — typical
        right after a coverage fade ends — jump the estimate instead
        of crawling up at 8%/s.
        """
        run: List[Tuple[float, float, int]] = []
        best_estimate = 0.0
        ordered = sorted(acked, key=itemgetter(0))

        def flush(current_run: List[Tuple[float, float, int]]) -> float:
            if len(current_run) < _PROBE_MIN_PACKETS:
                return 0.0
            arrivals = [arrival for _, arrival, _ in current_run]
            span = max(arrivals) - min(arrivals)
            if span <= 0:
                return 0.0
            total = sum(size for _, _, size in current_run[1:])
            return total * 8 / span

        for packet in ordered:
            if run and packet[0] - run[-1][0] > _PROBE_SEND_GAP:
                best_estimate = max(best_estimate, flush(run))
                run = []
            run.append(packet)
        best_estimate = max(best_estimate, flush(run))
        if best_estimate > 1.5 * self._aimd.rate:
            jump = min(best_estimate * 0.85, self._aimd.rate * 4)
            self._aimd.rate = min(jump, self._aimd.max_rate)
            self._loss_controller.rate = max(
                self._loss_controller.rate, self._aimd.rate
            )

    def _compute_offered_rate(self) -> float:
        """How fast the sender pushed recently-acked packets onto the path."""
        if len(self._sent_acked) < 2:
            return 0.0
        span = max(self._sent_acked[-1][0] - self._sent_acked[0][0], 0.05)
        total = self._sent_acked_bytes - self._sent_acked[0][1]
        return max(total, 0) * 8 / span

    def _compute_incoming_rate(self, now: float) -> float:
        if len(self._acked) < 2:
            return self.incoming_rate if self._acked else 0.0
        first_arrival = self._acked[0][0]
        last_arrival = self._acked[-1][0]
        span = max(last_arrival - first_arrival, 0.05)
        # The first packet opens the window; its bytes arrived before
        # the span being measured, so exclude them (standard rate
        # estimator convention — avoids systematic underestimation).
        total_bytes = self._acked_bytes - self._acked[0][1]
        return max(total_bytes, 0) * 8 / span
