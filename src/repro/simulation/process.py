"""Helpers for recurring simulation activities."""

from __future__ import annotations

from typing import Callable, Optional

from repro.simulation.events import Event
from repro.simulation.simulator import Simulator


class PeriodicProcess:
    """Runs a callback at a fixed interval until stopped.

    Used for camera frame ticks, RTCP report generation and pacer
    wake-ups.  The interval may be changed between ticks (e.g. when a
    sender adjusts its frame rate).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        start_delay: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._event: Optional[Event] = None
        self._stopped = False
        self._event = sim.schedule(start_delay, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            # Re-arm the same event object instead of allocating a new
            # one per tick; ordering is identical to a fresh schedule().
            self._event = self._sim.reschedule(self._event, self.interval)

    def stop(self) -> None:
        """Cancel future ticks."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def running(self) -> bool:
        return not self._stopped
