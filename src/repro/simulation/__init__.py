"""Discrete-event simulation core used by every other subsystem.

The simulator is a classic event-heap design: components schedule
callbacks at absolute or relative times, and :class:`Simulator.run`
dispatches them in timestamp order.  All randomness flows through
named, seeded streams (:class:`RandomStreams`) so that every experiment
in the reproduction is deterministic given its seed.
"""

from repro.simulation.events import Event, EventQueue
from repro.simulation.random import RandomStreams
from repro.simulation.process import PeriodicProcess
from repro.simulation.profiling import SimProfiler
from repro.simulation.simulator import Simulator

__all__ = [
    "Event",
    "EventQueue",
    "PeriodicProcess",
    "RandomStreams",
    "SimProfiler",
    "Simulator",
]
