"""Event and event-queue primitives for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, sequence)``.  The monotonically increasing
    sequence number breaks ties so that events scheduled earlier run
    earlier, which keeps simulations deterministic.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it at dispatch time."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        event = Event(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest pending event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None
