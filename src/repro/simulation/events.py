"""Event and event-queue primitives for the discrete-event simulator.

This is the hottest code in the repository: every packet transmission,
pacing gap, RTCP delivery and periodic tick flows through one
:class:`EventQueue`.  Three design points keep it fast without changing
behaviour:

1. The heap stores plain ``(time, seq, event)`` tuples, so ordering is
   decided by native C tuple comparison (``seq`` is unique, so the
   :class:`Event` object itself is never compared).  Ties at equal
   ``time`` break by the monotonically increasing sequence number —
   events scheduled earlier run earlier — which keeps simulations
   deterministic, exactly as the previous ``@dataclass(order=True)``
   implementation did.
2. :class:`Event` is a ``__slots__`` class (no per-event ``__dict__``)
   and can be *re-armed* via :meth:`EventQueue.reschedule`, so periodic
   processes reuse one event object instead of allocating a new one per
   tick.
3. Cancellation stays lazy (a flag checked at dispatch), but the queue
   now counts cancelled-but-still-queued entries and compacts the heap
   in place when more than half of it is dead weight, bounding both
   memory and pop-time skipping.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional, Tuple

# Sentinel: "this event's callback takes no argument".  Using a
# dedicated object (not None) lets callbacks legitimately receive None.
_NO_ARG = object()

# Compaction policy: rebuild the heap when at least this many entries
# are queued and more than half of them are cancelled.
_COMPACT_MIN_ENTRIES = 64


class Event:
    """A scheduled callback; also the cancellation/re-arm handle.

    ``arg`` is an optional single argument passed to ``callback`` at
    dispatch time, which lets hot paths avoid allocating a closure per
    scheduled packet.
    """

    __slots__ = ("time", "callback", "arg", "cancelled", "_queue", "_queued")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        arg: object = _NO_ARG,
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.callback = callback
        self.arg = arg
        self.cancelled = False
        self._queue = queue
        self._queued = False

    def cancel(self) -> None:
        """Mark the event so the queue skips it at dispatch time."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None and self._queued:
            queue._cancelled += 1
            heap = queue._heap
            if (
                len(heap) >= _COMPACT_MIN_ENTRIES
                and queue._cancelled * 2 > len(heap)
            ):
                queue.compact()

    def dispatch(self) -> None:
        """Invoke the callback (with its bound argument, if any)."""
        arg = self.arg
        if arg is _NO_ARG:
            self.callback()
        else:
            self.callback(arg)


class EventQueue:
    """A min-heap of scheduled events with lazy cancellation.

    Heap entries are ``(time, seq, event)`` tuples; ``__len__`` reports
    raw entries (including cancelled ones) while :attr:`live` reports
    only events that will actually dispatch.
    """

    __slots__ = ("_heap", "_counter", "_cancelled")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        # Number of cancelled events still sitting in the heap.
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def live(self) -> int:
        """Number of queued events that are not cancelled."""
        return len(self._heap) - self._cancelled

    def push(
        self, time: float, callback: Callable[..., None], arg: object = _NO_ARG
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        event = Event(time, callback, arg, self)
        event._queued = True
        heappush(self._heap, (time, next(self._counter), event))
        return event

    def reschedule(self, event: Event, time: float) -> Event:
        """Re-arm a previously dispatched (or compacted-away) event.

        Reuses the event object — callback and bound argument included —
        instead of allocating a fresh one.  The re-armed event draws a
        new sequence number, so tie-breaking at equal timestamps is
        identical to pushing a brand-new event at the same point.
        """
        if event._queued:
            raise RuntimeError("cannot reschedule an event still in the queue")
        event.time = time
        event.cancelled = False
        event._queue = self
        event._queued = True
        heappush(self._heap, (time, next(self._counter), event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            event._queued = False
            if event.cancelled:
                self._cancelled -= 1
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest pending event, or ``None``."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heappop(heap)
                entry[2]._queued = False
                self._cancelled -= 1
                continue
            return entry[0]
        return None

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify in place.

        Entries keep their ``(time, seq)`` keys, so the surviving
        dispatch order is exactly what lazy skipping would have
        produced.  The heap list is mutated in place so aliases held by
        the simulator's run loop stay valid.
        """
        heap = self._heap
        if self._cancelled == 0:
            return
        survivors = []
        for entry in heap:
            event = entry[2]
            if event.cancelled:
                event._queued = False
            else:
                survivors.append(entry)
        heap[:] = survivors
        heapify(heap)
        self._cancelled = 0
