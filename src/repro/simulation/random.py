"""Named, seeded random streams.

Every stochastic component (loss models, trace generators, encoders)
draws from its own named stream derived from a single experiment seed.
This keeps components statistically independent while making whole
experiments reproducible, and means adding a new random consumer does
not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a deterministic 64-bit sub-seed for ``name`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Return a child factory seeded from this one, for sub-experiments."""
        return RandomStreams(derive_seed(self.seed, f"fork:{name}"))
