"""Per-subsystem time and event accounting for simulation runs.

The simulator itself only counts dispatched events; this module adds an
optional :class:`SimProfiler` that hooks the run loop (via
``Simulator.profile_hook``), times every callback, and attributes the
cost to a subsystem bucket derived from the callback's defining module:

========== ====================================================
bucket     modules
========== ====================================================
simulator  ``repro.simulation.*`` (timer plumbing itself)
paths      ``repro.net.*`` (link serve/deliver, traces, loss)
sender     ``repro.core.*`` (sender session, path manager, RTCP)
receiver   ``repro.receiver.*`` (buffers, NACK, playout)
scheduler  ``repro.scheduling.*``
fec        ``repro.fec.*``
cc         ``repro.cc.*`` (GCC, pacer, probing)
video      ``repro.video.*`` (encoder, packetizer)
========== ====================================================

Scheduler assignment, FEC sizing, and GCC feedback processing run
*inside* sender-side callbacks rather than as their own events, so the
event buckets alone would hide them.  :meth:`SimProfiler.attach_call`
additionally wraps those entry points as named *sections*; section time
is reported separately and is a subset of the enclosing event bucket's
time, not additive with it.

The hook costs two ``perf_counter()`` calls per event, so a profiled
run is slower than a plain one — use it to find where time goes, and
the ``benchmarks/test_bench_simcore.py`` microbenchmark (which runs
unhooked) to measure absolute throughput.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.simulation.events import _NO_ARG, Event
from repro.simulation.process import PeriodicProcess
from repro.simulation.simulator import Simulator

if TYPE_CHECKING:
    from repro.core.session import ConferenceCall

_BUCKET_BY_PREFIX = (
    ("repro.net.", "paths"),
    ("repro.receiver.", "receiver"),
    ("repro.cc.", "cc"),
    ("repro.fec.", "fec"),
    ("repro.scheduling.", "scheduler"),
    ("repro.core.", "sender"),
    ("repro.video.", "video"),
    ("repro.simulation.", "simulator"),
)


def _bucket_of(module: str) -> str:
    for prefix, bucket in _BUCKET_BY_PREFIX:
        if module.startswith(prefix):
            return bucket
    return "other"


class SimProfiler:
    """Attributes simulation wall time to subsystems.

    Usage::

        profiler = SimProfiler()
        run_call(config, paths, profiler=profiler)
        print(profiler.format_report())
    """

    def __init__(self) -> None:
        self._event_seconds: Dict[str, float] = {}
        self._event_counts: Dict[str, int] = {}
        self._section_seconds: Dict[str, float] = {}
        self._section_counts: Dict[str, int] = {}
        # Bound-method callbacks are recreated per schedule, so the
        # cache keys on the *owning class* (stable across events).
        self._class_buckets: Dict[type, str] = {}
        self._wrapped: List[Tuple[object, str, Callable[..., object]]] = []

    # -- attachment --------------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        """Install the per-event hook on ``sim``."""
        sim.profile_hook = self._on_event

    def attach_call(self, call: "ConferenceCall") -> None:
        """Hook a :class:`~repro.core.session.ConferenceCall` fully.

        Installs the event hook plus section wrappers around the
        synchronous hot entry points that run inside sender callbacks.
        """
        self.attach(call.sim)
        self.wrap_section("scheduler.assign", call.sender.scheduler, "assign")
        self.wrap_section(
            "fec.converge", call.sender._converge_fec, "num_fec_packets"
        )
        self.wrap_section(
            "fec.webrtc", call.sender._webrtc_fec, "num_fec_packets"
        )
        for state in call.sender.path_manager._states.values():
            self.wrap_section("cc.gcc", state.gcc, "on_transport_feedback")

    def wrap_section(self, name: str, obj: object, method_name: str) -> None:
        """Time every call to ``obj.method_name`` under section ``name``."""
        original = getattr(obj, method_name)
        seconds = self._section_seconds
        counts = self._section_counts
        seconds.setdefault(name, 0.0)
        counts.setdefault(name, 0)

        def timed(*args: object, **kwargs: object) -> object:
            start = perf_counter()
            try:
                return original(*args, **kwargs)
            finally:
                seconds[name] += perf_counter() - start
                counts[name] += 1

        setattr(obj, method_name, timed)
        self._wrapped.append((obj, method_name, original))

    def detach_sections(self) -> None:
        """Restore every method wrapped by :meth:`wrap_section`."""
        for obj, method_name, original in self._wrapped:
            setattr(obj, method_name, original)
        self._wrapped.clear()

    # -- the hook ----------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        callback = event.callback
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, PeriodicProcess):
            # Periodic ticks belong to the subsystem whose callback the
            # process wraps, not to the timer plumbing.
            inner = owner._callback
            owner = getattr(inner, "__self__", inner)
        key = type(owner) if owner is not None else type(callback)
        bucket = self._class_buckets.get(key)
        if bucket is None:
            target = owner if owner is not None else callback
            module = getattr(target, "__module__", None) or key.__module__
            bucket = _bucket_of(module)
            self._class_buckets[key] = bucket
        start = perf_counter()
        if event.arg is _NO_ARG:
            callback()
        else:
            callback(event.arg)
        elapsed = perf_counter() - start
        self._event_seconds[bucket] = (
            self._event_seconds.get(bucket, 0.0) + elapsed
        )
        self._event_counts[bucket] = self._event_counts.get(bucket, 0) + 1

    # -- reporting ---------------------------------------------------------

    @property
    def events_total(self) -> int:
        return sum(self._event_counts.values())

    @property
    def seconds_total(self) -> float:
        return sum(self._event_seconds.values())

    def report(self) -> dict:
        """The accounting as a JSON-ready dict."""
        total = self.seconds_total
        return {
            "events_total": self.events_total,
            "seconds_total": total,
            "subsystems": {
                bucket: {
                    "events": self._event_counts[bucket],
                    "seconds": self._event_seconds[bucket],
                    "share": (
                        self._event_seconds[bucket] / total if total else 0.0
                    ),
                }
                for bucket in sorted(
                    self._event_counts,
                    key=lambda b: self._event_seconds[b],
                    reverse=True,
                )
            },
            "sections": {
                name: {
                    "calls": self._section_counts[name],
                    "seconds": self._section_seconds[name],
                }
                for name in sorted(self._section_counts)
            },
        }

    def format_report(self) -> str:
        """The accounting as an aligned text table."""
        report = self.report()
        lines = [
            f"{'subsystem':<12} {'events':>10} {'seconds':>10} {'share':>7}"
        ]
        for bucket, row in report["subsystems"].items():
            lines.append(
                f"{bucket:<12} {row['events']:>10} "
                f"{row['seconds']:>10.4f} {100 * row['share']:>6.1f}%"
            )
        lines.append(
            f"{'total':<12} {report['events_total']:>10} "
            f"{report['seconds_total']:>10.4f} {100.0:>6.1f}%"
        )
        if report["sections"]:
            lines.append("")
            lines.append(
                f"{'section (inside events above)':<30} "
                f"{'calls':>10} {'seconds':>10}"
            )
            for name, row in report["sections"].items():
                lines.append(
                    f"{name:<30} {row['calls']:>10} {row['seconds']:>10.4f}"
                )
        return "\n".join(lines)
