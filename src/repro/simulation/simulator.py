"""The discrete-event simulator driving every experiment."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Optional

from repro.simulation.events import _NO_ARG, Event, EventQueue
from repro.simulation.random import RandomStreams


class Simulator:
    """Dispatches scheduled callbacks in timestamp order.

    Components hold a reference to the simulator, read the clock via
    :attr:`now`, and schedule work with :meth:`schedule` (relative delay)
    or :meth:`schedule_at` (absolute time).

    :attr:`events_dispatched` counts callbacks actually executed (skipped
    cancelled events excluded); the simcore benchmark divides it by wall
    time to report events/sec.  ``profile_hook``, when set, is called as
    ``hook(event)`` in place of the plain dispatch so a profiler can time
    and classify each callback — the hook is responsible for invoking the
    event.  It defaults to ``None``, which keeps the run loop on the
    branch-free fast path.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.streams = RandomStreams(seed)
        self._queue = EventQueue()
        self._running = False
        self.events_dispatched: int = 0
        self.profile_hook: Optional[Callable[[Event], None]] = None

    def schedule(
        self, delay: float, callback: Callable[..., None], arg: object = _NO_ARG
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``arg``, when given, is passed to the callback at dispatch time;
        hot paths use it instead of building a closure per packet.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        # Inline of EventQueue.push, with the Event built by direct
        # slot stores: this is the most frequent scheduling entry point,
        # and skipping the __init__ frame saves a call per event.
        queue = self._queue
        time = self.now + delay
        event = Event.__new__(Event)
        event.time = time
        event.callback = callback
        event.arg = arg
        event.cancelled = False
        event._queue = queue
        event._queued = True
        heappush(queue._heap, (time, next(queue._counter), event))
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], arg: object = _NO_ARG
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        queue = self._queue
        event = Event(time, callback, arg, queue)
        event._queued = True
        heappush(queue._heap, (time, next(queue._counter), event))
        return event

    def reschedule(self, event: Event, delay: float) -> Event:
        """Re-arm a dispatched event ``delay`` seconds from now.

        Equivalent to scheduling the event's callback (and bound
        argument) afresh, but reuses the event object.  Periodic
        processes use this to avoid one allocation per tick.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        if event._queued:
            raise RuntimeError("cannot reschedule an event still in the queue")
        # Inline of EventQueue.reschedule (hot: every periodic tick and
        # pacer release re-arms its event through here).
        queue = self._queue
        time = self.now + delay
        event.time = time
        event.cancelled = False
        event._queue = queue
        event._queued = True
        heappush(queue._heap, (time, next(queue._counter), event))
        return event

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or the clock passes ``until``.

        Returns the simulation time at which the run stopped.  Events
        scheduled exactly at ``until`` are executed.
        """
        # The body below is the hottest loop in the repository, so the
        # queue internals are inlined: heap entries are (time, seq, event)
        # tuples and cancelled events are skipped lazily, exactly as
        # EventQueue.pop() would.  `queue._heap` is aliased, never
        # rebound — compaction mutates the list in place.
        queue = self._queue
        heap = queue._heap
        no_arg = _NO_ARG
        dispatched = 0
        self._running = True
        try:
            while self._running:
                while heap:
                    entry = heap[0]
                    event = entry[2]
                    if event.cancelled:
                        heappop(heap)
                        event._queued = False
                        queue._cancelled -= 1
                        continue
                    break
                else:
                    break
                next_time = entry[0]
                if until is not None and next_time > until:
                    self.now = until
                    break
                heappop(heap)
                event._queued = False
                self.now = next_time
                dispatched += 1
                hook = self.profile_hook
                if hook is not None:
                    hook(event)
                elif event.arg is no_arg:
                    event.callback()
                else:
                    event.callback(event.arg)
        finally:
            self._running = False
            self.events_dispatched += dispatched
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._running = False

    def pending_events(self) -> int:
        """Return the number of live (non-cancelled) events still queued."""
        return self._queue.live
