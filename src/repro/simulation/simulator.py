"""The discrete-event simulator driving every experiment."""

from __future__ import annotations

from typing import Callable, Optional

from repro.simulation.events import Event, EventQueue
from repro.simulation.random import RandomStreams


class Simulator:
    """Dispatches scheduled callbacks in timestamp order.

    Components hold a reference to the simulator, read the clock via
    :attr:`now`, and schedule work with :meth:`schedule` (relative delay)
    or :meth:`schedule_at` (absolute time).
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.streams = RandomStreams(seed)
        self._queue = EventQueue()
        self._running = False

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self._queue.push(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self._queue.push(time, callback)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or the clock passes ``until``.

        Returns the simulation time at which the run stopped.  Events
        scheduled exactly at ``until`` are executed.
        """
        self._running = True
        try:
            while self._running:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self.now = event.time
                event.callback()
        finally:
            self._running = False
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._running = False

    def pending_events(self) -> int:
        """Return the number of events still queued (including cancelled)."""
        return len(self._queue)
