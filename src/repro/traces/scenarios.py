"""Scenario presets: stationary, walking, driving (Appendix D)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.net.loss import BernoulliLoss, GilbertElliottLoss, LossModel
from repro.net.trace import BandwidthTrace
from repro.simulation.random import RandomStreams
from repro.traces.generator import (
    combine_trace,
    markov_fade_envelope,
    ou_capacity_trace,
)


@dataclass(frozen=True)
class NetworkProfile:
    """Envelope parameters for one network in one scenario."""

    mean_bps: float
    std_bps: float
    p_enter_fade: float
    fade_duration: Tuple[float, float]
    fade_depth: Tuple[float, float]
    base_loss: float
    bursty_loss: bool
    propagation_delay: float


@dataclass(frozen=True)
class Scenario:
    """One mobility scenario with per-network profiles."""

    name: str
    networks: Dict[str, NetworkProfile]


def _mbps(x: float) -> float:
    return x * 1_000_000.0


STATIONARY = Scenario(
    name="stationary",
    networks={
        # Fig. 20: WiFi stable around 25-30 Mbps with rare short dips;
        # T-Mobile slightly failing the required level a few times.
        "wifi": NetworkProfile(
            mean_bps=_mbps(27),
            std_bps=_mbps(2),
            p_enter_fade=0.002,
            fade_duration=(2.0, 4.0),
            fade_depth=(0.2, 0.5),
            base_loss=0.001,
            bursty_loss=False,
            propagation_delay=0.010,
        ),
        "tmobile": NetworkProfile(
            mean_bps=_mbps(14),
            std_bps=_mbps(3),
            p_enter_fade=0.004,
            fade_duration=(2.0, 5.0),
            fade_depth=(0.3, 0.6),
            base_loss=0.004,
            bursty_loss=False,
            propagation_delay=0.030,
        ),
    },
)

WALKING = Scenario(
    name="walking",
    networks={
        # Fig. 21: moderate variation; each network occasionally falls
        # below the required level at coverage edges.
        "wifi": NetworkProfile(
            mean_bps=_mbps(19),
            std_bps=_mbps(6),
            p_enter_fade=0.012,
            fade_duration=(3.0, 8.0),
            fade_depth=(0.05, 0.3),
            base_loss=0.006,
            bursty_loss=True,
            propagation_delay=0.012,
        ),
        "tmobile": NetworkProfile(
            mean_bps=_mbps(13),
            std_bps=_mbps(4),
            p_enter_fade=0.010,
            fade_duration=(3.0, 8.0),
            fade_depth=(0.05, 0.3),
            base_loss=0.008,
            bursty_loss=True,
            propagation_delay=0.032,
        ),
    },
)

DRIVING = Scenario(
    name="driving",
    networks={
        # Fig. 22: large swings, deep multi-second fades; even the two
        # networks combined briefly miss the requirement.
        "tmobile": NetworkProfile(
            mean_bps=_mbps(14),
            std_bps=_mbps(7),
            p_enter_fade=0.013,
            fade_duration=(3.0, 9.0),
            fade_depth=(0.04, 0.35),
            base_loss=0.012,
            bursty_loss=True,
            propagation_delay=0.035,
        ),
        "verizon": NetworkProfile(
            mean_bps=_mbps(12),
            std_bps=_mbps(6),
            p_enter_fade=0.015,
            fade_duration=(3.0, 9.0),
            fade_depth=(0.04, 0.35),
            base_loss=0.015,
            bursty_loss=True,
            propagation_delay=0.040,
        ),
    },
)

MIGRATION = Scenario(
    name="migration",
    networks={
        # WiFi↔LTE migration envelope (LoLa-style dual-carrier walk):
        # WiFi is strong but degrades toward the coverage edge; LTE is
        # the slower, burstier carrier the call migrates onto.  Used by
        # the path-churn / wifi-lte-migration chaos scenarios, whose
        # BIRTH events reference these profiles by name.
        "wifi": NetworkProfile(
            mean_bps=_mbps(22),
            std_bps=_mbps(4),
            p_enter_fade=0.008,
            fade_duration=(2.0, 6.0),
            fade_depth=(0.1, 0.4),
            base_loss=0.004,
            bursty_loss=False,
            propagation_delay=0.012,
        ),
        "lte": NetworkProfile(
            mean_bps=_mbps(11),
            std_bps=_mbps(3),
            p_enter_fade=0.010,
            fade_duration=(2.0, 6.0),
            fade_depth=(0.1, 0.4),
            base_loss=0.006,
            bursty_loss=True,
            propagation_delay=0.035,
        ),
    },
)

_SCENARIOS = {s.name: s for s in (STATIONARY, WALKING, DRIVING, MIGRATION)}


def get_scenario(name: str) -> Scenario:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(_SCENARIOS)}"
        ) from None


def scenario_networks(name: str) -> List[str]:
    return list(get_scenario(name).networks)


def make_scenario_trace(
    scenario_name: str,
    network: str,
    duration: float,
    streams: RandomStreams,
) -> BandwidthTrace:
    """Generate the capacity trace for ``network`` in a scenario."""
    scenario = get_scenario(scenario_name)
    try:
        profile = scenario.networks[network]
    except KeyError:
        raise ValueError(
            f"scenario {scenario_name!r} has no network {network!r}; "
            f"choose from {sorted(scenario.networks)}"
        ) from None
    rng = streams.stream(f"trace-{scenario_name}-{network}")
    base = ou_capacity_trace(
        rng,
        duration,
        mean_bps=profile.mean_bps,
        std_bps=profile.std_bps,
    )
    envelope = markov_fade_envelope(
        rng,
        duration,
        p_enter_fade=profile.p_enter_fade,
        fade_duration_range=profile.fade_duration,
        fade_depth_range=profile.fade_depth,
    )
    return combine_trace(base, envelope)


def make_loss_model(scenario_name: str, network: str) -> LossModel:
    """The radio loss process matching the scenario's character."""
    profile = get_scenario(scenario_name).networks[network]
    if profile.bursty_loss:
        # Scale the bad-state dwell so the long-run rate matches the
        # profile's base loss with bursts of ~10-30% in the bad state.
        bad_loss = 0.2
        p_bad_to_good = 0.1
        p_good_to_bad = (
            profile.base_loss
            * p_bad_to_good
            / max(bad_loss - profile.base_loss, 1e-6)
        )
        return GilbertElliottLoss(
            p_good_to_bad=min(p_good_to_bad, 0.5),
            p_bad_to_good=p_bad_to_good,
            good_loss=0.0,
            bad_loss=bad_loss,
        )
    return BernoulliLoss(profile.base_loss)


def propagation_delay(scenario_name: str, network: str) -> float:
    return get_scenario(scenario_name).networks[network].propagation_delay
