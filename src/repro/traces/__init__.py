"""Synthetic network traces for the paper's three scenarios.

The paper replays iperf3 traces captured on WiFi, T-Mobile and Verizon
while stationary, walking and driving (Appendix D, Figs. 20-22).  The
raw traces are not public, so this package generates synthetic traces
whose envelope matches the published figures: stable WiFi when
stationary, moderate dips while walking, and deep multi-second fades
with brief near-outages while driving.  All generators are seeded and
deterministic.
"""

from repro.traces.generator import markov_fade_envelope, ou_capacity_trace
from repro.traces.scenarios import (
    DRIVING,
    STATIONARY,
    WALKING,
    Scenario,
    make_scenario_trace,
    scenario_networks,
)

__all__ = [
    "DRIVING",
    "STATIONARY",
    "WALKING",
    "Scenario",
    "make_scenario_trace",
    "markov_fade_envelope",
    "ou_capacity_trace",
    "scenario_networks",
]
