"""Stochastic building blocks for synthetic capacity traces."""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.net.trace import BandwidthTrace


def ou_capacity_trace(
    rng: random.Random,
    duration: float,
    mean_bps: float,
    std_bps: float,
    theta: float = 0.3,
    dt: float = 0.5,
    floor_bps: float = 100_000.0,
    ceil_bps: float = 60_000_000.0,
) -> List[Tuple[float, float]]:
    """Ornstein-Uhlenbeck capacity samples around ``mean_bps``.

    Cellular capacity under light mobility behaves like a
    mean-reverting noisy process; theta controls how fast it reverts,
    std the spread.  Returns ``(time, bps)`` samples at ``dt`` spacing.
    """
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    samples: List[Tuple[float, float]] = []
    value = mean_bps
    t = 0.0
    sigma = std_bps * math.sqrt(2 * theta)
    while t <= duration:
        samples.append((t, min(max(value, floor_bps), ceil_bps)))
        noise = rng.gauss(0.0, 1.0)
        value += theta * (mean_bps - value) * dt + sigma * math.sqrt(dt) * noise
        t += dt
    return samples


def markov_fade_envelope(
    rng: random.Random,
    duration: float,
    dt: float = 0.5,
    p_enter_fade: float = 0.01,
    fade_duration_range: Tuple[float, float] = (4.0, 12.0),
    fade_depth_range: Tuple[float, float] = (0.02, 0.25),
) -> List[Tuple[float, float]]:
    """A multiplicative fade envelope in [0, 1].

    Models coverage holes: with probability ``p_enter_fade`` per step
    the link drops to a small fraction of its capacity for a few
    seconds, then recovers — the deep fades visible in the driving
    traces of Fig. 22.
    """
    samples: List[Tuple[float, float]] = []
    t = 0.0
    fade_until = -1.0
    fade_depth = 1.0
    while t <= duration:
        if t < fade_until:
            envelope = fade_depth
        else:
            envelope = 1.0
            if rng.random() < p_enter_fade:
                fade_until = t + rng.uniform(*fade_duration_range)
                fade_depth = rng.uniform(*fade_depth_range)
                envelope = fade_depth
        samples.append((t, envelope))
        t += dt
    return samples


def combine_trace(
    base: List[Tuple[float, float]],
    envelope: List[Tuple[float, float]],
    floor_bps: float = 50_000.0,
) -> BandwidthTrace:
    """Multiply a capacity series by a fade envelope into a trace."""
    if len(base) != len(envelope):
        raise ValueError("base and envelope must have equal length")
    return BandwidthTrace(
        [
            (t, max(bps * env, floor_bps))
            for (t, bps), (_, env) in zip(base, envelope)
        ]
    )
