"""RTP packet model and the Table 2 priority taxonomy."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

FRAME_TYPE_KEY = "key"
FRAME_TYPE_DELTA = "delta"

# RTP fixed header (12 bytes) + the Converge multipath extension header
# of Fig. 18 (profile id/length word + path id + mp-seq + mp-transport-seq
# one-byte extensions, padded) — kept as named constants so size
# accounting in the emulator matches the serialized wire format.
RTP_BASE_HEADER_BYTES = 12
MULTIPATH_EXTENSION_BYTES = 12
RTP_HEADER_BYTES = RTP_BASE_HEADER_BYTES + MULTIPATH_EXTENSION_BYTES

DEFAULT_MTU_PAYLOAD = 1200


class PacketType(Enum):
    """What an RTP packet carries, per the paper's Table 2 taxonomy."""

    MEDIA = "media"  # delta-frame media payload (no priority level)
    KEYFRAME = "keyframe"  # media payload belonging to a keyframe
    SPS = "sps"  # sequence parameter set (one per group of frames)
    PPS = "pps"  # picture parameter set (one per frame)
    FEC = "fec"  # XOR forward-error-correction packet
    RETRANSMISSION = "rtx"  # NACK-triggered retransmission


# Table 2: priority levels, 1 = highest.  Plain delta-frame media
# packets carry no priority level (``None``) and are load-balanced by
# Eq. 1 instead of pinned to the fast path.
_PRIORITY = {
    PacketType.RETRANSMISSION: 1,
    PacketType.KEYFRAME: 2,
    PacketType.SPS: 3,
    PacketType.PPS: 4,
    PacketType.FEC: 5,
    PacketType.MEDIA: None,
}


def priority_of(packet_type: PacketType) -> Optional[int]:
    """Return the Table 2 priority level (1 highest) or ``None``."""
    return _PRIORITY[packet_type]


_packet_uid = itertools.count()


@dataclass(slots=True)
class RtpPacket:
    """One RTP packet, carrying media, parameter sets, or FEC.

    ``seq`` is the stream-global 16-bit sequence number; ``mp_seq`` and
    ``mp_transport_seq`` are the per-path numbers from the Converge
    header extension and are assigned by the scheduler when the packet
    is bound to a path.
    """

    ssrc: int
    seq: int
    timestamp: int
    frame_id: int
    frame_type: str
    packet_type: PacketType
    payload_size: int
    first_in_frame: bool = False
    last_in_frame: bool = False
    capture_time: float = 0.0
    # Group-of-pictures id: ties delta frames to their SPS.
    gop_id: int = -1
    # Multipath extension fields (Fig. 18); -1 until bound to a path.
    path_id: int = -1
    mp_seq: int = -1
    mp_transport_seq: int = -1
    # FEC packets record which media sequence numbers they protect.
    protected_seqs: List[int] = field(default_factory=list)
    # Simulation-side stand-in for the XOR payload: references to the
    # protected packets so a recovery can reconstruct the original
    # packet exactly, as the byte-level codec would.
    protected_packets: List["RtpPacket"] = field(default_factory=list)
    # For retransmissions: the seq of the original packet.
    original_seq: Optional[int] = None
    send_time: float = -1.0
    uid: int = field(default_factory=lambda: next(_packet_uid))
    # On-the-wire size including RTP + multipath extension headers.
    # Precomputed (payload_size never changes after construction) because
    # the emulator reads it several times per packet on the hot path.
    size_bytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise ValueError("payload size must be non-negative")
        if self.frame_type not in (FRAME_TYPE_KEY, FRAME_TYPE_DELTA):
            raise ValueError(f"unknown frame type: {self.frame_type}")
        self.size_bytes = RTP_HEADER_BYTES + self.payload_size

    @property
    def priority(self) -> Optional[int]:
        """Table 2 priority level, 1 = highest, ``None`` = plain media."""
        return priority_of(self.packet_type)

    @property
    def is_priority(self) -> bool:
        return self.priority is not None

    @property
    def is_media(self) -> bool:
        """True for packets the decoder needs (everything but FEC)."""
        return self.packet_type is not PacketType.FEC

    def clone_for_retransmission(self, new_seq: int, now: float) -> "RtpPacket":
        """Build the RTX copy of this packet (Table 2 priority 1)."""
        return RtpPacket(
            ssrc=self.ssrc,
            seq=new_seq,
            timestamp=self.timestamp,
            frame_id=self.frame_id,
            frame_type=self.frame_type,
            packet_type=PacketType.RETRANSMISSION,
            payload_size=self.payload_size,
            first_in_frame=self.first_in_frame,
            last_in_frame=self.last_in_frame,
            capture_time=self.capture_time,
            gop_id=self.gop_id,
            original_seq=self.seq,
            send_time=now,
        )
