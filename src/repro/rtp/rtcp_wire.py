"""Wire serialization for the full RTCP message set.

The simulation moves message objects, but the deployed system (§5)
puts these on the wire; the formats here make the reproduction's
protocol concrete and testable:

- every Converge RTCP packet carries the path-id word of Fig. 19,
- transport-wide feedback uses a base-time + per-packet delta encoding
  (the shape of WebRTC's transport-cc feedback),
- NACK uses RFC 4585's PID/BLP pairs,
- the two new messages of §5 — the sender's expected-frame-rate SDES
  item and the receiver's QoE feedback triple — get their own payload
  types in the application-specific range,
- compound packets concatenate messages, as RTCP requires.

All formats round-trip; quantization (arrival times to 250 us, FCD to
1 ms) is bounded and tested.
"""

from __future__ import annotations

import struct
from typing import List, Tuple, Union

from repro.rtp.rtcp import (
    KeyframeRequest,
    Nack,
    QoeFeedback,
    ReceiverReport,
    RtcpMessage,
    SdesFrameRate,
    TransportFeedback,
)

RTP_VERSION = 2

# Payload types: 205/206 are transport/payload-specific feedback per
# RFC 4585; 204 (APP) hosts the two Converge-specific messages with a
# subtype in the FMT field.
PT_TRANSPORT_FEEDBACK = 205
PT_NACK = 208  # private extension slot to keep the demo parser simple
PT_PLI = 206
PT_APP = 204
APP_SUBTYPE_SDES_FRAMERATE = 1
APP_SUBTYPE_QOE_FEEDBACK = 2

_ARRIVAL_TICK = 0.00025  # 250 us resolution for arrival deltas
_FCD_TICK = 0.001

WireMessage = Union[
    TransportFeedback, Nack, KeyframeRequest, SdesFrameRate, QoeFeedback
]


def _header(packet_type: int, fmt: int, body_len: int) -> bytes:
    if body_len % 4 != 0:
        raise ValueError("RTCP body must be 32-bit aligned")
    words = body_len // 4
    return struct.pack(
        "!BBH", (RTP_VERSION << 6) | (fmt & 0x1F), packet_type, words
    )


def _common_body(message: RtcpMessage) -> bytes:
    return struct.pack(
        "!Ii", message.ssrc & 0xFFFFFFFF, message.path_id
    )


def pack_transport_feedback(message: TransportFeedback) -> bytes:
    """Serialize per-path transport-wide feedback.

    Layout after the common (ssrc, path id) words: base transport seq
    (u32), packet count (u16), pad (u16), base arrival time in ticks
    (u64), then per packet: seq delta from base (u16) and arrival
    delta from base in ticks (u32, saturating).
    """
    packets = sorted(message.packets)
    if packets:
        base_seq = packets[0][0]
        base_time = min(arrival for _, arrival in packets)
    else:
        base_seq = 0
        base_time = 0.0
    body = bytearray()
    body += _common_body(message)
    body += struct.pack(
        "!IHHQ",
        base_seq & 0xFFFFFFFF,
        len(packets),
        0,
        int(base_time / _ARRIVAL_TICK),
    )
    for seq, arrival in packets:
        seq_delta = seq - base_seq
        if not 0 <= seq_delta < 1 << 16:
            raise ValueError(f"seq delta out of range: {seq_delta}")
        tick_delta = int(round((arrival - base_time) / _ARRIVAL_TICK))
        body += struct.pack("!HxxI", seq_delta, min(tick_delta, 0xFFFFFFFF))
    return _header(PT_TRANSPORT_FEEDBACK, 15, len(body)) + bytes(body)


def unpack_transport_feedback(data: bytes) -> TransportFeedback:
    ssrc, path_id = struct.unpack("!Ii", data[4:12])
    base_seq, count, _, base_ticks = struct.unpack("!IHHQ", data[12:28])
    if len(data) < 28 + 8 * count:
        raise ValueError("transport feedback count overruns the packet")
    base_time = base_ticks * _ARRIVAL_TICK
    packets: List[Tuple[int, float]] = []
    offset = 28
    for _ in range(count):
        seq_delta, tick_delta = struct.unpack("!HxxI", data[offset:offset + 8])
        packets.append(
            (base_seq + seq_delta, base_time + tick_delta * _ARRIVAL_TICK)
        )
        offset += 8
    return TransportFeedback(ssrc=ssrc, path_id=path_id, packets=packets)


def pack_nack(message: Nack) -> bytes:
    """RFC 4585 generic NACK: (PID, BLP) pairs after the common words."""
    seqs = sorted(set(message.seqs))
    pairs: List[Tuple[int, int]] = []
    index = 0
    while index < len(seqs):
        pid = seqs[index]
        blp = 0
        index += 1
        while index < len(seqs) and seqs[index] - pid <= 16:
            blp |= 1 << (seqs[index] - pid - 1)
            index += 1
        pairs.append((pid, blp))
    body = bytearray(_common_body(message))
    for pid, blp in pairs:
        if not 0 <= pid < 1 << 16:
            raise ValueError(f"NACK PID out of range: {pid}")
        body += struct.pack("!HH", pid, blp)
    return _header(PT_NACK, 1, len(body)) + bytes(body)


def unpack_nack(data: bytes) -> Nack:
    ssrc, path_id = struct.unpack("!Ii", data[4:12])
    seqs: List[int] = []
    offset = 12
    while offset < len(data):
        pid, blp = struct.unpack("!HH", data[offset:offset + 4])
        seqs.append(pid)
        for bit in range(16):
            if blp & (1 << bit):
                seqs.append(pid + bit + 1)
        offset += 4
    return Nack(ssrc=ssrc, path_id=path_id, seqs=seqs)


def pack_keyframe_request(message: KeyframeRequest) -> bytes:
    body = _common_body(message) + struct.pack("!i", message.frame_id)
    return _header(PT_PLI, 1, len(body)) + body


def unpack_keyframe_request(data: bytes) -> KeyframeRequest:
    ssrc, path_id = struct.unpack("!Ii", data[4:12])
    (frame_id,) = struct.unpack("!i", data[12:16])
    return KeyframeRequest(ssrc=ssrc, path_id=path_id, frame_id=frame_id)


def pack_sdes_frame_rate(message: SdesFrameRate) -> bytes:
    body = _common_body(message) + struct.pack(
        "!I", int(round(message.frame_rate * 256))
    )
    return _header(PT_APP, APP_SUBTYPE_SDES_FRAMERATE, len(body)) + body


def unpack_sdes_frame_rate(data: bytes) -> SdesFrameRate:
    ssrc, path_id = struct.unpack("!Ii", data[4:12])
    (fixed_point,) = struct.unpack("!I", data[12:16])
    return SdesFrameRate(
        ssrc=ssrc, path_id=path_id, frame_rate=fixed_point / 256
    )


def pack_qoe_feedback(message: QoeFeedback) -> bytes:
    """The §4.2 triple: (path id, alpha, FCD)."""
    if not -(1 << 15) <= message.alpha < 1 << 15:
        raise ValueError(f"alpha out of range: {message.alpha}")
    body = _common_body(message) + struct.pack(
        "!hxxI", message.alpha, int(round(message.fcd / _FCD_TICK))
    )
    return _header(PT_APP, APP_SUBTYPE_QOE_FEEDBACK, len(body)) + body


def unpack_qoe_feedback(data: bytes) -> QoeFeedback:
    ssrc, path_id = struct.unpack("!Ii", data[4:12])
    alpha, fcd_ticks = struct.unpack("!hxxI", data[12:20])
    return QoeFeedback(
        ssrc=ssrc, path_id=path_id, alpha=alpha, fcd=fcd_ticks * _FCD_TICK
    )


def pack_message(message: WireMessage) -> bytes:
    """Serialize any supported RTCP message."""
    if isinstance(message, TransportFeedback):
        return pack_transport_feedback(message)
    if isinstance(message, Nack):
        return pack_nack(message)
    if isinstance(message, KeyframeRequest):
        return pack_keyframe_request(message)
    if isinstance(message, SdesFrameRate):
        return pack_sdes_frame_rate(message)
    if isinstance(message, QoeFeedback):
        return pack_qoe_feedback(message)
    raise TypeError(f"unsupported RTCP message: {type(message).__name__}")


def unpack_message(data: bytes) -> WireMessage:
    """Parse one RTCP message (consumes exactly one packet's bytes).

    Malformed input of any kind — truncation, a length field larger
    than the buffer, an inner count that overruns the payload — raises
    :class:`ValueError`; these parsers face the network and must never
    surface ``struct.error`` or ``IndexError``.
    """
    if len(data) < 4:
        raise ValueError("truncated RTCP packet")
    first, packet_type, words = struct.unpack("!BBH", data[:4])
    if first >> 6 != RTP_VERSION:
        raise ValueError("bad RTCP version")
    if len(data) < 4 + 4 * words:
        raise ValueError(
            f"RTCP length field claims {4 + 4 * words} bytes, "
            f"got {len(data)}"
        )
    fmt = first & 0x1F
    try:
        if packet_type == PT_TRANSPORT_FEEDBACK:
            return unpack_transport_feedback(data)
        if packet_type == PT_NACK:
            return unpack_nack(data)
        if packet_type == PT_PLI:
            return unpack_keyframe_request(data)
        if packet_type == PT_APP and fmt == APP_SUBTYPE_SDES_FRAMERATE:
            return unpack_sdes_frame_rate(data)
        if packet_type == PT_APP and fmt == APP_SUBTYPE_QOE_FEEDBACK:
            return unpack_qoe_feedback(data)
    except struct.error as exc:
        raise ValueError(f"malformed RTCP packet: {exc}") from exc
    raise ValueError(f"unknown RTCP packet type {packet_type}/{fmt}")


def pack_compound(messages: List[WireMessage]) -> bytes:
    """Concatenate messages into one compound RTCP packet."""
    if not messages:
        raise ValueError("compound packet needs at least one message")
    return b"".join(pack_message(m) for m in messages)


def unpack_compound(data: bytes) -> List[WireMessage]:
    """Split and parse a compound RTCP packet."""
    messages: List[WireMessage] = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < 4:
            raise ValueError("trailing garbage in compound packet")
        (_, _, words) = struct.unpack("!BBH", data[offset:offset + 4])
        end = offset + 4 + 4 * words
        if end > len(data):
            raise ValueError("truncated message in compound packet")
        messages.append(unpack_message(data[offset:end]))
        offset = end
    return messages
