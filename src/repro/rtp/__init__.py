"""RTP/RTCP packet model with the Converge multipath extensions.

The paper extends RTP with a path id, a per-path (flow-level) sequence
number and a per-path transport sequence number (Appendix B, Fig. 18)
and RTCP with a path id and per-path extended highest sequence numbers
(Appendix C, Fig. 19).  This package provides:

- :class:`RtpPacket` and the packet-type/priority taxonomy of Table 2,
- the RTCP message set the system needs (receiver reports,
  transport-wide feedback, NACK, keyframe requests, SDES frame rate,
  and the Converge QoE feedback message),
- byte-level serialization that round-trips the extended headers,
- 16-bit sequence-number arithmetic utilities.
"""

from repro.rtp.packets import (
    FRAME_TYPE_DELTA,
    FRAME_TYPE_KEY,
    PacketType,
    RtpPacket,
    priority_of,
)
from repro.rtp.rtcp import (
    KeyframeRequest,
    Nack,
    QoeFeedback,
    ReceiverReport,
    RtcpMessage,
    SdesFrameRate,
    TransportFeedback,
)
from repro.rtp.sequence import SequenceUnwrapper, seq_diff, seq_less_than
from repro.rtp.srtp import SrtpError, SrtpSession

__all__ = [
    "FRAME_TYPE_DELTA",
    "FRAME_TYPE_KEY",
    "KeyframeRequest",
    "Nack",
    "PacketType",
    "QoeFeedback",
    "ReceiverReport",
    "RtcpMessage",
    "RtpPacket",
    "SdesFrameRate",
    "SequenceUnwrapper",
    "SrtpError",
    "SrtpSession",
    "TransportFeedback",
    "priority_of",
    "seq_diff",
    "seq_less_than",
]
