"""16-bit RTP sequence-number arithmetic.

RTP sequence numbers wrap at 2**16; comparing them naively breaks as
soon as a call lasts more than ~65k packets.  These helpers implement
RFC 1982 serial-number arithmetic plus an unwrapper that maps wrapped
numbers onto a monotonically extended 64-bit space.
"""

from __future__ import annotations

SEQ_MOD = 1 << 16
_HALF = SEQ_MOD // 2


def seq_diff(a: int, b: int) -> int:
    """Return the signed distance ``a - b`` in wrap-around space.

    The result is in ``[-2**15, 2**15)``: positive when ``a`` is ahead
    of ``b``, negative when behind.
    """
    return ((a - b + _HALF) % SEQ_MOD) - _HALF


def seq_less_than(a: int, b: int) -> bool:
    """``True`` when ``a`` precedes ``b`` in wrap-around order."""
    return seq_diff(a, b) < 0


def seq_add(a: int, delta: int) -> int:
    """Advance ``a`` by ``delta`` with wrap-around."""
    return (a + delta) % SEQ_MOD


def unwrap_near(seq: int, reference: int) -> int:
    """Unwrap 16-bit ``seq`` to the value nearest unwrapped ``reference``.

    Used for sequence numbers carried inside other packets (e.g. the
    protected-seq list of a FEC packet): they are always close to the
    receiver's current position, so the nearest interpretation is the
    correct one.
    """
    if not 0 <= seq < SEQ_MOD:
        raise ValueError(f"sequence number out of range: {seq}")
    return reference + seq_diff(seq, reference % SEQ_MOD)


class SequenceUnwrapper:
    """Maps wrapped 16-bit sequence numbers to an unbounded space.

    The first observed number anchors the space.  Subsequent numbers
    are interpreted as whichever unwrapped value is nearest the last
    observed one, which tolerates reordering up to half the sequence
    space (32k packets) — far more than any real jitter buffer.
    """

    def __init__(self) -> None:
        self._last_wrapped: int | None = None
        self._last_unwrapped: int = 0

    def unwrap(self, seq: int) -> int:
        if not 0 <= seq < SEQ_MOD:
            raise ValueError(f"sequence number out of range: {seq}")
        if self._last_wrapped is None:
            self._last_wrapped = seq
            self._last_unwrapped = seq
            return seq
        # Inline of seq_diff: this runs once per received packet.
        self._last_unwrapped += (
            (seq - self._last_wrapped + _HALF) % SEQ_MOD
        ) - _HALF
        self._last_wrapped = seq
        return self._last_unwrapped
