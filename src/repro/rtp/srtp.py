"""SRTP-style media protection for multipath (§5).

The paper extends RTP/SRTP so every path carries media under the
WebRTC-negotiated keys.  This module implements that layer faithfully
in structure — per-(ssrc, path) session keys derived from one master
key, keystream encryption, truncated-HMAC authentication covering the
packet header, RFC 3711 rollover-counter (ROC) estimation so 16-bit
sequence numbers extend to 48-bit packet indexes, and a per-path
replay window — while substituting HMAC-SHA256 as the PRF so the
sandbox needs no cipher library.  Not wire-compatible with RFC 3711,
but every security-relevant behaviour (tamper detection, replay
rejection, cross-path key separation, ROC resync) is real and tested.
"""

from __future__ import annotations

import hmac
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

SEQ_MOD = 1 << 16
AUTH_TAG_BYTES = 10
_KEYSTREAM_BLOCK = 32
REPLAY_WINDOW = 64

_LABEL_ENCRYPTION = b"converge-srtp-enc"
_LABEL_AUTH = b"converge-srtp-auth"


class SrtpError(Exception):
    """Authentication or replay failure."""


def derive_session_keys(
    master_key: bytes, ssrc: int, path_id: int
) -> Tuple[bytes, bytes]:
    """Per-(ssrc, path) encryption and authentication keys.

    Path-specific keys mean a compromise observed on one network does
    not expose traffic on the other — the property that makes
    multipath SRTP more than just replicating one crypto context.
    """
    if len(master_key) < 16:
        raise ValueError("master key must be at least 128 bits")
    context = struct.pack("!Ii", ssrc & 0xFFFFFFFF, path_id)
    enc = hmac.new(master_key, _LABEL_ENCRYPTION + context, hashlib.sha256)
    auth = hmac.new(master_key, _LABEL_AUTH + context, hashlib.sha256)
    return enc.digest(), auth.digest()


def _keystream(key: bytes, index: int, length: int) -> bytes:
    """Deterministic keystream for packet ``index`` (counter mode)."""
    blocks = []
    for counter in range((length + _KEYSTREAM_BLOCK - 1) // _KEYSTREAM_BLOCK):
        blocks.append(
            hmac.new(
                key, struct.pack("!QI", index, counter), hashlib.sha256
            ).digest()
        )
    return b"".join(blocks)[:length]


def _xor(data: bytes, keystream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, keystream))


@dataclass
class _ReplayWindow:
    """RFC 3711 sliding replay window over 48-bit packet indexes."""

    highest: int = -1
    mask: int = 0

    def check_and_update(self, index: int) -> bool:
        """True if ``index`` is fresh; records it."""
        if self.highest < 0:
            self.highest = index
            self.mask = 1
            return True
        if index > self.highest:
            shift = index - self.highest
            self.mask = ((self.mask << shift) | 1) & ((1 << REPLAY_WINDOW) - 1)
            self.highest = index
            return True
        offset = self.highest - index
        if offset >= REPLAY_WINDOW:
            return False  # too old to judge: reject
        bit = 1 << offset
        if self.mask & bit:
            return False  # replay
        self.mask |= bit
        return True


@dataclass
class SrtpSession:
    """Protect/unprotect media for one SSRC across multiple paths."""

    master_key: bytes
    ssrc: int
    _tx_roc: Dict[int, int] = field(default_factory=dict)
    _tx_last_seq: Dict[int, int] = field(default_factory=dict)
    _rx_roc: Dict[int, int] = field(default_factory=dict)
    _rx_highest_seq: Dict[int, int] = field(default_factory=dict)
    _replay: Dict[int, _ReplayWindow] = field(default_factory=dict)
    _keys: Dict[int, Tuple[bytes, bytes]] = field(default_factory=dict)

    def _session_keys(self, path_id: int) -> Tuple[bytes, bytes]:
        if path_id not in self._keys:
            self._keys[path_id] = derive_session_keys(
                self.master_key, self.ssrc, path_id
            )
        return self._keys[path_id]

    # -- sender ----------------------------------------------------------

    def protect(self, payload: bytes, seq: int, path_id: int) -> bytes:
        """Encrypt and authenticate ``payload`` for ``(seq, path_id)``."""
        if not 0 <= seq < SEQ_MOD:
            raise ValueError(f"sequence number out of range: {seq}")
        last = self._tx_last_seq.get(path_id)
        roc = self._tx_roc.get(path_id, 0)
        if last is not None and seq < last and last - seq > SEQ_MOD // 2:
            roc += 1  # sender wrapped around the 16-bit space
            self._tx_roc[path_id] = roc
        self._tx_last_seq[path_id] = seq
        index = roc * SEQ_MOD + seq
        enc_key, auth_key = self._session_keys(path_id)
        ciphertext = _xor(payload, _keystream(enc_key, index, len(payload)))
        tag = self._tag(auth_key, ciphertext, seq, roc)
        return ciphertext + tag

    # -- receiver -----------------------------------------------------------

    def unprotect(self, protected: bytes, seq: int, path_id: int) -> bytes:
        """Verify and decrypt; raises :class:`SrtpError` on failure."""
        if len(protected) < AUTH_TAG_BYTES:
            raise SrtpError("packet shorter than the auth tag")
        ciphertext = protected[:-AUTH_TAG_BYTES]
        tag = protected[-AUTH_TAG_BYTES:]
        enc_key, auth_key = self._session_keys(path_id)
        # RFC 3711-style resynchronization: if the primary ROC guess
        # does not authenticate (the receiver may have missed packets
        # around a wrap), try the adjacent rollover periods before
        # declaring the packet forged.
        estimate = self._estimate_roc(path_id, seq)
        candidates = [estimate, estimate + 1]
        if estimate > 0:
            candidates.append(estimate - 1)
        roc: Optional[int] = None
        for candidate in candidates:
            expected = self._tag(auth_key, ciphertext, seq, candidate)
            if hmac.compare_digest(tag, expected):
                roc = candidate
                break
        if roc is None:
            raise SrtpError("authentication failed")
        index = roc * SEQ_MOD + seq
        window = self._replay.setdefault(path_id, _ReplayWindow())
        if not window.check_and_update(index):
            raise SrtpError(f"replayed packet index {index}")
        self._commit_roc(path_id, seq, roc)
        return _xor(ciphertext, _keystream(enc_key, index, len(ciphertext)))

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _tag(auth_key: bytes, ciphertext: bytes, seq: int, roc: int) -> bytes:
        mac = hmac.new(
            auth_key,
            ciphertext + struct.pack("!HI", seq, roc),
            hashlib.sha256,
        )
        return mac.digest()[:AUTH_TAG_BYTES]

    def _estimate_roc(self, path_id: int, seq: int) -> int:
        """RFC 3711 index guess: pick the ROC candidate whose index is
        closest to the highest seen."""
        roc = self._rx_roc.get(path_id, 0)
        highest = self._rx_highest_seq.get(path_id)
        if highest is None:
            return roc
        if highest < SEQ_MOD // 4:
            # just past a wrap: an old large seq belongs to roc-1
            if seq > 3 * SEQ_MOD // 4:
                return max(roc - 1, 0)
            return roc
        if highest > 3 * SEQ_MOD // 4 and seq < SEQ_MOD // 4:
            return roc + 1  # new seq is past the wrap
        return roc

    def _commit_roc(self, path_id: int, seq: int, roc: int) -> None:
        current = self._rx_roc.get(path_id, 0)
        highest = self._rx_highest_seq.get(path_id, -1)
        if roc > current or (roc == current and seq > highest):
            self._rx_roc[path_id] = roc
            self._rx_highest_seq[path_id] = seq
