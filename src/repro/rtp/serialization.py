"""Byte-level serialization of the extended RTP/RTCP headers.

Implements the wire formats of Appendix B (Fig. 18: RTP one-byte header
extension carrying path id, multipath sequence number and multipath
transport sequence number) and Appendix C (Fig. 19: RTCP header with a
path-id word and per-path extended highest sequence numbers).

The emulator itself moves packet objects, not bytes — but the formats
must exist and round-trip so the reproduction is faithful to the
protocol the paper deploys, and header sizes used for bandwidth
accounting come from here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

RTP_VERSION = 2
# One-byte-extension profile id from RFC 8285.
EXTENSION_PROFILE_ONE_BYTE = 0xBEDE

# Extension element ids used by the Converge header (Fig. 18).
EXT_ID_PATH = 1
EXT_ID_MP_SEQ = 2
EXT_ID_MP_TRANSPORT_SEQ = 3

RTCP_PT_CONVERGE_RR = 205  # transport-layer feedback class


@dataclass
class RtpWireHeader:
    """The fields of a serialized Converge RTP header."""

    seq: int
    timestamp: int
    ssrc: int
    marker: bool
    payload_type: int
    path_id: int
    mp_seq: int
    mp_transport_seq: int


def pack_rtp_header(header: RtpWireHeader) -> bytes:
    """Serialize the RTP fixed header + Converge multipath extension."""
    if not 0 <= header.seq < 1 << 16:
        raise ValueError("seq out of range")
    if not 0 <= header.mp_seq < 1 << 16:
        raise ValueError("mp_seq out of range")
    if not 0 <= header.mp_transport_seq < 1 << 16:
        raise ValueError("mp_transport_seq out of range")
    if not 0 <= header.path_id < 1 << 8:
        raise ValueError("path_id out of range")
    first_byte = (RTP_VERSION << 6) | (1 << 4)  # X=1: extension present
    second_byte = (int(header.marker) << 7) | (header.payload_type & 0x7F)
    fixed = struct.pack(
        "!BBHII",
        first_byte,
        second_byte,
        header.seq,
        header.timestamp & 0xFFFFFFFF,
        header.ssrc & 0xFFFFFFFF,
    )
    # One-byte extension elements: (id << 4 | len-1), then payload.
    elements = b"".join(
        (
            bytes([(EXT_ID_PATH << 4) | 0]),
            bytes([header.path_id]),
            bytes([(EXT_ID_MP_SEQ << 4) | 1]),
            struct.pack("!H", header.mp_seq),
            bytes([(EXT_ID_MP_TRANSPORT_SEQ << 4) | 1]),
            struct.pack("!H", header.mp_transport_seq),
        )
    )
    # Pad to a 32-bit boundary as RFC 8285 requires.
    padding = (-len(elements)) % 4
    elements += b"\x00" * padding
    extension = struct.pack("!HH", EXTENSION_PROFILE_ONE_BYTE, len(elements) // 4)
    return fixed + extension + elements


def unpack_rtp_header(data: bytes) -> RtpWireHeader:
    """Parse bytes produced by :func:`pack_rtp_header`."""
    if len(data) < 16:
        raise ValueError("truncated RTP header")
    first_byte, second_byte, seq, timestamp, ssrc = struct.unpack(
        "!BBHII", data[:12]
    )
    version = first_byte >> 6
    if version != RTP_VERSION:
        raise ValueError(f"bad RTP version: {version}")
    has_extension = bool(first_byte & 0x10)
    if not has_extension:
        raise ValueError("multipath extension missing")
    marker = bool(second_byte & 0x80)
    payload_type = second_byte & 0x7F
    profile, ext_words = struct.unpack("!HH", data[12:16])
    if profile != EXTENSION_PROFILE_ONE_BYTE:
        raise ValueError(f"unexpected extension profile: {profile:#x}")
    if len(data) < 16 + 4 * ext_words:
        raise ValueError("truncated RTP extension")
    elements = data[16 : 16 + 4 * ext_words]
    path_id = mp_seq = mp_transport_seq = -1
    offset = 0
    while offset < len(elements):
        byte = elements[offset]
        if byte == 0:  # padding
            offset += 1
            continue
        ext_id = byte >> 4
        length = (byte & 0x0F) + 1
        payload = elements[offset + 1 : offset + 1 + length]
        if len(payload) < length:
            raise ValueError("truncated RTP extension element")
        if ext_id == EXT_ID_PATH:
            path_id = payload[0]
        elif ext_id == EXT_ID_MP_SEQ:
            (mp_seq,) = struct.unpack("!H", payload)
        elif ext_id == EXT_ID_MP_TRANSPORT_SEQ:
            (mp_transport_seq,) = struct.unpack("!H", payload)
        offset += 1 + length
    if -1 in (path_id, mp_seq, mp_transport_seq):
        raise ValueError("incomplete multipath extension")
    return RtpWireHeader(
        seq=seq,
        timestamp=timestamp,
        ssrc=ssrc,
        marker=marker,
        payload_type=payload_type,
        path_id=path_id,
        mp_seq=mp_seq,
        mp_transport_seq=mp_transport_seq,
    )


@dataclass
class RtcpWireReport:
    """The fields of a serialized Converge RTCP receiver report."""

    ssrc: int
    path_id: int
    fraction_lost: float  # [0, 1]
    cumulative_lost: int
    extended_highest_seq: int
    extended_highest_mp_seq: int


def pack_rtcp_report(report: RtcpWireReport) -> bytes:
    """Serialize the extended RTCP receiver report of Fig. 19."""
    if not 0.0 <= report.fraction_lost <= 1.0:
        raise ValueError("fraction_lost out of range")
    header = struct.pack(
        "!BBH",
        (RTP_VERSION << 6) | 1,  # RC=1
        RTCP_PT_CONVERGE_RR,
        8,  # length in 32-bit words minus one
    )
    body = struct.pack(
        "!IIBI3xII",
        report.path_id & 0xFFFFFFFF,
        report.ssrc & 0xFFFFFFFF,
        int(round(report.fraction_lost * 255)),
        report.cumulative_lost & 0xFFFFFFFF,
        report.extended_highest_seq & 0xFFFFFFFF,
        report.extended_highest_mp_seq & 0xFFFFFFFF,
    )
    return header + body


def unpack_rtcp_report(data: bytes) -> RtcpWireReport:
    """Parse bytes produced by :func:`pack_rtcp_report`."""
    if len(data) < 4 + 24:
        raise ValueError("truncated RTCP report")
    first_byte, packet_type, _length = struct.unpack("!BBH", data[:4])
    if first_byte >> 6 != RTP_VERSION:
        raise ValueError("bad RTCP version")
    if packet_type != RTCP_PT_CONVERGE_RR:
        raise ValueError(f"unexpected RTCP packet type: {packet_type}")
    (
        path_id,
        ssrc,
        fraction_byte,
        cumulative_lost,
        ext_seq,
        ext_mp_seq,
    ) = struct.unpack("!IIBI3xII", data[4:28])
    return RtcpWireReport(
        ssrc=ssrc,
        path_id=path_id,
        fraction_lost=fraction_byte / 255.0,
        cumulative_lost=cumulative_lost,
        extended_highest_seq=ext_seq,
        extended_highest_mp_seq=ext_mp_seq,
    )
