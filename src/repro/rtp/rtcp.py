"""RTCP message set used by the conferencing system.

Standard WebRTC messages (receiver reports, transport-wide feedback,
NACK, PLI-style keyframe requests) plus the two messages the paper adds
in §5: an SDES item carrying the sender's expected frame rate, and the
Converge QoE feedback message ``(path_id, alpha, FCD)`` of §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class RtcpMessage:
    """Base class for all RTCP messages; ``path_id`` per Fig. 19."""

    ssrc: int
    path_id: int
    send_time: float = 0.0

    @property
    def size_bytes(self) -> int:
        # RTCP header (8) + path id word (4); subclasses add payload.
        return 12


@dataclass
class ReceiverReport(RtcpMessage):
    """Per-path loss/delay report block (drives GCC's loss controller)."""

    fraction_lost: float = 0.0
    cumulative_lost: int = 0
    extended_highest_seq: int = 0
    extended_highest_mp_seq: int = 0
    jitter: float = 0.0
    # Round-trip estimation: echo of the last sender-report timestamp
    # and the delay since it was received, per RFC 3550.
    last_sr_timestamp: float = 0.0
    delay_since_last_sr: float = 0.0

    @property
    def size_bytes(self) -> int:
        return 12 + 28


@dataclass
class TransportFeedback(RtcpMessage):
    """Transport-wide CC feedback: per-packet arrival times on one path.

    Entries are ``(mp_transport_seq, arrival_time)``; lost packets are
    reported as ``(seq, -1.0)``.  This is what feeds GCC's delay-based
    estimator, mirroring WebRTC's transport-cc extension.
    """

    packets: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 12 + 8 + 2 * len(self.packets)


@dataclass
class Nack(RtcpMessage):
    """Request retransmission of specific stream-level sequence numbers."""

    seqs: List[int] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 12 + 4 * len(self.seqs)


@dataclass
class KeyframeRequest(RtcpMessage):
    """PLI-equivalent: the decoder lost sync and needs a new keyframe."""

    frame_id: int = -1

    @property
    def size_bytes(self) -> int:
        return 12 + 4


@dataclass
class SdesFrameRate(RtcpMessage):
    """Sender-to-receiver SDES item announcing the expected frame rate.

    The receiver inverts this to obtain ``IFD_exp`` (§4.2).
    """

    frame_rate: float = 30.0

    @property
    def size_bytes(self) -> int:
        return 12 + 4


@dataclass
class QoeFeedback(RtcpMessage):
    """The Converge QoE feedback message of §4.2.

    ``alpha`` is the signed early/late packet count for ``path_id``
    (negative: send fewer packets on that path), ``fcd`` the frame
    construction delay of the frame that triggered the feedback.
    """

    alpha: int = 0
    fcd: float = 0.0

    @property
    def size_bytes(self) -> int:
        return 12 + 8
