"""Command-line interface.

Usage::

    python -m repro run --system converge --scenario driving --duration 30
    python -m repro compare --scenario walking --duration 30
    python -m repro experiment fig12 --duration 60
    python -m repro chaos --chaos rtcp-blackout --scenario driving
    python -m repro list

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.plots import render_series, sparkline
from repro.analysis.export import save_result_json
from repro.core.config import FecMode, SystemKind
from repro.experiments import (
    fig01_motivation,
    fig03_multipath_not_enough,
    fig09_10_wild,
    fig11_feedback,
    fig12_13_fec,
    fig14_15_comparison,
    fig16_17_stationary,
    traces_appendix,
)
from repro.experiments.common import run_chaos, run_system, scenario_paths
from repro.faults.scenarios import chaos_scenario_names
from repro.metrics.recovery import compute_recovery
from repro.metrics.report import format_table
from repro.traces.scenarios import scenario_networks

EXPERIMENTS = {
    "fig01": fig01_motivation,
    "fig03": fig03_multipath_not_enough,
    "fig09": fig09_10_wild,
    "fig11": fig11_feedback,
    "fig12": fig12_13_fec,
    "fig14": fig14_15_comparison,
    "fig16": fig16_17_stationary,
    "traces": traces_appendix,
}

SCENARIOS = ("stationary", "walking", "driving")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Converge: QoE-driven Multipath Video "
            "Conferencing over WebRTC (SIGCOMM 2023)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one simulated call")
    run_parser.add_argument(
        "--system",
        choices=[s.value for s in SystemKind],
        default=SystemKind.CONVERGE.value,
    )
    run_parser.add_argument("--scenario", choices=SCENARIOS, default="driving")
    run_parser.add_argument("--duration", type=float, default=30.0)
    run_parser.add_argument("--streams", type=int, default=1)
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument(
        "--fec", choices=[m.value for m in FecMode], default=None,
        help="override the system's default FEC mode",
    )
    run_parser.add_argument(
        "--no-feedback", action="store_true",
        help="disable the QoE feedback loop (ablation)",
    )
    run_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full result (summary + series) as JSON",
    )
    run_parser.add_argument(
        "--plot", action="store_true", help="render terminal charts"
    )

    compare_parser = sub.add_parser(
        "compare", help="run every system on one scenario"
    )
    compare_parser.add_argument(
        "--scenario", choices=SCENARIOS, default="driving"
    )
    compare_parser.add_argument("--duration", type=float, default=30.0)
    compare_parser.add_argument("--streams", type=int, default=1)
    compare_parser.add_argument("--seed", type=int, default=1)

    chaos_parser = sub.add_parser(
        "chaos", help="run one call under an injected fault plan"
    )
    chaos_parser.add_argument(
        "--system",
        choices=[s.value for s in SystemKind],
        default=SystemKind.CONVERGE.value,
    )
    chaos_parser.add_argument(
        "--scenario", choices=SCENARIOS, default="driving"
    )
    chaos_parser.add_argument(
        "--chaos",
        choices=chaos_scenario_names(),
        default="rtcp-blackout",
        help="which canned fault plan to inject",
    )
    chaos_parser.add_argument("--duration", type=float, default=30.0)
    chaos_parser.add_argument("--streams", type=int, default=1)
    chaos_parser.add_argument("--seed", type=int, default=1)
    chaos_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full result (summary + series + faults) as JSON",
    )
    chaos_parser.add_argument(
        "--plot", action="store_true", help="render terminal charts"
    )

    experiment_parser = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment_parser.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment_parser.add_argument("--duration", type=float, default=60.0)
    experiment_parser.add_argument("--seed", type=int, default=1)

    sub.add_parser("list", help="list systems, scenarios, experiments")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.fec is not None:
        kwargs["fec_mode"] = FecMode(args.fec)
    if args.no_feedback:
        kwargs["qoe_feedback_enabled"] = False
    paths = scenario_paths(args.scenario, args.duration, args.seed)
    result = run_system(
        SystemKind(args.system),
        paths,
        duration=args.duration,
        num_streams=args.streams,
        seed=args.seed,
        **kwargs,
    )
    summary = result.summary
    print(
        format_table(
            ["metric", "value"],
            [
                ["system", result.label],
                ["scenario", args.scenario],
                ["frames rendered", summary.frames_rendered],
                ["average FPS", summary.average_fps],
                ["throughput (Mbps)", summary.throughput_bps / 1e6],
                ["E2E mean (ms)", 1000 * summary.e2e_mean],
                ["E2E p95 (ms)", 1000 * summary.e2e_p95],
                ["freeze total (s)", summary.freeze.total_duration],
                ["QP", summary.average_qp],
                ["PSNR (dB)", summary.average_psnr],
                ["FEC overhead (%)", 100 * summary.fec_overhead],
                ["FEC utilization (%)", 100 * summary.fec_utilization],
                ["frame drops", summary.frame_drops],
                ["keyframe requests", summary.keyframe_requests],
            ],
        )
    )
    if args.plot:
        rate = result.metrics.receive_rate_series
        if len(rate):
            print()
            print(
                render_series(
                    list(zip(rate.times, [v / 1e6 for v in rate.values])),
                    title="received rate (Mbps)",
                )
            )
        fps = result.metrics.fps_series(args.duration)
        print()
        print(f"FPS      {sparkline(fps.values, width=72)}")
    if args.json:
        target = save_result_json(result, args.json)
        print(f"\nwrote {target}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    result = run_chaos(
        SystemKind(args.system),
        args.scenario,
        args.chaos,
        duration=args.duration,
        num_streams=args.streams,
        seed=args.seed,
    )
    summary = result.summary
    print(
        format_table(
            ["metric", "value"],
            [
                ["system", result.label],
                ["scenario", args.scenario],
                ["chaos plan", args.chaos],
                ["faults injected", len(result.metrics.fault_events)],
                ["average FPS", summary.average_fps],
                ["throughput (Mbps)", summary.throughput_bps / 1e6],
                ["E2E mean (ms)", 1000 * summary.e2e_mean],
                ["freeze total (s)", summary.freeze.total_duration],
                ["frame drops", summary.frame_drops],
            ],
        )
    )
    recoveries = compute_recovery(
        result.metrics, args.duration, frame_rate=result.config.frame_rate
    )
    if recoveries:
        print()

        def fmt(value):
            return f"{value:.2f}" if value is not None else "never"

        print(
            format_table(
                ["fault", "path", "window (s)", "re-enable (s)",
                 "rate rec (s)", "QoE rec (s)"],
                [
                    [
                        r.fault.kind,
                        r.fault.path_id,
                        f"{r.fault.start:.1f}-{r.fault.end:.1f}",
                        fmt(r.reenable_time),
                        fmt(r.rate_recovery_time),
                        fmt(r.qoe_recovery_time),
                    ]
                    for r in recoveries
                ],
            )
        )
    if args.plot:
        rate = result.metrics.receive_rate_series
        if len(rate):
            print()
            print(
                render_series(
                    list(zip(rate.times, [v / 1e6 for v in rate.values])),
                    title="received rate (Mbps)",
                )
            )
        fps = result.metrics.fps_series(args.duration)
        print()
        print(f"FPS      {sparkline(fps.values, width=72)}")
    if args.json:
        target = save_result_json(result, args.json)
        print(f"\nwrote {target}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    paths = scenario_paths(args.scenario, args.duration, args.seed)
    rows = []
    for system in SystemKind:
        result = run_system(
            system,
            paths,
            duration=args.duration,
            num_streams=args.streams,
            seed=args.seed,
        )
        s = result.summary
        rows.append(
            [
                result.label,
                s.throughput_bps / 1e6,
                s.average_fps,
                1000 * s.e2e_mean,
                s.freeze.total_duration,
                s.average_qp,
                100 * s.fec_overhead,
                s.frame_drops,
            ]
        )
    print(
        format_table(
            ["system", "tput Mbps", "FPS", "E2E ms", "freeze s", "QP",
             "FEC oh %", "drops"],
            rows,
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = EXPERIMENTS[args.name]
    module.main(duration=args.duration, seed=args.seed)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("systems    :", ", ".join(s.value for s in SystemKind))
    print("scenarios  :", ", ".join(
        f"{s} ({'+'.join(scenario_networks(s))})" for s in SCENARIOS
    ))
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    print("chaos plans:", ", ".join(chaos_scenario_names()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "chaos": _cmd_chaos,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
