"""Command-line interface.

Usage::

    python -m repro run --system converge --scenario driving --duration 30
    python -m repro run --jobs 4 --cache ~/.cache/repro-converge
    python -m repro compare --scenario walking --duration 30
    python -m repro sweep --systems converge srtt --seeds 4 --jobs 4
    python -m repro fleet --scenarios driving --seeds 200 --mode batch
    python -m repro experiment fig12 --duration 60 --jobs 8
    python -m repro profile fig14 --duration 12 --top 20
    python -m repro chaos --chaos rtcp-blackout --scenario driving
    python -m repro cache ls
    python -m repro cache shard --shards 4 --out shards/
    python -m repro cache merge shards/shard-0 shards/shard-1
    python -m repro cache clear
    python -m repro lint --format json
    python -m repro analyze --format sarif
    python -m repro list

Every command is deterministic given ``--seed``: the same invocation
produces byte-identical results whether it runs serially, across
``--jobs`` worker processes, or out of the ``--cache`` directory.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.export import save_run_report_json
from repro.analysis.plots import render_series, sparkline
from repro.core.config import FecMode, SystemKind
from repro.devtools.analyze import add_analyze_arguments, run_analyze
from repro.devtools.lint import add_lint_arguments, run_lint
from repro.experiments import (
    fig01_motivation,
    fig03_multipath_not_enough,
    fig09_10_wild,
    fig11_feedback,
    fig12_13_fec,
    fig14_15_comparison,
    fig16_17_stationary,
    sweeps,
    traces_appendix,
)
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.cells import (
    Cell,
    Fidelity,
    ScenarioPaths,
    expand_grid,
    make_cell,
)
from repro.experiments.runner import CellSummary, results_of, run_cells
from repro.faults.scenarios import chaos_scenario_names
from repro.metrics.report import format_table
from repro.traces.scenarios import scenario_networks

EXPERIMENTS = {
    "fig01": fig01_motivation,
    "fig03": fig03_multipath_not_enough,
    "fig09": fig09_10_wild,
    "fig11": fig11_feedback,
    "fig12": fig12_13_fec,
    "fig14": fig14_15_comparison,
    "fig16": fig16_17_stationary,
    "sweeps": sweeps,
    "traces": traces_appendix,
}

SCENARIOS = ("stationary", "walking", "driving", "migration")


def _add_fidelity_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fidelity",
        choices=[f.value for f in Fidelity],
        default=Fidelity.PACKET.value,
        help="simulation backend: the packet-level core (exact) or the "
        "flow-level fast path (cross-validated approximation)",
    )


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """The flags every runner-backed command shares."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all cores; 1 = serial)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="cache results under DIR (reused on identical re-runs)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per finished cell to stderr",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell; a cell that exceeds it is "
        "retried once, then quarantined as a structured error",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Converge: QoE-driven Multipath Video "
            "Conferencing over WebRTC (SIGCOMM 2023)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one simulated call")
    run_parser.add_argument(
        "--system",
        choices=[s.value for s in SystemKind],
        default=SystemKind.CONVERGE.value,
    )
    run_parser.add_argument("--scenario", choices=SCENARIOS, default="driving")
    run_parser.add_argument("--duration", type=float, default=30.0)
    run_parser.add_argument("--streams", type=int, default=1)
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument(
        "--fec", choices=[m.value for m in FecMode], default=None,
        help="override the system's default FEC mode",
    )
    run_parser.add_argument(
        "--no-feedback", action="store_true",
        help="disable the QoE feedback loop (ablation)",
    )
    run_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full result (summary + series) as JSON",
    )
    run_parser.add_argument(
        "--plot", action="store_true", help="render terminal charts"
    )
    _add_fidelity_arg(run_parser)
    _add_runner_args(run_parser)

    compare_parser = sub.add_parser(
        "compare", help="run every system on one scenario"
    )
    compare_parser.add_argument(
        "--scenario", choices=SCENARIOS, default="driving"
    )
    compare_parser.add_argument("--duration", type=float, default=30.0)
    compare_parser.add_argument("--streams", type=int, default=1)
    compare_parser.add_argument("--seed", type=int, default=1)
    _add_fidelity_arg(compare_parser)
    _add_runner_args(compare_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="run a scenarios x systems x seeds grid"
    )
    sweep_parser.add_argument(
        "--scenarios", nargs="+", choices=SCENARIOS, default=list(SCENARIOS)
    )
    sweep_parser.add_argument(
        "--systems", nargs="+",
        choices=[s.value for s in SystemKind],
        default=[s.value for s in SystemKind],
    )
    sweep_parser.add_argument(
        "--seeds", type=int, default=3, metavar="N",
        help="number of seeds per point (seed, seed+1, ...)",
    )
    sweep_parser.add_argument("--seed", type=int, default=1)
    sweep_parser.add_argument("--duration", type=float, default=30.0)
    sweep_parser.add_argument("--streams", type=int, default=1)
    sweep_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full run report (stats + every cell) as JSON",
    )
    sweep_parser.add_argument(
        "--mode", choices=["scalar", "batch"], default="scalar",
        help="batch: group compatible flow cells into array batches "
        "(byte-identical to scalar execution)",
    )
    _add_fidelity_arg(sweep_parser)
    _add_runner_args(sweep_parser)

    fleet_parser = sub.add_parser(
        "fleet",
        help="run a seeded scenario matrix and report QoE distributions",
    )
    fleet_parser.add_argument(
        "--scenarios", nargs="+", choices=SCENARIOS, default=["driving"]
    )
    fleet_parser.add_argument(
        "--systems", nargs="+",
        choices=[s.value for s in SystemKind],
        default=[s.value for s in SystemKind],
    )
    fleet_parser.add_argument(
        "--seeds", type=int, default=32, metavar="N",
        help="seeds per matrix point (seed, seed+1, ...)",
    )
    fleet_parser.add_argument("--seed", type=int, default=1)
    fleet_parser.add_argument("--duration", type=float, default=30.0)
    fleet_parser.add_argument("--streams", type=int, default=1)
    fleet_parser.add_argument(
        "--mode", choices=["batch", "scalar"], default="batch",
        help="batch: group compatible flow cells into array batches "
        "(byte-identical to scalar); scalar: per-process execution",
    )
    fleet_parser.add_argument(
        "--confidence", type=float, default=0.95,
        help="bootstrap confidence level for the per-metric mean CI",
    )
    fleet_parser.add_argument(
        "--resamples", type=int, default=1000,
        help="bootstrap resamples per metric",
    )
    fleet_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full fleet report (per-group distributions) as JSON",
    )
    fleet_parser.add_argument(
        "--fidelity",
        choices=[f.value for f in Fidelity],
        default=Fidelity.FLOW.value,
        help="simulation backend (fleet default: the flow fast path)",
    )
    _add_runner_args(fleet_parser)

    chaos_parser = sub.add_parser(
        "chaos", help="run one call under an injected fault plan"
    )
    chaos_parser.add_argument(
        "--system",
        choices=[s.value for s in SystemKind],
        default=SystemKind.CONVERGE.value,
    )
    chaos_parser.add_argument(
        "--scenario", choices=SCENARIOS, default="driving"
    )
    chaos_parser.add_argument(
        "--chaos",
        choices=chaos_scenario_names(),
        default="rtcp-blackout",
        help="which canned fault plan to inject",
    )
    chaos_parser.add_argument("--duration", type=float, default=30.0)
    chaos_parser.add_argument("--streams", type=int, default=1)
    chaos_parser.add_argument("--seed", type=int, default=1)
    chaos_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full result (summary + series + faults) as JSON",
    )
    chaos_parser.add_argument(
        "--plot", action="store_true", help="render terminal charts"
    )
    _add_fidelity_arg(chaos_parser)
    _add_runner_args(chaos_parser)

    experiment_parser = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment_parser.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment_parser.add_argument("--duration", type=float, default=60.0)
    experiment_parser.add_argument("--seed", type=int, default=1)
    _add_fidelity_arg(experiment_parser)
    _add_runner_args(experiment_parser)

    profile_parser = sub.add_parser(
        "profile",
        help="profile one experiment's cells (cProfile + subsystem table)",
    )
    profile_parser.add_argument(
        "name",
        choices=sorted(
            name for name, mod in EXPERIMENTS.items() if hasattr(mod, "cells")
        ),
        help="experiment whose cells to run serially under the profiler",
    )
    profile_parser.add_argument(
        "--duration", type=float, default=12.0,
        help="per-cell duration in seconds (short default: profiling "
        "runs serially in-process)",
    )
    profile_parser.add_argument("--seed", type=int, default=1)
    profile_parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="profile only the first N cells of the experiment",
    )
    profile_parser.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="number of cProfile hotspots to print (by cumulative time)",
    )
    profile_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the subsystem accounting + hotspots as JSON",
    )

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the result cache"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("ls", "list cached cell results"),
        ("clear", "delete every cached result"),
    ):
        cache_cmd = cache_sub.add_parser(name, help=help_text)
        cache_cmd.add_argument(
            "--cache", metavar="DIR", default=None,
            help=f"cache directory (default: {default_cache_dir()})",
        )
    merge_cmd = cache_sub.add_parser(
        "merge",
        help="fold other caches' entries into this one (sharded sweeps)",
    )
    merge_cmd.add_argument(
        "sources", nargs="+", metavar="DIR",
        help="shard cache directories to merge in",
    )
    merge_cmd.add_argument(
        "--cache", metavar="DIR", default=None,
        help=f"target cache directory (default: {default_cache_dir()})",
    )
    shard_cmd = cache_sub.add_parser(
        "shard",
        help="partition this cache's entries into N shard caches",
    )
    shard_cmd.add_argument(
        "--shards", type=int, required=True, metavar="N",
        help="number of shards (content-addressed assignment)",
    )
    shard_cmd.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory receiving shard-0 ... shard-N-1 caches",
    )
    shard_cmd.add_argument(
        "--cache", metavar="DIR", default=None,
        help=f"source cache directory (default: {default_cache_dir()})",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="run the simulation-safety static analysis (rules R001-R007)",
    )
    add_lint_arguments(lint_parser)

    analyze_parser = sub.add_parser(
        "analyze",
        help="run the whole-program determinism analysis (rules R100-R103)",
    )
    add_analyze_arguments(analyze_parser)

    sub.add_parser("list", help="list systems, scenarios, experiments")
    return parser


def _run_single_cell(cell: Cell, args: argparse.Namespace) -> CellSummary:
    """Run one cell through the runner; returns its CellSummary."""
    report = run_cells(
        [cell],
        jobs=args.jobs,
        cache=args.cache,
        progress=args.progress,
        cell_timeout=args.cell_timeout,
    )
    return results_of(report)[0]


def _print_charts(summary: CellSummary, duration: float) -> None:
    rate = summary.series_pairs("receive_rate")
    if rate:
        print()
        print(
            render_series(
                [(t, v / 1e6) for t, v in rate],
                title="received rate (Mbps)",
            )
        )
    fps = summary.series_values("fps")
    print()
    print(f"FPS      {sparkline(fps, width=72)}")


def _write_payload(summary: CellSummary, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(summary.data, handle, indent=2)
    print(f"\nwrote {path}")


def _cmd_run(args: argparse.Namespace) -> int:
    overrides = {}
    if args.fec is not None:
        overrides["fec_mode"] = FecMode(args.fec)
    if args.no_feedback:
        overrides["qoe_feedback_enabled"] = False
    cell = make_cell(
        ScenarioPaths(args.scenario),
        SystemKind(args.system),
        seed=args.seed,
        duration=args.duration,
        num_streams=args.streams,
        fidelity=args.fidelity,
        **overrides,
    )
    summary = _run_single_cell(cell, args)
    print(
        format_table(
            ["metric", "value"],
            [
                ["system", summary.label],
                ["scenario", args.scenario],
                ["frames rendered", summary.frames_rendered],
                ["average FPS", summary.average_fps],
                ["throughput (Mbps)", summary.throughput_bps / 1e6],
                ["E2E mean (ms)", 1000 * summary.e2e_mean],
                ["E2E p95 (ms)", 1000 * summary.e2e_p95],
                ["freeze total (s)", summary.freeze_total],
                ["QP", summary.average_qp],
                ["PSNR (dB)", summary.average_psnr],
                ["FEC overhead (%)", 100 * summary.fec_overhead],
                ["FEC utilization (%)", 100 * summary.fec_utilization],
                ["frame drops", summary.frame_drops],
                ["keyframe requests", summary.keyframe_requests],
            ],
        )
    )
    if args.plot:
        _print_charts(summary, args.duration)
    if args.json:
        _write_payload(summary, args.json)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    cell = make_cell(
        ScenarioPaths(args.scenario),
        SystemKind(args.system),
        seed=args.seed,
        duration=args.duration,
        num_streams=args.streams,
        chaos=args.chaos,
        fidelity=args.fidelity,
    )
    summary = _run_single_cell(cell, args)
    faults = summary.faults
    churn = summary.data.get("churn")
    print(
        format_table(
            ["metric", "value"],
            [
                ["system", summary.label],
                ["scenario", args.scenario],
                ["chaos plan", args.chaos],
                ["faults injected", len(faults["injected"])],
                ["churn events", len(churn["events"]) if churn else 0],
                ["average FPS", summary.average_fps],
                ["throughput (Mbps)", summary.throughput_bps / 1e6],
                ["E2E mean (ms)", 1000 * summary.e2e_mean],
                ["freeze total (s)", summary.freeze_total],
                ["frame drops", summary.frame_drops],
            ],
        )
    )

    def fmt(value: Optional[float]) -> str:
        return f"{value:.2f}" if value is not None else "never"

    recoveries = faults.get("recovery", [])
    if recoveries:
        print()
        print(
            format_table(
                ["fault", "path", "window (s)", "re-enable (s)",
                 "rate rec (s)", "QoE rec (s)"],
                [
                    [
                        r["kind"],
                        r["path_id"],
                        f"{r['start']:.1f}-{r['end']:.1f}",
                        fmt(r["reenable_time"]),
                        fmt(r["rate_recovery_time"]),
                        fmt(r["qoe_recovery_time"]),
                    ]
                    for r in recoveries
                ],
            )
        )
    if churn:
        print()
        print(
            format_table(
                ["churn", "path", "t (s)", "next render (s)",
                 "render gap (s)", "survived"],
                [
                    [
                        e["action"],
                        e["path_id"],
                        f"{e['time']:.1f}",
                        fmt(e["time_to_next_render"]),
                        f"{e['render_gap']:.2f}",
                        "yes" if e["survived"] else "NO",
                    ]
                    for e in churn["recovery"]
                ],
            )
        )
        survived = "yes" if churn["session_survived"] else "NO"
        print(
            f"\nsession survived churn: {survived} "
            f"(max render gap {churn['max_render_gap']:.2f}s)"
        )
    if args.plot:
        _print_charts(summary, args.duration)
    if args.json:
        _write_payload(summary, args.json)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = ScenarioPaths(args.scenario)
    job_list = [
        make_cell(
            spec,
            system,
            seed=args.seed,
            duration=args.duration,
            num_streams=args.streams,
            fidelity=args.fidelity,
        )
        for system in SystemKind
    ]
    report = run_cells(
        job_list,
        jobs=args.jobs,
        cache=args.cache,
        progress=args.progress,
        cell_timeout=args.cell_timeout,
    )
    rows = []
    for summary in results_of(report):
        rows.append(
            [
                summary.label,
                summary.throughput_bps / 1e6,
                summary.average_fps,
                1000 * summary.e2e_mean,
                summary.freeze_total,
                summary.average_qp,
                100 * summary.fec_overhead,
                summary.frame_drops,
            ]
        )
    print(
        format_table(
            ["system", "tput Mbps", "FPS", "E2E ms", "freeze s", "QP",
             "FEC oh %", "drops"],
            rows,
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    seeds = [args.seed + i for i in range(max(args.seeds, 1))]
    job_list = expand_grid(
        [ScenarioPaths(scenario) for scenario in args.scenarios],
        [SystemKind(system) for system in args.systems],
        seeds,
        duration=args.duration,
        num_streams=args.streams,
        fidelity=args.fidelity,
    )
    report = run_cells(
        job_list,
        jobs=args.jobs,
        cache=args.cache,
        progress=args.progress,
        cell_timeout=args.cell_timeout,
        mode=args.mode,
    )
    # Per (scenario, system) seed-averaged rows; failures counted, not fatal.
    rows = []
    index = 0
    for scenario in args.scenarios:
        for system in args.systems:
            outcomes = report.outcomes[index:index + len(seeds)]
            index += len(seeds)
            good = [o.summary for o in outcomes if o.ok]
            failed = len(outcomes) - len(good)
            if not good:
                rows.append([scenario, system, "-", "-", "-", "-", failed])
                continue
            n = len(good)
            rows.append(
                [
                    scenario,
                    system,
                    sum(s.throughput_bps for s in good) / n / 1e6,
                    sum(s.average_fps for s in good) / n,
                    1000 * sum(s.e2e_mean for s in good) / n,
                    sum(s.freeze_total for s in good) / n,
                    failed,
                ]
            )
    print(
        format_table(
            ["scenario", "system", "tput Mbps", "FPS", "E2E ms",
             "freeze s", "failed"],
            rows,
        )
    )
    stats = report.stats
    extra = ""
    if stats.retried or stats.timeouts:
        extra = f", {stats.retried} retried, {stats.timeouts} timeouts"
    print(
        f"\n{stats.cells_total} cells ({stats.cells_unique} unique), "
        f"{stats.executed} executed, {stats.cache_hits} cached "
        f"({100 * stats.cache_hit_rate:.0f}%), {stats.errors} errors{extra}, "
        f"{stats.wall_seconds:.1f}s wall on {stats.jobs} jobs"
    )
    if stats.quarantined:
        print(
            f"quarantined {len(stats.quarantined)} poison cell(s): "
            + ", ".join(stats.quarantined)
        )
    if args.json:
        target = save_run_report_json(report, args.json)
        print(f"wrote {target}")
    return 0 if report.ok() else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.experiments.fleet import FleetSpec, run_fleet

    spec = FleetSpec.from_ranges(
        scenarios=args.scenarios,
        systems=[SystemKind(system) for system in args.systems],
        seed_start=args.seed,
        seed_count=max(args.seeds, 1),
        duration=args.duration,
        fidelity=args.fidelity,
        num_streams=args.streams,
    )
    report = run_fleet(
        spec,
        jobs=args.jobs,
        cache=args.cache,
        progress=args.progress,
        cell_timeout=args.cell_timeout,
        mode=args.mode,
        confidence=args.confidence,
        resamples=args.resamples,
    )

    def ci(group_metrics, metric: str, scale: float = 1.0) -> str:
        row = group_metrics.get(metric)
        if row is None:
            return "-"
        return (
            f"{scale * row['mean']:.2f} "
            f"[{scale * row['ci_lo']:.2f}, {scale * row['ci_hi']:.2f}]"
        )

    rows = []
    for group in report.groups:
        rows.append(
            [
                group.scenario,
                group.system,
                group.n,
                ci(group.metrics, "throughput_bps", 1e-6),
                ci(group.metrics, "average_fps"),
                ci(group.metrics, "e2e_p95", 1000.0),
                ci(group.metrics, "freeze_total"),
                ci(group.metrics, "frame_drops"),
                group.failed,
            ]
        )
    pct = f"{100.0 * args.confidence:g}%"
    print(
        format_table(
            ["scenario", "system", "n", f"tput Mbps [{pct}]",
             f"FPS [{pct}]", f"E2E p95 ms [{pct}]", f"stall s [{pct}]",
             f"drops [{pct}]", "failed"],
            rows,
        )
    )
    stats = report.stats
    rate = (
        f" ({stats.cells_unique / stats.wall_seconds:.1f} cells/s)"
        if stats.wall_seconds > 0
        else ""
    )
    print(
        f"\n{stats.cells_total} cells ({stats.cells_unique} unique), "
        f"{stats.executed} executed, {stats.cache_hits} cached "
        f"({100 * stats.cache_hit_rate:.0f}%), {stats.errors} errors, "
        f"{stats.wall_seconds:.1f}s wall{rate}"
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.payload(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0 if stats.errors == 0 else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats
    from time import perf_counter

    from repro.experiments.runner import execute_cell
    from repro.simulation import SimProfiler

    module = EXPERIMENTS[args.name]
    cells = module.cells(duration=args.duration, seed=args.seed)
    if args.limit is not None:
        cells = cells[: max(args.limit, 0)]
    if not cells:
        print("nothing to profile", file=sys.stderr)
        return 1

    sim_profiler = SimProfiler()
    c_profiler = cProfile.Profile()
    # Profiling measures real elapsed wall time by design.
    start = perf_counter()  # lint: ok(R001)
    c_profiler.enable()
    for cell in cells:
        execute_cell(cell, profiler=sim_profiler)
    c_profiler.disable()
    wall = perf_counter() - start  # lint: ok(R001)

    sim_seconds = sum(cell.duration for cell in cells)
    print(
        f"{args.name}: {len(cells)} cells, {sim_seconds:.0f} simulated "
        f"seconds in {wall:.2f}s wall "
        f"({sim_profiler.events_total / wall:,.0f} events/s)"
    )
    print()
    print(sim_profiler.format_report())

    stats = pstats.Stats(c_profiler)
    stats.sort_stats("cumulative")
    print()
    print(f"cProfile hotspots (top {args.top} by cumulative time):")
    stats.print_stats(r"repro", args.top)

    if args.json:
        hotspots = []
        for func, row in sorted(
            stats.stats.items(), key=lambda item: item[1][3], reverse=True
        ):
            filename, lineno, name = func
            if "repro" not in filename:
                continue
            cc, nc, tottime, cumtime, _ = row
            hotspots.append(
                {
                    "function": f"{filename}:{lineno}({name})",
                    "ncalls": nc,
                    "tottime": tottime,
                    "cumtime": cumtime,
                }
            )
            if len(hotspots) >= args.top:
                break
        payload = {
            "experiment": args.name,
            "duration": args.duration,
            "seed": args.seed,
            "cells": len(cells),
            "wall_seconds": wall,
            "simulated_seconds": sim_seconds,
            "events_per_second": sim_profiler.events_total / wall,
            "accounting": sim_profiler.report(),
            "hotspots": hotspots,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    module = EXPERIMENTS[args.name]
    kwargs = {}
    if args.fidelity != Fidelity.PACKET.value:
        if "fidelity" not in inspect.signature(module.main).parameters:
            print(
                f"experiment {args.name!r} only supports packet fidelity",
                file=sys.stderr,
            )
            return 2
        kwargs["fidelity"] = args.fidelity
    module.main(
        duration=args.duration,
        seed=args.seed,
        jobs=args.jobs,
        cache=args.cache,
        progress=args.progress,
        **kwargs,
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = ResultCache(args.cache)
    if args.cache_command == "merge":
        result = store.merge(args.sources)
        print(
            f"merged {result['merged']} entries into {store.root} "
            f"({result['skipped']} already present)"
        )
        return 0
    if args.cache_command == "shard":
        if args.shards < 1:
            print("need at least one shard", file=sys.stderr)
            return 2
        from pathlib import Path

        out = Path(args.out)
        dirs = [out / f"shard-{i}" for i in range(args.shards)]
        counts = store.shard(dirs)
        for directory, count in zip(dirs, counts):
            print(f"{directory}: {count} entries")
        print(f"sharded {sum(counts)} entries from {store.root}")
        return 0
    if args.cache_command == "ls":
        rows = store.ls()
        if not rows:
            print(f"cache {store.root}: empty")
            return 0
        print(
            format_table(
                ["key", "label", "system", "seed", "dur (s)", "age (s)",
                 "wall (s)", "stale"],
                [
                    [
                        row["key"],
                        row["label"],
                        row["system"],
                        row["seed"],
                        row["duration"],
                        int(row["age_seconds"]),
                        row["wall_seconds"],
                        "yes" if row["stale"] else "",
                    ]
                    for row in rows
                ],
            )
        )
        print(
            f"\n{len(rows)} entries, "
            f"{store.size_bytes() / 1e6:.1f} MB in {store.root}"
        )
    else:
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("systems    :", ", ".join(s.value for s in SystemKind))
    print("scenarios  :", ", ".join(
        f"{s} ({'+'.join(scenario_networks(s))})" for s in SCENARIOS
    ))
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    print("chaos plans:", ", ".join(chaos_scenario_names()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "chaos": _cmd_chaos,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "fleet": _cmd_fleet,
        "experiment": _cmd_experiment,
        "profile": _cmd_profile,
        "cache": _cmd_cache,
        "lint": run_lint,
        "analyze": run_analyze,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
