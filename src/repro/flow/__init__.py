"""Flow-level simulation backend (``fidelity=flow``).

A frame-interval abstraction of the packet-level core: same cells,
same trace scenarios, same scheduler/FEC configuration, same QoE
payload shape out — at a fraction of the cost.  See DESIGN.md for the
model's assumptions and known divergences, and EXPERIMENTS.md for
when to trust it.
"""

from repro.flow.frames import PathFec, binomial_draw, path_frame_outcome
from repro.flow.link import FlowLink
from repro.flow.rate_control import SteadyStateGcc
from repro.flow.session import FlowCall, run_flow_call

__all__ = [
    "FlowCall",
    "FlowLink",
    "PathFec",
    "SteadyStateGcc",
    "binomial_draw",
    "path_frame_outcome",
    "run_flow_call",
]
