"""Flow-level link model: capacity, queue backlog, loss environment.

One :class:`FlowLink` abstracts one emulated path
(:class:`repro.net.path.PathConfig`) at frame-interval granularity.
Instead of per-packet events it keeps three pieces of state:

- the *capacity* the bandwidth trace reports for the current instant
  (with fault overrides applied: blackout, capacity cap, outage floor),
- a fluid *queue backlog* in bytes, drained at capacity and fed by the
  bytes the session schedules onto the path each frame — the source of
  the queuing-delay signal the rate controller tracks and of overflow
  (congestion) loss,
- the *radio loss environment* for the step, derived from the same
  loss models the packet path uses: Bernoulli and scheduled rates are
  sampled directly; a Gilbert-Elliott chain is collapsed to per-step
  burst events (see :meth:`FlowLink.step_loss`).

The Gilbert-Elliott collapse rests on one assumption, checked against
the repo's scenario presets: the bad-state dwell (``1/p_bad_to_good``
packets, ~10 packets for every preset) is shorter than the packets a
frame puts on the wire, so a burst lands *inside* one frame interval.
A step then either contains a burst (probability
``1 - (1 - p_good_to_bad)^n``) with elevated loss over the burst's
expected footprint, or it sees the good-state loss.  The expected
long-run loss rate is preserved exactly; what the collapse gives up is
correlation of bursts *across* frames (see DESIGN.md).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from repro.net.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    ScheduledLoss,
)
from repro.net.path import PathConfig


class FlowLink:
    """One path of a flow-level call: fluid queue + sampled loss."""

    __slots__ = (
        "path_id",
        "config",
        "propagation_delay",
        "backlog_bytes",
        "step_caps",
        "capacity_cap",
        "loss_override",
        "extra_delay",
        "queue_cap_override",
        "_trace",
        "_queue_capacity",
        "_outage_bps",
        "_base_loss",
        "_burst_loss",
        "_burst_packets",
        "_log_stay_good",
        "_scheduled",
    )

    def __init__(self, config: PathConfig) -> None:
        self.path_id = config.path_id
        self.config = config
        self.propagation_delay = config.propagation_delay
        self.backlog_bytes = 0.0
        # Fault overrides, set by the session per active window.
        self.capacity_cap: Optional[float] = None
        self.loss_override: Optional[float] = None
        self.extra_delay = 0.0
        self.queue_cap_override: Optional[int] = None
        self._trace = config.trace
        self._queue_capacity = config.queue_capacity_bytes
        self._outage_bps = config.outage_capacity_bps
        self._scheduled: Optional[ScheduledLoss] = None
        self._base_loss = 0.0
        self._burst_loss = 0.0
        self._burst_packets = 0.0
        self._log_stay_good = 0.0
        self.step_caps: List[float] = []
        self._decompose_loss(config.loss_model)

    def _decompose_loss(self, model: LossModel) -> None:
        """Reduce the packet-level loss model to per-step parameters."""
        if isinstance(model, NoLoss):
            return
        if isinstance(model, BernoulliLoss):
            self._base_loss = model.rate
            return
        if isinstance(model, ScheduledLoss):
            self._scheduled = model
            return
        if isinstance(model, GilbertElliottLoss):
            self._base_loss = model.good_loss
            self._burst_loss = model.bad_loss
            if model.p_bad_to_good > 0:
                self._burst_packets = 1.0 / model.p_bad_to_good
            else:
                self._burst_packets = float("inf")
            if model.p_good_to_bad < 1.0:
                self._log_stay_good = math.log1p(-model.p_good_to_bad)
            else:
                self._log_stay_good = float("-inf")
            return
        # Unknown model: fall back to its stationary rate.
        self._base_loss = model.long_run_rate()

    # -- capacity ----------------------------------------------------------

    def precompute(self, dt: float, steps: int) -> None:
        """Tabulate :meth:`capacity` per frame step, faults aside.

        ``step_caps[i]`` equals ``capacity(i * dt)`` whenever no fault
        override is active — the common case the session's hot loop
        reads directly; with an active fault plan the session falls
        back to :meth:`capacity` so overrides still apply.
        """
        outage = self._outage_bps
        self.step_caps = [
            0.0 if cap < outage else cap
            for cap in self._trace.sample_steps(dt, steps)
        ]

    def capacity(self, now: float) -> float:
        """Effective capacity at ``now`` with fault overrides applied."""
        cap = self._trace.capacity_at(now)
        override = self.capacity_cap
        if override is not None and override < cap:
            cap = override
        if cap < self._outage_bps:
            return 0.0
        return cap

    # -- queue -------------------------------------------------------------

    def queue_delay(self, capacity: float) -> float:
        """Seconds the current backlog takes to serialize."""
        if self.backlog_bytes <= 0.0:
            return 0.0
        if capacity <= 0.0:
            return float("inf")
        return self.backlog_bytes * 8.0 / capacity

    def push(
        self, dt: float, capacity: float, sent_bytes: float
    ) -> Tuple[float, float]:
        """Drain the queue for ``dt`` then enqueue this frame's bytes.

        Returns ``(queue_delay_after, overflow_bytes)`` — the delay the
        newly enqueued bytes see behind the standing backlog, and the
        bytes the drop-tail queue discarded (congestion loss).
        """
        backlog = self.backlog_bytes - capacity * dt / 8.0
        if backlog < 0.0:
            backlog = 0.0
        backlog += sent_bytes
        cap_bytes = float(
            self.queue_cap_override
            if self.queue_cap_override is not None
            else self._queue_capacity
        )
        overflow = backlog - cap_bytes
        if overflow > 0.0:
            backlog = cap_bytes
        else:
            overflow = 0.0
        self.backlog_bytes = backlog
        if capacity <= 0.0:
            return (float("inf") if backlog > 0.0 else 0.0), overflow
        return backlog * 8.0 / capacity, overflow

    # -- loss --------------------------------------------------------------

    def step_loss(
        self, now: float, packets: int, rng: random.Random
    ) -> Tuple[float, float]:
        """Per-step loss environment for ``packets`` on the wire.

        Returns ``(frame_loss, peak_loss)``: the per-packet loss
        probability applied to this frame's packets, and the loss level
        a window-based loss controller would observe (the undiluted
        burst rate when a burst lands in this step) — the signal the
        rate controller's loss-based braking consumes.
        """
        if self._scheduled is not None:
            rate = self._scheduled.rate_at(now)
            base, peak = rate, rate
        elif self._burst_loss > 0.0 and packets > 0:
            base, peak = self._base_loss, self._base_loss
            # P(the chain enters the bad state among n packets).
            p_burst = -math.expm1(self._log_stay_good * packets)
            if rng.random() < p_burst:
                # The burst covers its expected dwell within the frame.
                fraction = min(self._burst_packets / packets, 1.0)
                base = base + (self._burst_loss - base) * fraction
                peak = self._burst_loss
        else:
            base, peak = self._base_loss, self._base_loss
        override = self.loss_override
        if override is not None:
            if override > base:
                base = override
            if override > peak:
                peak = override
        return base, peak
