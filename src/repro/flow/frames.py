"""Frame outcome model: loss draws, FEC protection, recovery, RTX.

The packet core tracks every RTP packet through queues, loss models,
FEC groups, and the NACK machinery.  At flow fidelity a frame's fate
on a path is decided in one shot:

1. draw lost media packets ``~ Binomial(n, loss)`` (plus any queue
   overflow the link reported),
2. draw surviving FEC packets the same way and recover up to that many
   losses — the group-code approximation of the packet core's
   XOR-group recovery,
3. any remainder goes through up to :data:`MAX_RTX_ROUNDS` retransmit
   rounds, each adding one SRTT to the frame's completion time, after
   which the frame is failed on that path.

Protection overhead comes from the same policies the packet core uses:
the WebRTC loss-rate table (:func:`repro.fec.tables
.webrtc_protection_factor`) with fractional carry, or the Converge
controller's loss-proportional rule with its QoE-feedback beta
(approximated here by its decay plus an uncovered-loss bump — the
NACK-driven signal collapsed to the frame outcome we just computed).
"""

from __future__ import annotations

import math
import random
from typing import Tuple

from repro.core.config import FecMode
from repro.fec.tables import webrtc_protection_factor

# Retransmission rounds before a frame is abandoned on a path (matches
# the packet core's NACK retry budget).
MAX_RTX_ROUNDS = 2

# Converge protection-rule constants, mirrored from
# repro.fec.converge_controller.ConvergeFecController.
_MIN_LOSS_FOR_FEC = 0.002
_MAX_PROTECTED_LOSS = 0.2
_MAX_PROTECTION = 0.25
_ROUND_UP_THRESHOLD = 0.15
_BETA_DECAY = 0.35
_BETA_MAX = 4.0
# Uncovered-loss bump: how strongly a frame that FEC failed to cover
# raises beta, standing in for the controller's NACK-window rule.
_BETA_BUMP = 0.5


def binomial_draw(rng: random.Random, n: int, p: float) -> int:
    """Inverse-transform Binomial(n, p) draw.

    ``random.Random`` has no binomial sampler on the floor Python this
    repo supports; the multiplicative PMF walk below costs O(expected
    successes) per call, which for per-frame loss rates (p << 1) is a
    couple of iterations — cheaper than n Bernoulli draws and exactly
    reproducible from the stream.
    """
    if n <= 0 or p <= 0.0:
        return 0
    if p >= 1.0:
        return n
    u = rng.random()
    q = 1.0 - p
    ratio = p / q
    prob = q**n
    cumulative = prob
    k = 0
    while cumulative < u and k < n:
        k += 1
        prob *= ratio * (n - k + 1) / k
        cumulative += prob
    return k


class PathFec:
    """Per-path FEC protection state at flow fidelity."""

    __slots__ = ("mode", "beta", "_carry", "_last_update")

    def __init__(self, mode: FecMode) -> None:
        self.mode = mode
        self.beta = 1.0
        self._carry = 0.0
        self._last_update = 0.0

    def packets_for(
        self, now: float, media_packets: int, loss_rate: float, is_keyframe: bool
    ) -> int:
        """FEC packets to send alongside ``media_packets``."""
        if self.mode is FecMode.NONE or media_packets <= 0:
            return 0
        if self.mode is FecMode.WEBRTC_TABLE:
            protection = webrtc_protection_factor(loss_rate, is_keyframe)
            exact = protection * media_packets + self._carry
            fec = int(exact)
            self._carry = min(max(exact - fec, 0.0), 1.0)
            return min(fec, media_packets)
        # FecMode.CONVERGE: loss-proportional with the QoE beta.
        if loss_rate < _MIN_LOSS_FOR_FEC:
            self._carry = 0.0
            return 0
        elapsed = now - self._last_update
        if elapsed > 0.0:
            self.beta = 1.0 + (self.beta - 1.0) * math.exp(-_BETA_DECAY * elapsed)
            self._last_update = now
        protection = min(
            min(loss_rate, _MAX_PROTECTED_LOSS) * self.beta, _MAX_PROTECTION
        )
        exact = protection * media_packets + self._carry
        fec = int(exact)
        if fec == 0 and exact >= _ROUND_UP_THRESHOLD:
            fec = 1
        self._carry = min(max(exact - fec, 0.0), 1.0)
        return min(fec, media_packets)

    def on_uncovered_loss(self, now: float, uncovered: int, media_packets: int) -> None:
        """A frame needed RTX: raise beta like the NACK window would."""
        if self.mode is not FecMode.CONVERGE or media_packets <= 0:
            return
        proposed = 1.0 + _BETA_BUMP * uncovered
        if proposed > self.beta:
            self.beta = min(proposed, _BETA_MAX)
        self._last_update = now


def path_frame_outcome(
    rng: random.Random,
    media_packets: int,
    fec_packets: int,
    loss_rate: float,
    overflow_packets: int,
) -> Tuple[bool, int, int, int, int]:
    """Decide one frame's fate on one path.

    Returns ``(delivered, rtx_rounds, lost_media, fec_received,
    fec_recovered)``.  ``delivered`` is False only when the loss could
    not be repaired within :data:`MAX_RTX_ROUNDS` retransmit rounds.
    """
    lost = binomial_draw(rng, media_packets, loss_rate) + overflow_packets
    if lost > media_packets:
        lost = media_packets
    fec_received = fec_packets - binomial_draw(rng, fec_packets, loss_rate)
    if lost == 0:
        return True, 0, 0, fec_received, 0
    recovered = min(lost, fec_received)
    remaining = lost - recovered
    if remaining == 0:
        return True, 0, lost, fec_received, recovered
    rounds = 0
    while remaining > 0 and rounds < MAX_RTX_ROUNDS:
        rounds += 1
        remaining = binomial_draw(rng, remaining, loss_rate)
    return remaining == 0, rounds, lost, fec_received, recovered
