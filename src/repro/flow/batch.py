"""Vectorized batch execution of flow-fidelity cells.

The scalar flow backend (:mod:`repro.flow.session`) made one call two
orders of magnitude faster than the packet core, which moved the
bottleneck for Monte Carlo sweeps to the Python interpreter itself:
every cell replays the same ~1800-step control loop, one step at a
time, in its own process.  This module steps *B* compatible cells
simultaneously as one numpy array program — capacity trajectories as
``(T, B)`` tables, every per-path quantity (queue backlog, loss EWMAs,
GCC rate state, FEC carry) as struct-of-arrays ``(B,)`` slices, and
all stochastic frame fates as batched inverse-transform draws.

**Equivalence contract (DESIGN.md §11).**  Batched execution is not an
approximation: for every cell it accepts, the produced result payload
is byte-identical to ``canonical_json``-normalized scalar runner
output for the same cell.  Three mechanisms make that possible:

- *Shared RNG streams.*  ``random.Random(seed)`` and
  ``numpy.random.RandomState(np.array([lo, hi], np.uint32))`` produce
  bit-identical ``random()`` sequences (both wrap the same MT19937
  ``genrand_res53``), so each cell's lane consumes the exact draw
  sequence of its scalar ``flow-session`` stream.  Cells whose derived
  seed has a zero high word (probability ``2**-32``) are rejected —
  the legacy seeder folds those differently.
- *Scalar transcendentals.*  numpy's ``log``/``exp``/``power`` kernels
  are not bit-identical to CPython's ``math`` on this floor, so every
  transcendental goes through a unique-value gather that calls the
  Python function per distinct input (:func:`_unique_apply`,
  :func:`_binomial_thresholds`).  Plain ``+ - * /``, comparisons,
  min/max and
  ``sqrt`` are IEEE-754-exact in both and stay vectorized.
- *Replayed operation order.*  Expression shapes (association,
  division order, strict-``<`` tie behaviour, EWMA forms) replicate
  the inlined single-stream loop of :class:`repro.flow.session
  .FlowCall` term for term; the cross-validation suite
  (``tests/test_flow_batch.py``) pins the two backends together on
  every golden scenario.

Cells that the batch cannot take exactly — packet fidelity, chaos
plans, multi-stream calls, scheduled loss models, per-path parameter
mismatches inside a group — fall back to the scalar backend, so
:func:`execute_cells` is always safe to call with a mixed population.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.core.config import CallConfig, FecMode, SystemKind
from repro.experiments.cells import Cell, Fidelity, canonical_json
from repro.flow.frames import (
    MAX_RTX_ROUNDS,
    _BETA_BUMP,
    _BETA_MAX,
    _MAX_PROTECTED_LOSS,
    _MAX_PROTECTION,
    _MIN_LOSS_FOR_FEC,
    _ROUND_UP_THRESHOLD,
)
from repro.flow.link import FlowLink
from repro.flow.rate_control import (
    BACKOFF_FACTOR,
    BURST_EXPECTED_LOSSES,
    BURST_LOSS_FLOOR,
    BURST_OVERUSE_PROBABILITY,
    DELIVERED_WINDOW,
    GROWTH_PER_SECOND,
    HOLD_SECONDS,
    LOSS_CUT_THRESHOLD,
    LOSS_PROBE_THRESHOLD,
    LOSS_REPORT_INTERVAL,
    NEAR_CONVERGENCE_WINDOW,
    OVERUSE_QUEUE_DELAY,
    PROBE_JITTER_SPAN,
    PROBE_RUN_BITS,
    RTT_SMOOTHING,
    _MTU_BITS,
)
from repro.flow.session import (
    _BETA_DECAY,
    _BURST_KILL_FACTOR,
    _BURST_KILL_MAX,
    _CM_FAILURE_TIMEOUT,
    _CM_RECONNECT_DELAY,
    _FRAME_PROBE_MIN_PACKETS,
    _FRAME_PROBE_MIN_RATE,
    _KEYFRAME_DEBT_REPAY,
    _KEYFRAME_RECOVERY_DELAY,
    _KEYFRAME_REQUEST_INTERVAL,
    _LOSS_PEAK_TAU,
    _LOSS_SMOOTHING,
    _MIN_FRAME_BYTES,
    _PROBE_INTERVAL,
    _PROBE_MAX_LOSS,
    _PROBE_MAX_QUEUE_DELAY,
    _PROTECTION_SMOOTHING,
    DEFAULT_MTU_PAYLOAD,
)
from repro.metrics.qoe import FREEZE_THRESHOLD, REPEATED_FRAME_PSNR
from repro.simulation.random import derive_seed

F8 = NDArray[np.float64]
I8 = NDArray[np.int64]
B1 = NDArray[np.bool_]

# Prefilled uniform draws per cell between RandomState refills.
_POOL_CHUNK = 4096


# ---------------------------------------------------------------------------
# Exact scalar-math helpers


def _unique_apply(
    fn: Callable[[float], float], values: F8
) -> F8:
    """Apply a CPython scalar function element-wise, bit-exactly.

    numpy's transcendental kernels (SIMD polynomial paths) are not
    bit-identical to libm-backed ``math.*`` on this floor, so the
    function is evaluated once per *distinct* input via Python and
    scattered back.  Loss EWMAs, FEC decay gaps and QP logs repeat
    heavily across lanes, which keeps the Python call count low.
    """
    uniq, inverse = np.unique(values, return_inverse=True)
    out = np.empty(uniq.shape[0], dtype=np.float64)
    for j, v in enumerate(uniq.tolist()):
        out[j] = fn(v)
    return out[inverse]


def _unique_apply_memo(
    fn: Callable[[float], float], values: F8, memo: Dict[float, float]
) -> F8:
    """:func:`_unique_apply` with a cross-call result cache.

    Worth it when the same distinct inputs recur across steps (FEC
    decay gaps land on a handful of step-grid differences), keeping
    the Python-level ``fn`` calls to a few per run.  The common
    all-equal case (every active cell updated last step) skips the
    ``np.unique`` sort entirely.
    """
    lo = float(values.min())
    if lo == float(values.max()):
        r = memo.get(lo)
        if r is None:
            r = fn(lo)
            memo[lo] = r
        return np.full(values.shape[0], r)
    uniq, inverse = np.unique(values, return_inverse=True)
    out = np.empty(uniq.shape[0], dtype=np.float64)
    for j, v in enumerate(uniq.tolist()):
        r = memo.get(v)
        if r is None:
            r = fn(v)
            memo[v] = r
        out[j] = r
    return out[inverse]


def _binomial_thresholds(p: float, n: int) -> F8:
    """Cumulative stop thresholds of the scalar binomial PMF walk.

    Entry ``k`` is the running ``cumulative`` of
    :func:`repro.flow.frames.binomial_draw` after the ``k``-th update,
    built with the identical Python-float recurrence (``q ** n``
    differs from ``np.power`` in the last bit often enough to break
    byte-equality, so no numpy arithmetic here).
    """
    q = 1.0 - p
    ratio = p / q
    prob = q**n
    cums = np.empty(n + 1, dtype=np.float64)
    cumulative = prob
    cums[0] = cumulative
    for k in range(1, n + 1):
        prob *= ratio * (n - k + 1) / k
        cumulative += prob
        cums[k] = cumulative
    return cums


class _DrawPool:
    """Per-cell MT19937 uniform streams, consumed in lockstep lanes.

    Row *i* replays cell *i*'s scalar ``flow-session`` stream: the
    pool prefills :data:`_POOL_CHUNK` doubles per cell and every
    :meth:`draw` hands each selected lane its next value, so draw
    *sites* can be processed in any batched grouping as long as each
    cell's local draw order is preserved.
    """

    __slots__ = ("_states", "_pool", "_cursor", "_all", "_peak")

    def __init__(self, seeds: Sequence[int]) -> None:
        count = len(seeds)
        self._states: List[np.random.RandomState] = []
        self._pool = np.empty((count, _POOL_CHUNK), dtype=np.float64)
        self._cursor = np.zeros(count, dtype=np.int64)
        self._all = np.arange(count, dtype=np.int64)
        # Conservative upper bound on every cursor: bumped once per
        # draw, so the exhaustion scan runs once per chunk, not per
        # call.
        self._peak = 0
        for i, seed in enumerate(seeds):
            key = np.array(
                [seed & 0xFFFFFFFF, (seed >> 32) & 0xFFFFFFFF],
                dtype=np.uint32,
            )
            state = np.random.RandomState(key)
            self._states.append(state)
            self._pool[i] = state.random_sample(_POOL_CHUNK)

    def draw(self, cell_indices: I8) -> F8:
        """Next uniform double for each listed cell (indices unique)."""
        cursor = self._cursor
        if self._peak >= _POOL_CHUNK:
            exhausted = np.flatnonzero(cursor >= _POOL_CHUNK)
            for i in exhausted.tolist():
                self._pool[i] = self._states[i].random_sample(_POOL_CHUNK)
                cursor[i] = 0
            self._peak = int(cursor.max())
        values = self._pool[cell_indices, cursor[cell_indices]]
        cursor[cell_indices] += 1
        self._peak += 1
        return values

    def draw_all(self) -> F8:
        """Next uniform double for every cell."""
        return self.draw(self._all)


def _binomial_walk(n: I8, p: F8, u: F8, memo: Dict[Any, Any]) -> I8:
    """Batched inverse-transform Binomial(n, p) with ``0 < p < 1``.

    The scalar walk stops at the first cumulative PMF value at or
    above the lane's quantile, so with the thresholds tabulated the
    draw collapses to ``searchsorted`` (``side='left'`` is exactly
    the walk's ``cumulative < u`` test; the cap at ``n`` is the
    walk's ``k < n`` bound).  The ``(p, n)`` pairs are packed into
    complex128 so one ``np.unique`` groups both coordinates at once.
    Mixed groups are resolved by a *single* merged ``searchsorted``:
    group ``j``'s thresholds (all in ``[0, 1]``) are biased by
    ``2 j`` and concatenated, and each quantile is biased by its own
    group, so every query lands inside its group's segment.  Both the
    per-pair tables (complex keys) and the merged segment arrays
    (bytes keys, per distinct group set) are memoized across steps
    and batches.
    """
    size = n.shape[0]
    packed = np.empty(size, dtype=np.complex128)
    packed.real = p
    packed.imag = n
    uniq, inverse = np.unique(packed, return_inverse=True)
    if uniq.shape[0] == 1:
        pair = complex(uniq[0])
        cums = memo.get(pair)
        if cums is None:
            cums = _binomial_thresholds(pair.real, int(pair.imag))
            memo[pair] = cums
        k: I8 = np.empty(size, dtype=np.int64)
        np.minimum(
            np.searchsorted(cums, u, side="left"), cums.shape[0] - 1, out=k
        )
        return k
    tables = []
    count = uniq.shape[0]
    lens = np.empty(count, dtype=np.int64)
    for j, pair in enumerate(uniq.tolist()):
        cums = memo.get(pair)
        if cums is None:
            cums = _binomial_thresholds(pair.real, int(pair.imag))
            memo[pair] = cums
        tables.append(cums)
        lens[j] = cums.shape[0]
    starts = np.zeros(count, dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    combined = np.concatenate(tables)
    combined += np.repeat(np.arange(count, dtype=np.float64) * 2.0, lens)
    pos = np.searchsorted(combined, u + 2.0 * inverse, side="left")
    k = pos - starts[inverse]
    np.minimum(k, (lens - 1)[inverse], out=k)
    return k


def _vector_step_caps(link: FlowLink, query: F8) -> F8:
    """:meth:`FlowLink.precompute`, vectorized over the step grid.

    ``query`` holds the step times (``np.arange(steps) * dt``, shared
    across the batch).  Pure selection: ``searchsorted`` replays the
    trace's ``bisect_right`` segment lookup and the gathered values
    are the trace's own floats, so the result is byte-identical to
    the scalar tabulation, outage gate included.
    """
    trace = link._trace
    times = np.asarray(trace._times, dtype=np.float64)
    values = np.asarray(trace._values, dtype=np.float64)
    if trace.loop and trace.duration > 0:
        query = np.mod(query, trace.duration)
    index = np.searchsorted(times, query, side="right") - 1
    index[index < 0] = 0
    caps: F8 = values[index]
    return np.where(caps < link._outage_bps, 0.0, caps)


# ---------------------------------------------------------------------------
# Batch planning


def batchable(cell: Cell) -> bool:
    """Can this cell run on the array backend at all?

    Static screen only — path-level checks (scheduled loss, per-path
    parameter drift inside a group) happen after the paths are built
    and fall back per cell.  The zero-high-word seed check guards the
    one case where ``RandomState``'s legacy key folding diverges from
    ``random.Random``.
    """
    if cell.fidelity is not Fidelity.FLOW:
        return False
    if cell.chaos is not None:
        return False
    if cell.num_streams != 1:
        return False
    return (derive_seed(cell.seed, "flow-session") >> 32) != 0


def group_key(cell: Cell) -> str:
    """Structural identity: the resolved cell minus seed and label."""
    # ``resolved()`` is memoized per Cell instance; copy before masking
    # the per-cell fields so the memo stays intact.
    resolved = dict(cell.resolved())
    resolved["seed"] = 0
    resolved["label"] = None
    return canonical_json(resolved)


def plan_batches(
    cells: Sequence[Cell],
) -> Tuple[List[List[int]], List[int]]:
    """Partition cell indices into batchable groups and a scalar rest.

    Groups preserve first-seen order; indices inside a group keep input
    order, so batched execution remains deterministic run to run.
    """
    groups: Dict[str, List[int]] = {}
    order: List[str] = []
    rest: List[int] = []
    for index, cell in enumerate(cells):
        if not batchable(cell):
            rest.append(index)
            continue
        key = group_key(cell)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [index]
            order.append(key)
        else:
            bucket.append(index)
    return [groups[key] for key in order], rest


def _scalar_payload(cell: Cell) -> Dict[str, Any]:
    """Scalar-backend execution normalized exactly like the runner."""
    from repro.experiments.runner import execute_cell

    return json.loads(canonical_json(execute_cell(cell)))  # type: ignore[no-any-return]


def execute_cells(cells: Sequence[Cell]) -> List[Dict[str, Any]]:
    """Execute a mixed population, batching whatever groups allow."""
    payloads: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    groups, rest = plan_batches(cells)
    for group in groups:
        results = execute_batch([cells[i] for i in group])
        for i, payload in zip(group, results):
            payloads[i] = payload
    for i in rest:
        payloads[i] = _scalar_payload(cells[i])
    return [payload for payload in payloads if payload is not None]


# ---------------------------------------------------------------------------
# Per-path constant bundles


class _PathConsts:
    """Loss/queue/delay parameters of one path, shared by the group."""

    __slots__ = (
        "path_id",
        "base_loss",
        "burst_loss",
        "burst_packets",
        "log_stay_good",
        "prop",
        "prop2",
        "queue_cap",
        "srtt0",
        "pburst_table",
    )

    def __init__(self, link: FlowLink) -> None:
        self.path_id = link.path_id
        self.base_loss = link._base_loss
        self.burst_loss = link._burst_loss
        self.burst_packets = link._burst_packets
        self.log_stay_good = link._log_stay_good
        self.prop = link.propagation_delay
        self.prop2 = 2.0 * (link.propagation_delay + 0.0)
        self.queue_cap = float(link._queue_capacity)
        self.srtt0 = max(2.0 * link.propagation_delay, 1e-3)
        # P(burst entry | n packets), filled lazily per distinct n.
        self.pburst_table = np.empty(0, dtype=np.float64)

    def signature(self) -> Tuple[Any, ...]:
        return (
            self.path_id,
            self.base_loss,
            self.burst_loss,
            self.burst_packets,
            self.log_stay_good,
            self.prop,
            self.queue_cap,
        )

    def pburst(self, n_pkts: I8) -> F8:
        table = self.pburst_table
        top = int(n_pkts.max())
        if top >= table.shape[0]:
            values = table.tolist()
            for n in range(len(values), top + 1):
                values.append(-math.expm1(self.log_stay_good * n))
            table = np.array(values, dtype=np.float64)
            self.pburst_table = table
        return table[n_pkts]


class _PathLanes:
    """Struct-of-arrays state for one path across all B cells."""

    __slots__ = (
        "caps",
        "backlog",
        "loss_ewma",
        "loss_peak",
        "silence",
        "degraded",
        "disabled",
        "cap",
        "tgt",
        "weight",
        "member",
        "rank",
        "step_bytes",
        "step_packets",
        "step_key",
        "out_delivered",
        "out_completion",
        "out_killed",
        "out_failed",
        "rate",
        "loss_rate",
        "srtt",
        "offered_avg",
        "delivered",
        "hold_until",
        "cap_est",
        "has_est",
        "loss_accum",
        "beta",
        "carry",
        "last_update",
        "rec_media_packets",
        "rec_media_bytes",
        "rec_fec_packets",
        "rec_fec_bytes",
        "rec_rtx_packets",
        "rec_rtx_bytes",
        "tgt_samples",
    )

    def __init__(
        self, batch_size: int, steps: int, samples: int, consts: _PathConsts,
        initial_rate: float,
    ) -> None:
        shape = (batch_size,)
        self.caps = np.empty((steps, batch_size), dtype=np.float64)
        self.backlog = np.zeros(shape, dtype=np.float64)
        self.loss_ewma = np.zeros(shape, dtype=np.float64)
        self.loss_peak = np.zeros(shape, dtype=np.float64)
        self.silence = np.zeros(shape, dtype=np.float64)
        self.degraded = np.zeros(shape, dtype=np.bool_)
        self.disabled = np.zeros(shape, dtype=np.bool_)
        self.cap = np.zeros(shape, dtype=np.float64)
        self.tgt = np.zeros(shape, dtype=np.float64)
        self.weight = np.zeros(shape, dtype=np.float64)
        self.member = np.zeros(shape, dtype=np.bool_)
        self.rank = np.zeros(shape, dtype=np.int64)
        self.step_bytes = np.zeros(shape, dtype=np.int64)
        self.step_packets = np.zeros(shape, dtype=np.int64)
        self.step_key = np.zeros(shape, dtype=np.bool_)
        self.out_delivered = np.zeros(shape, dtype=np.bool_)
        self.out_completion = np.zeros(shape, dtype=np.float64)
        self.out_killed = np.zeros(shape, dtype=np.bool_)
        self.out_failed = np.zeros(shape, dtype=np.bool_)
        self.rate = np.full(shape, initial_rate, dtype=np.float64)
        self.loss_rate = np.full(shape, initial_rate, dtype=np.float64)
        self.srtt = np.full(shape, consts.srtt0, dtype=np.float64)
        self.offered_avg = np.zeros(shape, dtype=np.float64)
        self.delivered = np.zeros(shape, dtype=np.float64)
        self.hold_until = np.zeros(shape, dtype=np.float64)
        self.cap_est = np.zeros(shape, dtype=np.float64)
        self.has_est = np.zeros(shape, dtype=np.bool_)
        self.loss_accum = np.zeros(shape, dtype=np.float64)
        self.beta = np.ones(shape, dtype=np.float64)
        self.carry = np.zeros(shape, dtype=np.float64)
        self.last_update = np.zeros(shape, dtype=np.float64)
        self.rec_media_packets = np.zeros(shape, dtype=np.int64)
        self.rec_media_bytes = np.zeros(shape, dtype=np.int64)
        self.rec_fec_packets = np.zeros(shape, dtype=np.int64)
        self.rec_fec_bytes = np.zeros(shape, dtype=np.int64)
        self.rec_rtx_packets = np.zeros(shape, dtype=np.int64)
        self.rec_rtx_bytes = np.zeros(shape, dtype=np.int64)
        self.tgt_samples = np.empty((samples, batch_size), dtype=np.float64)


class _BatchFlowRun:
    """One array program over B structurally identical flow cells."""

    __slots__ = (
        "config",
        "cells",
        "batch_size",
        "steps",
        "dt",
        "consts",
        "lanes",
        "pool",
        "walk_memo",
        "exp_memo",
        "nows",
        "sample_steps",
        "sample_every",
        "enc_count",
        "frames_since_key",
        "debt",
        "blocked",
        "pending",
        "request_at",
        "last_request",
        "protection",
        "received_total",
        "fec_received_total",
        "fec_recovered_total",
        "pinned",
        "cm_reconnect_until",
        "send_n",
        "total_weight",
        "target_rate",
        "size0",
        "key0",
        "qp0",
        "step_media",
        "step_fec",
        "enc_flag",
        "rendered_size",
        "rendered_key",
        "rendered_qp",
        "rendered_completion",
        "tr_samples",
        "drops",
        "kf_requests",
        "path_events",
    )

    def __init__(
        self,
        config: CallConfig,
        cells: Sequence[Cell],
        links_per_cell: Sequence[Sequence[FlowLink]],
    ) -> None:
        self.config = config
        self.cells = list(cells)
        batch = len(cells)
        self.batch_size = batch
        self.dt = 1.0 / config.frame_rate
        self.steps = int(round(config.duration * config.frame_rate))
        steps = self.steps
        self.sample_every = max(
            int(round(config.sample_interval / self.dt)), 1
        )
        self.nows = [step * self.dt for step in range(steps)]
        self.sample_steps = list(range(0, steps, self.sample_every))
        samples = len(self.sample_steps)
        self.consts = [_PathConsts(links[0]) for links in zip(*links_per_cell)]
        initial_rate = float(config.gcc.initial_rate)
        self.lanes = [
            _PathLanes(batch, steps, samples, consts, initial_rate)
            for consts in self.consts
        ]
        query = np.arange(steps, dtype=np.float64) * self.dt
        for i, links in enumerate(links_per_cell):
            for p, link in enumerate(links):
                self.lanes[p].caps[:, i] = _vector_step_caps(link, query)
        self.pool = _DrawPool(
            [derive_seed(cell.seed, "flow-session") for cell in cells]
        )
        self.walk_memo: Dict[Any, Any] = {}
        self.exp_memo: Dict[float, float] = {}
        shape = (batch,)
        self.enc_count = np.zeros(shape, dtype=np.int64)
        self.frames_since_key = np.zeros(shape, dtype=np.int64)
        self.debt = np.zeros(shape, dtype=np.float64)
        self.blocked = np.zeros(shape, dtype=np.bool_)
        self.pending = np.zeros(shape, dtype=np.bool_)
        self.request_at = np.full(shape, math.inf, dtype=np.float64)
        self.last_request = np.full(shape, -math.inf, dtype=np.float64)
        self.protection = np.zeros(shape, dtype=np.float64)
        self.received_total = np.zeros(shape, dtype=np.int64)
        self.fec_received_total = np.zeros(shape, dtype=np.int64)
        self.fec_recovered_total = np.zeros(shape, dtype=np.int64)
        pids = [consts.path_id for consts in self.consts]
        pinned = config.single_path_id
        if pinned not in pids:
            pinned = min(pids)
        self.pinned = np.full(shape, pinned, dtype=np.int64)
        self.cm_reconnect_until = np.full(shape, -math.inf, dtype=np.float64)
        self.send_n = np.zeros(shape, dtype=np.int64)
        self.total_weight = np.zeros(shape, dtype=np.float64)
        self.target_rate = np.zeros(shape, dtype=np.float64)
        self.size0 = np.zeros(shape, dtype=np.int64)
        self.key0 = np.zeros(shape, dtype=np.bool_)
        self.qp0 = np.zeros(shape, dtype=np.float64)
        self.step_media = np.zeros(shape, dtype=np.int64)
        self.step_fec = np.zeros(shape, dtype=np.int64)
        self.enc_flag = np.zeros((steps, batch), dtype=np.bool_)
        self.rendered_size = np.zeros((steps, batch), dtype=np.int64)
        self.rendered_key = np.zeros((steps, batch), dtype=np.bool_)
        self.rendered_qp = np.zeros((steps, batch), dtype=np.float64)
        self.rendered_completion = np.zeros((steps, batch), dtype=np.float64)
        self.tr_samples = np.empty((samples, batch), dtype=np.float64)
        # Dropped frames are only ever *counted* in the payload, so a
        # counter per cell replaces the scalar's per-drop event list.
        self.drops = np.zeros(batch, dtype=np.int64)
        self.kf_requests: List[List[List[float]]] = [[] for _ in range(batch)]
        self.path_events: List[List[Tuple[float, int, str]]] = [
            [] for _ in range(batch)
        ]

    # -- the hot loop ------------------------------------------------------

    # drift: pair(flow-batch) impl
    def run(self) -> List[Dict[str, Any]]:
        config = self.config
        lanes = self.lanes
        consts = self.consts
        pool = self.pool
        walk_memo = self.walk_memo
        exp_memo = self.exp_memo
        num_paths = len(lanes)
        dt = self.dt
        mtu = DEFAULT_MTU_PAYLOAD
        enc = config.encoder_template
        rd_model = enc.rd_model
        rd_anchor = rd_model.anchor_bitrate
        enc_min = enc.min_bitrate
        enc_cap = min(enc.max_bitrate, config.max_rate_per_stream)
        gop_length = enc.gop_length
        key_mult = enc.keyframe_size_multiplier
        size_jitter = enc.size_jitter
        jit_lo = -size_jitter
        jit_span = size_jitter - jit_lo
        frame_rate = config.frame_rate
        encoder_utilization = config.encoder_utilization
        num_streams = config.num_streams
        max_latency = config.receiver.max_playout_latency
        watchdog = config.watchdog
        degrade_timeout = watchdog.degrade_timeout
        silence_timeout = watchdog.silence_timeout
        decay_scaled = watchdog.rate_decay_factor ** (
            dt / watchdog.rate_decay_interval
        )
        qoe_feedback = config.qoe_feedback_enabled
        peak_decay = math.exp(-dt / _LOSS_PEAK_TAU)
        win_alpha = 1.0 - math.exp(-dt / DELIVERED_WINDOW)
        fec_mode = config.fec_mode
        fec_none = fec_mode is FecMode.NONE
        fec_webrtc = fec_mode is FecMode.WEBRTC_TABLE
        fec_converge = fec_mode is FecMode.CONVERGE
        system = config.system
        is_converge = system is SystemKind.CONVERGE
        is_webrtc = system is SystemKind.WEBRTC
        is_srtt = system is SystemKind.SRTT
        is_cm = system is SystemKind.WEBRTC_CM
        is_mrtp = system is SystemKind.MRTP
        probe_run_bits_f = float(PROBE_RUN_BITS)
        growth_dt = GROWTH_PER_SECOND**dt
        near_lo = 1.0 - NEAR_CONVERGENCE_WINDOW
        near_hi = 1.0 + NEAR_CONVERGENCE_WINDOW
        half_mtu_bits = 0.5 * _MTU_BITS
        gcc_min = float(config.gcc.min_rate)
        gcc_max = float(config.gcc.max_rate)
        pids = [c.path_id for c in consts]
        pin_col = pids.index(int(self.pinned[0])) if is_webrtc else 0
        next_probe = _PROBE_INTERVAL
        sample_tick = 0
        sample_row = 0
        batch = self.batch_size
        inf = math.inf
        ones = np.ones(batch, dtype=np.float64)
        true_col = np.ones(batch, dtype=np.bool_)
        _loss_unit_cut = 1.0  # outage loss level

        for step in range(self.steps):
            now = self.nows[step]

            # -- capacity + watchdog + per-path target, in pid order --
            flagged = False
            for p, lane in enumerate(lanes):
                cap = lane.caps[step]
                lane.cap = cap
                attention = (
                    (lane.silence != 0.0) | (cap <= 0.0)
                )
                if attention.any():
                    self._watchdog(
                        now, p, lane, cap, attention, degrade_timeout,
                        silence_timeout, decay_scaled, gcc_min,
                    )
                # SteadyStateGcc.target: min(rate, loss_rate), floored.
                tgt = np.minimum(lane.rate, lane.loss_rate)
                lane.tgt = np.maximum(tgt, gcc_min)
                if lane.disabled.any():
                    flagged = True

            if flagged:
                none_usable = true_col.copy()
                for lane in lanes:
                    none_usable &= lane.disabled
                usable = [
                    ~lane.disabled | none_usable for lane in lanes
                ]
            else:
                usable = [true_col for _ in lanes]

            # -- scheduler split ------------------------------------------
            total_weight = np.zeros(batch, dtype=np.float64)
            target_rate = np.zeros(batch, dtype=np.float64)
            for lane in lanes:
                lane.member.fill(False)
            if is_webrtc:
                # Structural pin: churn-free calls never move it.
                lane = lanes[pin_col]
                lane.member[:] = True
                lane.weight[:] = 1.0
                total_weight += ones
                target_rate += lane.tgt
            elif is_srtt:
                best_col = np.zeros(batch, dtype=np.int64)
                best_srtt = np.full(batch, inf, dtype=np.float64)
                seeded = np.zeros(batch, dtype=np.bool_)
                for p, lane in enumerate(lanes):
                    u = usable[p]
                    first = u & ~seeded
                    better = u & seeded & (lane.srtt < best_srtt)
                    pick = first | better
                    best_col = np.where(pick, p, best_col)
                    best_srtt = np.where(pick, lane.srtt, best_srtt)
                    seeded |= u
                for p, lane in enumerate(lanes):
                    m = best_col == p
                    lane.member |= m
                    lane.weight[m] = 1.0
                    total_weight += np.where(m, 1.0, 0.0)
                    target_rate += np.where(m, lane.tgt, 0.0)
            elif is_cm:
                self._cm_schedule(now, usable, pids)
                for p, lane in enumerate(lanes):
                    m = lane.member
                    lane.weight[m] = 1.0
                    total_weight += np.where(m, 1.0, 0.0)
                    target_rate += np.where(m, lane.tgt, 0.0)
            elif is_mrtp:
                for lane in lanes:
                    le = lane.loss_ewma
                    w = 1.0 - np.where(le < 0.95, le, 0.95)
                    lane.weight = w
                    lane.member[:] = True
                    total_weight += w
                    target_rate += lane.tgt
            else:
                # CONVERGE / MTPUT: Eq. 1 — split by per-path rates.
                zero_weight = np.zeros(batch, dtype=np.bool_)
                for p, lane in enumerate(lanes):
                    m = usable[p]
                    lane.member = m.copy() if m is true_col else m
                    w = lane.tgt
                    lane.weight = w
                    total_weight += np.where(m, w, 0.0)
                    target_rate += np.where(m, w, 0.0)
                    zero_weight |= m & (w <= 0.0)
                if zero_weight.any():
                    # Rare zero-floor config: drop zero-weight paths
                    # from the send set; total_weight stays as-is.
                    target_rate = np.where(
                        zero_weight, 0.0, target_rate
                    )
                    for lane in lanes:
                        drop = zero_weight & lane.member & (lane.weight <= 0.0)
                        lane.member &= ~drop
                        target_rate += np.where(
                            zero_weight & lane.member, lane.tgt, 0.0
                        )

            send_n = np.zeros(batch, dtype=np.int64)
            for lane in lanes:
                lane.rank = send_n.copy()
                send_n += lane.member
                m = lane.member
                lane.step_bytes.fill(0)
                lane.step_packets.fill(0)
                lane.step_key.fill(False)
                lane.out_failed[m] = False

            # -- sampling --------------------------------------------------
            if sample_tick == 0:
                self.tr_samples[sample_row] = target_rate
                for lane in lanes:
                    lane.tgt_samples[sample_row] = lane.tgt
                sample_row += 1
            sample_tick += 1
            if sample_tick == self.sample_every:
                sample_tick = 0

            # -- keyframe requests ----------------------------------------
            due = self.blocked & (now >= self.request_at)
            if due.any():
                fire = due & ((now - self.last_request) >= _KEYFRAME_REQUEST_INTERVAL)
                if fire.any():
                    self.last_request[fire] = now
                    self.request_at[fire] = inf
                    self.pending[fire] = True
                    for i in np.flatnonzero(fire).tolist():
                        self.kf_requests[i].append([now, 0])

            # -- encode ----------------------------------------------------
            enc_mask = (send_n > 0) & (total_weight > 0.0)
            enc_any = bool(enc_mask.any())
            enc_all = enc_any and bool(enc_mask.all())
            if enc_any:
                eidx: Any = (
                    slice(None) if enc_all else np.flatnonzero(enc_mask)
                )
                budget = (
                    target_rate[eidx]
                    * encoder_utilization
                    / (1.0 + self.protection[eidx])
                )
                per_stream = budget / num_streams
                per_stream = np.where(
                    per_stream < enc_min, enc_min, per_stream
                )
                per_stream = np.where(
                    per_stream > enc_cap, enc_cap, per_stream
                )
                # The QP log never feeds back into the dynamics, so
                # only the RD ratio is recorded here; rendered frames
                # get their exact ``math.log`` at payload time.
                self.qp0[eidx] = (
                    np.where(per_stream > 1.0, per_stream, 1.0) / rd_anchor
                )
                fsk = self.frames_since_key[eidx]
                is_key = (
                    (self.enc_count[eidx] == 0)
                    | (fsk >= gop_length)
                    | self.pending[eidx]
                )
                base = per_stream / 8.0 / frame_rate
                debt = self.debt[eidx]
                size_key = base * key_mult
                repay_cap = _KEYFRAME_DEBT_REPAY * base
                repay = np.where(debt < repay_cap, debt, repay_cap)
                size_f = np.where(is_key, size_key, base - repay)
                debt = np.where(is_key, debt + (size_key - base), debt - repay)
                self.debt[eidx] = debt
                self.frames_since_key[eidx] = np.where(is_key, 0, fsk + 1)
                self.pending[eidx] &= ~is_key
                u = pool.draw_all() if enc_all else pool.draw(eidx)
                size_f = size_f * (1.0 + (jit_lo + jit_span * u))
                size = size_f.astype(np.int64)
                size = np.where(size < _MIN_FRAME_BYTES, _MIN_FRAME_BYTES, size)
                self.size0[eidx] = size
                self.key0[eidx] = is_key
                self.enc_count[eidx] += 1
                self.enc_flag[step, eidx] = True
                self._allocate(
                    enc_mask, send_n, total_weight, mtu, is_converge
                )

            probe_due = now >= next_probe
            if probe_due:
                next_probe += _PROBE_INTERVAL

            # -- per-path send: queue, loss, FEC, control ------------------
            self.step_media.fill(0)
            self.step_fec.fill(0)
            for p, lane in enumerate(lanes):
                member = lane.member
                if not member.any():
                    continue
                # Full-membership fast path: gathers become views and
                # scatters become whole-array assigns.  Value semantics
                # are unchanged — every in-place mutation below either
                # rebinds or scatters through ``np.where`` before the
                # write-back.
                full = bool(member.all())
                if full:
                    idx: Any = slice(None)
                    m = batch
                else:
                    idx = np.flatnonzero(member)
                    m = idx.shape[0]
                pc = consts[p]
                mp = lane.step_packets[idx]
                mb = lane.step_bytes[idx]
                capv = lane.cap[idx]

                # FlowLink.step_loss, batched.
                if pc.burst_loss > 0.0:
                    n_pkts = np.where(mp > 0, mp, 1)
                    p_burst = pc.pburst(n_pkts)
                    u = pool.draw_all() if full else pool.draw(idx)
                    hit = u < p_burst
                    fraction = pc.burst_packets / n_pkts
                    fraction = np.where(fraction > 1.0, 1.0, fraction)
                    frame_loss = np.where(
                        hit,
                        pc.base_loss
                        + (pc.burst_loss - pc.base_loss) * fraction,
                        pc.base_loss,
                    )
                    inst_peak = np.where(hit, pc.burst_loss, pc.base_loss)
                else:
                    frame_loss = np.full(m, pc.base_loss)
                    inst_peak = frame_loss
                outage = capv <= 0.0
                if outage.any():
                    frame_loss = np.where(outage, _loss_unit_cut, frame_loss)
                    inst_peak = np.where(outage, _loss_unit_cut, inst_peak)
                le = lane.loss_ewma[idx]
                le = le + _LOSS_SMOOTHING * (frame_loss - le)
                lane.loss_ewma[idx] = le
                decayed = lane.loss_peak[idx] * peak_decay
                peak_hold = np.where(decayed > frame_loss, decayed, frame_loss)
                lane.loss_peak[idx] = peak_hold

                # PathFec.packets_for, batched.
                mpos = mp > 0
                fec_pk = np.zeros(m, dtype=np.int64)
                if fec_none:
                    pass
                elif fec_webrtc:
                    pf = np.select(
                        [
                            le <= 0.002,
                            le <= 0.005,
                            le <= 0.010,
                            le <= 0.020,
                            le <= 0.030,
                            le <= 0.050,
                            le <= 0.070,
                            le <= 0.100,
                            le <= 0.150,
                        ],
                        [0.0, 0.30, 0.40, 0.43, 0.45, 0.48, 0.50, 0.55, 0.60],
                        default=0.65,
                    )
                    doubled = pf * 2.0
                    doubled = np.where(doubled > 1.0, 1.0, doubled)
                    pf = np.where(lane.step_key[idx], doubled, pf)
                    exact = pf * mp + lane.carry[idx]
                    fec_raw = exact.astype(np.int64)
                    carry = exact - fec_raw
                    carry = np.where(carry < 0.0, 0.0, carry)
                    carry = np.where(carry > 1.0, 1.0, carry)
                    lane.carry[idx] = np.where(
                        mpos, carry, lane.carry[idx]
                    )
                    fec_pk = np.where(
                        mpos, np.where(fec_raw > mp, mp, fec_raw), 0
                    )
                elif fec_converge:
                    low = peak_hold < _MIN_LOSS_FOR_FEC
                    zero = mpos & low
                    if zero.any():
                        lane.carry[zero if full else idx[zero]] = 0.0
                    act = mpos & ~low
                    if act.any():
                        beta = lane.beta[idx]
                        elapsed = now - lane.last_update[idx]
                        decay_m = act & (elapsed > 0.0)
                        if decay_m.any():
                            factor = _unique_apply_memo(
                                math.exp,
                                -_BETA_DECAY * elapsed[decay_m],
                                exp_memo,
                            )
                            nb = beta[decay_m]
                            beta[decay_m] = 1.0 + (nb - 1.0) * factor
                            lane.beta[idx] = beta
                            lane.last_update[
                                decay_m if full else idx[decay_m]
                            ] = now
                        prot = np.where(
                            peak_hold > _MAX_PROTECTED_LOSS,
                            _MAX_PROTECTED_LOSS,
                            peak_hold,
                        )
                        prot = prot * beta
                        prot = np.where(
                            prot > _MAX_PROTECTION, _MAX_PROTECTION, prot
                        )
                        exact = prot * mp + lane.carry[idx]
                        fec_raw = exact.astype(np.int64)
                        fec_raw = np.where(
                            (fec_raw == 0) & (exact >= _ROUND_UP_THRESHOLD),
                            1,
                            fec_raw,
                        )
                        carry = exact - fec_raw
                        carry = np.where(carry < 0.0, 0.0, carry)
                        carry = np.where(carry > 1.0, 1.0, carry)
                        lane.carry[idx] = np.where(
                            act, carry, lane.carry[idx]
                        )
                        fec_pk = np.where(
                            act, np.where(fec_raw > mp, mp, fec_raw), fec_pk
                        )
                fec_bytes = fec_pk * mtu

                # FlowLink.push, batched.
                backlog = lane.backlog[idx] - capv * dt / 8.0
                backlog = np.where(backlog < 0.0, 0.0, backlog)
                backlog = backlog + (mb + fec_bytes)
                overflow = backlog - pc.queue_cap
                spill = overflow > 0.0
                backlog = np.where(spill, pc.queue_cap, backlog)
                overflow = np.where(spill, overflow, 0.0)
                lane.backlog[idx] = backlog
                qd_open = backlog * 8.0 / capv
                queue_delay = np.where(
                    outage,
                    np.where(backlog > 0.0, inf, 0.0),
                    qd_open,
                )
                overflow_packets = (overflow // mtu).astype(np.int64)

                # path_frame_outcome, batched.
                lost = np.zeros(m, dtype=np.int64)
                drawable = mpos & (frame_loss > 0.0) & (frame_loss < 1.0)
                if drawable.any():
                    sub = np.flatnonzero(drawable)
                    u = pool.draw(sub if full else idx[sub])
                    lost[sub] = _binomial_walk(
                        mp[sub], frame_loss[sub], u, walk_memo
                    )
                lost = np.where(mpos & (frame_loss >= 1.0), mp, lost)
                lost = lost + overflow_packets
                lost = np.where(lost > mp, mp, lost)
                fec_received = fec_pk.copy()
                fdraw = (fec_pk > 0) & (frame_loss > 0.0) & (frame_loss < 1.0)
                if fdraw.any():
                    sub = np.flatnonzero(fdraw)
                    u = pool.draw(sub if full else idx[sub])
                    fec_received[sub] = fec_pk[sub] - _binomial_walk(
                        fec_pk[sub], frame_loss[sub], u, walk_memo
                    )
                fec_received = np.where(
                    (fec_pk > 0) & (frame_loss >= 1.0), 0, fec_received
                )
                no_loss = lost == 0
                fec_recovered = np.where(
                    no_loss,
                    0,
                    np.where(lost < fec_received, lost, fec_received),
                )
                remaining = lost - fec_recovered
                rtx_rounds = np.zeros(m, dtype=np.int64)
                for _ in range(MAX_RTX_ROUNDS):
                    act = ~no_loss & (remaining > 0)
                    if not act.any():
                        break
                    rtx_rounds = np.where(act, rtx_rounds + 1, rtx_rounds)
                    rdraw = act & (frame_loss > 0.0) & (frame_loss < 1.0)
                    walked = remaining
                    if rdraw.any():
                        sub = np.flatnonzero(rdraw)
                        u = pool.draw(sub if full else idx[sub])
                        walked = remaining.copy()
                        walked[sub] = _binomial_walk(
                            remaining[sub], frame_loss[sub], u, walk_memo
                        )
                    remaining = np.where(
                        act & (frame_loss <= 0.0),
                        0,
                        np.where(act, walked, remaining),
                    )
                delivered = np.where(no_loss, True, remaining == 0)
                delivered = delivered & ~outage

                # Burst kill draw (run-of-losses restoration).
                killed = np.zeros(m, dtype=np.bool_)
                km = ~outage & mpos & (inst_peak >= BURST_LOSS_FLOOR)
                if km.any():
                    kill_p = _BURST_KILL_FACTOR * frame_loss
                    kill_p = np.where(
                        kill_p > _BURST_KILL_MAX, _BURST_KILL_MAX, kill_p
                    )
                    sub = np.flatnonzero(km)
                    u = pool.draw(sub if full else idx[sub])
                    kk = u < kill_p[sub]
                    killed[sub] = kk
                    delivered = delivered & ~killed

                # Send records.
                lane.rec_media_packets[idx] += mp
                lane.rec_media_bytes[idx] += mb
                lane.rec_fec_packets[idx] += fec_pk
                lane.rec_fec_bytes[idx] += fec_bytes
                self.fec_received_total[idx] += fec_received
                self.fec_recovered_total[idx] += fec_recovered
                uncovered = lost - fec_recovered
                up = uncovered > 0
                if up.any():
                    lane.rec_rtx_packets[idx] += np.where(up, uncovered, 0)
                    lane.rec_rtx_bytes[idx] += np.where(
                        up, uncovered * mtu, 0
                    )
                    if qoe_feedback and fec_converge:
                        bump = up & mpos
                        if bump.any():
                            proposed = 1.0 + _BETA_BUMP * uncovered
                            beta = lane.beta[idx]
                            raised = bump & (proposed > beta)
                            capped = np.where(
                                proposed > _BETA_MAX, _BETA_MAX, proposed
                            )
                            lane.beta[idx] = np.where(raised, capped, beta)
                            lane.last_update[
                                bump if full else idx[bump]
                            ] = now

                srtt_sample = pc.prop2 + np.where(
                    queue_delay < 2.0, queue_delay, 2.0
                )
                sent = mb + fec_bytes
                offered = sent * 8.0 / dt
                delivered_bytes = np.where(
                    delivered,
                    mb,
                    np.where(mb - uncovered * mtu < 0, 0, mb - uncovered * mtu),
                )
                acked = delivered_bytes + fec_bytes
                delivered_rate = np.where(acked < sent, acked, sent) * 8.0 / dt

                rate_pre = lane.rate[idx]
                healthy = (
                    ~outage
                    & ~lane.degraded[idx]
                    & (le <= _PROBE_MAX_LOSS)
                    & (queue_delay <= _PROBE_MAX_QUEUE_DELAY)
                )
                if probe_due:
                    probe_bits = np.where(healthy, probe_run_bits_f, 0.0)
                else:
                    frame_probe = (
                        healthy
                        & (rate_pre >= _FRAME_PROBE_MIN_RATE)
                        & (mp + fec_pk >= _FRAME_PROBE_MIN_PACKETS)
                    )
                    probe_bits = np.where(
                        frame_probe, (mp + fec_pk - 1) * mtu * 8.0, 0.0
                    )

                # SteadyStateGcc.advance + update, batched.
                srtt = lane.srtt[idx]
                srtt = srtt + RTT_SMOOTHING * (srtt_sample - srtt)
                lane.srtt[idx] = srtt
                oa = lane.offered_avg[idx]
                oa = np.where(
                    oa <= 0.0, offered, oa + win_alpha * (offered - oa)
                )
                lane.offered_avg[idx] = oa
                da = lane.delivered[idx]
                da = np.where(
                    da <= 0.0,
                    delivered_rate,
                    da + win_alpha * (delivered_rate - da),
                )
                lane.delivered[idx] = da
                upd = ~outage
                if upd.any():
                    rate = rate_pre.copy()
                    lr = lane.loss_rate[idx]
                    hold_pre = lane.hold_until[idx]
                    burst = inst_peak >= BURST_LOSS_FLOOR
                    qd_over = queue_delay > OVERUSE_QUEUE_DELAY
                    misfire = np.zeros(m, dtype=np.bool_)
                    odraw = upd & ~qd_over & burst
                    if odraw.any():
                        sub = np.flatnonzero(odraw)
                        u = pool.draw(sub if full else idx[sub])
                        misfire[sub] = u < BURST_OVERUSE_PROBABILITY
                    overuse = upd & (qd_over | misfire)
                    grow = upd & ~overuse & (now >= hold_pre)
                    if overuse.any():
                        cut_base = np.where(da > 0.0, da, rate)
                        cut = BACKOFF_FACTOR * cut_base
                        rate = np.where(overuse & (cut < rate), cut, rate)
                        # The estimate reads the *post-cut* rate when
                        # nothing has been delivered yet.
                        lane.cap_est[idx] = np.where(
                            overuse,
                            np.where(da > 0.0, da, rate),
                            lane.cap_est[idx],
                        )
                        lane.has_est[idx] |= overuse
                        lane.hold_until[idx] = np.where(
                            overuse, now + HOLD_SECONDS, hold_pre
                        )
                    if grow.any():
                        saturated = oa >= 0.7 * rate
                        est = lane.cap_est[idx]
                        near = (
                            lane.has_est[idx]
                            & (near_lo * est <= da)
                            & (da <= near_hi * est)
                        )
                        denom = srtt + 0.1
                        denom = np.where(denom < 1e-3, 1e-3, denom)
                        additive = rate + half_mtu_bits / denom * dt
                        multiplicative = rate * growth_dt
                        rate = np.where(
                            grow & near,
                            additive,
                            np.where(
                                grow & ~near & saturated,
                                multiplicative,
                                rate,
                            ),
                        )
                        rate_cap = 1.5 * da + 10_000.0
                        rate = np.where(
                            grow & saturated & (da > 0.0) & (rate > rate_cap),
                            rate_cap,
                            rate,
                        )
                        pj = grow & (probe_bits > 0.0)
                        if pj.any():
                            est_bps = probe_bits / (
                                PROBE_JITTER_SPAN + probe_bits / capv
                            )
                            jump_m = pj & (est_bps > 1.5 * rate)
                            if jump_m.any():
                                jump = 0.85 * est_bps
                                limit = 4.0 * rate
                                jumped = np.where(jump < limit, jump, limit)
                                rate = np.where(jump_m, jumped, rate)
                                lr = np.where(
                                    jump_m & (lr < rate), rate, lr
                                )
                    # Loss-based branch at RTCP report cadence.
                    accum = np.where(
                        upd, lane.loss_accum[idx] + dt, lane.loss_accum[idx]
                    )
                    while True:
                        fire = upd & (accum >= LOSS_REPORT_INTERVAL)
                        if not fire.any():
                            break
                        accum = np.where(
                            fire, accum - LOSS_REPORT_INTERVAL, accum
                        )
                        fraction = frame_loss
                        dilute = fire & burst & (
                            frame_loss <= LOSS_CUT_THRESHOLD
                        )
                        if dilute.any():
                            report_packets = (
                                offered * LOSS_REPORT_INTERVAL / _MTU_BITS
                            )
                            report_packets = np.where(
                                report_packets < 1.0, 1.0, report_packets
                            )
                            diluted = BURST_EXPECTED_LOSSES / report_packets
                            fraction = np.where(
                                dilute,
                                np.where(
                                    inst_peak <= diluted, inst_peak, diluted
                                ),
                                fraction,
                            )
                        lr = np.where(
                            fire & (fraction > LOSS_CUT_THRESHOLD),
                            lr * (1.0 - 0.5 * fraction),
                            np.where(
                                fire & (fraction < LOSS_PROBE_THRESHOLD),
                                lr * 1.05,
                                lr,
                            ),
                        )
                    lane.loss_accum[idx] = accum
                    loss_cap = 2.0 * rate
                    lr = np.where(
                        upd,
                        np.where(
                            lr > loss_cap,
                            loss_cap,
                            np.where(lr < gcc_min, gcc_min, lr),
                        ),
                        lr,
                    )
                    lane.loss_rate[idx] = lr
                    rate = np.where(
                        upd,
                        np.where(
                            rate < gcc_min,
                            gcc_min,
                            np.where(rate > gcc_max, gcc_max, rate),
                        ),
                        rate,
                    )
                    lane.rate[idx] = rate

                completion = (
                    np.where(queue_delay < 4.0, queue_delay, 4.0) + pc.prop
                ) + rtx_rounds * srtt
                lane.out_delivered[idx] = delivered
                lane.out_completion[idx] = completion
                lane.out_killed[idx] = killed
                self.step_media[idx] += mb
                self.step_fec[idx] += fec_bytes

            # -- idle paths ------------------------------------------------
            for lane in lanes:
                im = ~lane.member
                draining = im & (lane.backlog > 0.0)
                if draining.any():
                    bl = lane.backlog - lane.cap * dt / 8.0
                    bl = np.where(bl < 0.0, 0.0, bl)
                    lane.backlog = np.where(draining, bl, lane.backlog)
                dec = im & (lane.cap <= 0.0)
                if dec.any():
                    r = lane.rate * decay_scaled
                    lane.rate = np.where(
                        dec, np.where(r < gcc_min, gcc_min, r), lane.rate
                    )
                    lr2 = lane.loss_rate * decay_scaled
                    lane.loss_rate = np.where(
                        dec,
                        np.where(lr2 < gcc_min, gcc_min, lr2),
                        lane.loss_rate,
                    )

            # -- FEC budget feedback ---------------------------------------
            pm = self.step_media > 0
            if pm.any():
                instant = self.step_fec / self.step_media
                self.protection = np.where(
                    pm,
                    self.protection
                    + _PROTECTION_SMOOTHING * (instant - self.protection),
                    self.protection,
                )

            # -- frame finish ----------------------------------------------
            if enc_any:
                self._finish(
                    step, now, enc_mask, enc_all, max_latency, is_converge
                )

        return self._finalize()

    # -- step helpers ------------------------------------------------------

    # drift: pair(flow-batch) impl
    def _watchdog(
        self,
        now: float,
        p: int,
        lane: _PathLanes,
        cap: F8,
        attention: B1,
        degrade_timeout: float,
        silence_timeout: float,
        decay_scaled: float,
        gcc_min: float,
    ) -> None:
        pid = self.consts[p].path_id
        dark = attention & (cap <= 0.0)
        if dark.any():
            lane.silence = np.where(dark, lane.silence + self.dt, lane.silence)
            over = dark & (lane.silence > degrade_timeout)
            if over.any():
                newly = over & ~lane.degraded
                if newly.any():
                    lane.degraded |= newly
                    for i in np.flatnonzero(newly).tolist():
                        self.path_events[i].append((now, pid, "degraded"))
                r = lane.rate * decay_scaled
                lane.rate = np.where(
                    over, np.where(r < gcc_min, gcc_min, r), lane.rate
                )
                lr = lane.loss_rate * decay_scaled
                lane.loss_rate = np.where(
                    over, np.where(lr < gcc_min, gcc_min, lr), lane.loss_rate
                )
            gone = dark & (lane.silence > silence_timeout) & ~lane.disabled
            if gone.any():
                lane.disabled |= gone
                for i in np.flatnonzero(gone).tolist():
                    self.path_events[i].append((now, pid, "disabled"))
        back = attention & (cap > 0.0) & (lane.silence > 0.0)
        if back.any():
            lane.silence = np.where(back, 0.0, lane.silence)
            restored = back & lane.degraded
            enabled = back & lane.disabled
            lane.degraded &= ~restored
            lane.disabled &= ~enabled
            if restored.any() or enabled.any():
                rs = set(np.flatnonzero(restored).tolist())
                es = set(np.flatnonzero(enabled).tolist())
                for i in sorted(rs | es):
                    if i in rs:
                        self.path_events[i].append((now, pid, "restored"))
                    if i in es:
                        self.path_events[i].append((now, pid, "enabled"))

    # drift: pair(flow-batch) impl
    def _cm_schedule(
        self, now: float, usable: List[B1], pids: List[int]
    ) -> None:
        """WebRTC-CM failover: one pinned path with reconnect windows."""
        lanes = self.lanes
        batch = self.batch_size
        reconnecting = now < self.cm_reconnect_until
        active = ~reconnecting
        pinned_usable = np.zeros(batch, dtype=np.bool_)
        pinned_silence = np.zeros(batch, dtype=np.float64)
        for p, pid in enumerate(pids):
            at = self.pinned == pid
            pinned_usable |= at & usable[p]
            pinned_silence = np.where(
                at, lanes[p].silence, pinned_silence
            )
        failed = active & (
            ~pinned_usable | (pinned_silence > _CM_FAILURE_TIMEOUT)
        )
        if failed.any():
            # First-min candidate (pid order, strict <) among usable
            # paths other than the pinned one.
            cand_pid = np.full(batch, -1, dtype=np.int64)
            cand_sil = np.zeros(batch, dtype=np.float64)
            for p, pid in enumerate(pids):
                eligible = failed & usable[p] & (self.pinned != pid)
                first = eligible & (cand_pid < 0)
                better = eligible & (cand_pid >= 0) & (
                    lanes[p].silence < cand_sil
                )
                pick = first | better
                cand_pid = np.where(pick, pid, cand_pid)
                cand_sil = np.where(pick, lanes[p].silence, cand_sil)
            switching = failed & (cand_pid >= 0)
            if switching.any():
                self.pinned = np.where(switching, cand_pid, self.pinned)
                self.cm_reconnect_until = np.where(
                    switching, now + _CM_RECONNECT_DELAY,
                    self.cm_reconnect_until,
                )
            sending = active & ~switching
        else:
            sending = active
        for p, pid in enumerate(pids):
            lanes[p].member = sending & (self.pinned == pid)

    # drift: pair(flow-batch) impl
    def _allocate(
        self,
        enc_mask: B1,
        send_n: I8,
        total_weight: F8,
        mtu: int,
        is_converge: bool,
    ) -> None:
        """Split ``size0`` over member paths (``_allocate``, batched)."""
        lanes = self.lanes
        batch = self.batch_size
        size = self.size0
        key = self.key0
        nk = key & is_converge if is_converge else np.zeros(batch, np.bool_)
        one = enc_mask & (send_n == 1)
        two = enc_mask & (send_n == 2)
        two_prop = two & ~nk
        gen = enc_mask & (send_n >= 3)
        conv_key = (two | gen) & nk
        gen_split = gen & ~nk
        if two_prop.any():
            w_first = np.zeros(batch, dtype=np.float64)
            for lane in lanes:
                first = two_prop & lane.member & (lane.rank == 0)
                w_first = np.where(first, lane.weight, w_first)
            share = (size * w_first / total_weight).astype(np.int64)
        if conv_key.any():
            # Keyframes ride the path with the smallest srtt + queue
            # delay at the current target (first-min in pid order).
            best_col = np.full(batch, -1, dtype=np.int64)
            best_score = np.zeros(batch, dtype=np.float64)
            for p, lane in enumerate(lanes):
                m = conv_key & lane.member
                if not m.any():
                    continue
                drain_rate = np.where(lane.tgt > 1.0, lane.tgt, 1.0)
                qd = np.where(
                    lane.backlog > 0.0,
                    lane.backlog * 8.0 / drain_rate,
                    0.0,
                )
                score = lane.srtt + qd
                first = m & (best_col < 0)
                better = m & (best_col >= 0) & (score < best_score)
                pick = first | better
                best_col = np.where(pick, p, best_col)
                best_score = np.where(pick, score, best_score)
        assigned = np.zeros(batch, dtype=np.int64)
        if gen_split.any():
            for lane in lanes:
                head = gen_split & lane.member & (lane.rank < send_n - 1)
                if head.any():
                    part = (size * lane.weight / total_weight).astype(
                        np.int64
                    )
                    lane.step_bytes = np.where(
                        head, part, lane.step_bytes
                    )
                    assigned += np.where(head, part, 0)
        for p, lane in enumerate(lanes):
            m = lane.member
            sb = lane.step_bytes
            sb = np.where(one & m, size, sb)
            if two_prop.any():
                sb = np.where(two_prop & m & (lane.rank == 0), share, sb)
                sb = np.where(
                    two_prop & m & (lane.rank == 1), size - share, sb
                )
            if conv_key.any():
                sb = np.where(conv_key & (best_col == p), size, sb)
            if gen_split.any():
                sb = np.where(
                    gen_split & m & (lane.rank == send_n - 1),
                    size - assigned,
                    sb,
                )
            lane.step_bytes = sb
            positive = sb > 0
            lane.step_packets = np.where(positive, -((-sb) // mtu), 0)
            lane.step_key = key & positive

    # drift: pair(flow-batch) impl
    def _hard_drop(self, now: float, idx: I8) -> None:
        """Drop the in-flight frame for the listed cells."""
        blocked = self.blocked
        request_at = self.request_at
        rearm = ~blocked[idx] | (request_at[idx] == math.inf)
        request_at[idx[rearm]] = now + _KEYFRAME_RECOVERY_DELAY
        blocked[idx] = True
        self.drops[idx] += 1

    # drift: pair(flow-batch) impl
    def _finish(
        self,
        step: int,
        now: float,
        enc_mask: B1,
        enc_all: bool,
        max_latency: float,
        is_converge: bool,
    ) -> None:
        lanes = self.lanes
        pool = self.pool
        batch = self.batch_size
        completion = np.zeros(batch, dtype=np.float64)
        any_failed = np.zeros(batch, dtype=np.bool_)
        dropped = np.zeros(batch, dtype=np.bool_)
        dropped_any = False
        size = self.size0
        for lane in lanes:
            act = enc_mask & lane.member & (lane.step_bytes > 0)
            if dropped_any:
                act &= ~dropped
            if not act.any():
                continue
            kb = act & lane.out_killed
            if kb.any():
                sub = np.flatnonzero(kb)
                u = pool.draw(sub)
                share = lane.step_bytes[sub] / size[sub]
                kdrop = u < share
                if kdrop.any():
                    gone = sub[kdrop]
                    dropped[gone] = True
                    dropped_any = True
                    self._hard_drop(now, gone)
                survived = sub[~kdrop]
                if survived.size:
                    lane.out_failed[survived] = True
                    any_failed[survived] = True
            fold = act & ~lane.out_killed
            if fold.any():
                completion = np.where(
                    fold & (lane.out_completion > completion),
                    lane.out_completion,
                    completion,
                )
                miss = fold & ~lane.out_delivered
                lane.out_failed |= miss
                any_failed |= miss
        if any_failed.any():
            need_best = enc_mask & any_failed
            if dropped_any:
                need_best &= ~dropped
            # Salvage pass over the (few) cells whose frame missed on
            # some path: gather them down to a short index vector.
            nb = np.flatnonzero(need_best)
            if nb.size:
                best_comp = np.zeros(nb.size, dtype=np.float64)
                best_srtt = np.zeros(nb.size, dtype=np.float64)
                found = np.zeros(nb.size, dtype=np.bool_)
                for lane in lanes:
                    cand = (
                        lane.member[nb]
                        & ~lane.out_failed[nb]
                        & lane.out_delivered[nb]
                    )
                    if not cand.any():
                        continue
                    comp_nb = lane.out_completion[nb]
                    first = cand & ~found
                    better = cand & found & (comp_nb < best_comp)
                    pick = first | better
                    best_comp = np.where(pick, comp_nb, best_comp)
                    best_srtt = np.where(pick, lane.srtt[nb], best_srtt)
                    found |= cand
                nobody = nb[~found]
                if nobody.size:
                    dropped[nobody] = True
                    dropped_any = True
                    self._hard_drop(now, nobody)
                if found.any():
                    salvage = best_comp + best_srtt
                    cur = completion[nb]
                    completion[nb] = np.where(
                        found & (salvage > cur), salvage, cur
                    )
        late = enc_mask & (completion > max_latency)
        if dropped_any:
            late &= ~dropped
        if late.any():
            lidx = np.flatnonzero(late)
            dropped[lidx] = True
            dropped_any = True
            self._hard_drop(now, lidx)
        if self.blocked.any():
            gap = enc_mask & self.blocked & ~self.key0
            if dropped_any:
                gap &= ~dropped
            if gap.any():
                gidx = np.flatnonzero(gap)
                dropped[gidx] = True
                dropped_any = True
                self.drops[gidx] += 1
        if enc_all and not dropped_any:
            # Everyone rendered: whole-row writes, no index gathers.
            self.received_total += size
            self.blocked.fill(False)
            self.rendered_size[step] = size
            self.rendered_key[step] = self.key0
            self.rendered_qp[step] = self.qp0
            self.rendered_completion[step] = completion
            return
        render = enc_mask & ~dropped
        if render.any():
            ridx = np.flatnonzero(render)
            self.received_total[ridx] += size[ridx]
            self.blocked[ridx] = False
            self.rendered_size[step, ridx] = size[ridx]
            self.rendered_key[step, ridx] = self.key0[ridx]
            self.rendered_qp[step, ridx] = self.qp0[ridx]
            self.rendered_completion[step, ridx] = completion[ridx]

    # -- payload construction ----------------------------------------------

    def _finalize(self) -> List[Dict[str, Any]]:
        config = self.config
        duration = config.duration
        frame_rate = config.frame_rate
        rd_model = config.encoder_template.rd_model
        nominal_interval = 1.0 / frame_rate
        nows = np.array(self.nows, dtype=np.float64)
        sample_nows = [self.nows[s] for s in self.sample_steps]
        # Receive-rate window cutoffs: first retained render step per
        # sample instant (strictly-older entries are evicted).
        cut_index = np.searchsorted(
            nows, np.array(sample_nows) - 1.0, side="left"
        )
        sample_index = np.array(self.sample_steps, dtype=np.int64)
        render_cum = np.zeros(
            (self.steps + 1, self.batch_size), dtype=np.int64
        )
        np.cumsum(self.rendered_size, axis=0, out=render_cum[1:])
        rr_values = (
            (render_cum[sample_index] - render_cum[cut_index]) * 8 / 1.0
        )
        # Per-cell transposes: contiguous columns for cheap extraction.
        rendered_size_t = np.ascontiguousarray(self.rendered_size.T)
        rendered_key_t = np.ascontiguousarray(self.rendered_key.T)
        rendered_qp_t = np.ascontiguousarray(self.rendered_qp.T)
        rendered_completion_t = np.ascontiguousarray(
            self.rendered_completion.T
        )
        tr_t = np.ascontiguousarray(self.tr_samples.T)
        rr_t = np.ascontiguousarray(rr_values.T)
        tgt_t = [
            np.ascontiguousarray(lane.tgt_samples.T) for lane in self.lanes
        ]
        # fps buckets, replayed with the collector's float accumulator.
        bucket_ends: List[float] = []
        t = 0.0
        while t < duration:
            bucket_ends.append(t + 1.0)
            t += 1.0
        payloads = []
        for i, cell in enumerate(self.cells):
            payloads.append(
                self._cell_payload(
                    i,
                    cell,
                    nows,
                    sample_nows,
                    rendered_size_t[i],
                    rendered_key_t[i],
                    rendered_qp_t[i],
                    rendered_completion_t[i],
                    tr_t[i],
                    rr_t[i],
                    tgt_t,
                    bucket_ends,
                    rd_model,
                    nominal_interval,
                )
            )
        return payloads

    def _cell_payload(
        self,
        i: int,
        cell: Cell,
        nows: F8,
        sample_nows: List[float],
        sizes: I8,
        keys: B1,
        qps: F8,
        completions: F8,
        tr_col: F8,
        rr_col: F8,
        tgt_t: List[F8],
        bucket_ends: List[float],
        rd_model: Any,
        nominal_interval: float,
    ) -> Dict[str, Any]:
        config = self.config
        duration = config.duration
        frame_rate = config.frame_rate
        render_steps = np.flatnonzero(sizes)
        capture = nows[render_steps]
        comp = completions[render_steps]
        render_times = capture + comp
        rendered_count = int(render_steps.shape[0])
        # QoE summary (repro.metrics.qoe.summarize, exactly batched:
        # cumsum replays Python's left-fold sums bit for bit).
        e2e = render_times - capture
        if rendered_count:
            e2e_mean = float(np.cumsum(e2e)[-1]) / rendered_count
            deviations = e2e - e2e_mean
            squares = _unique_apply(lambda v: v**2.0, deviations)
            e2e_std = math.sqrt(
                float(np.cumsum(squares)[-1]) / rendered_count
            )
            e2e_sorted = np.sort(e2e)
            e2e_p95 = float(
                e2e_sorted[
                    min(int(0.95 * rendered_count), rendered_count - 1)
                ]
            )
        else:
            e2e_mean = 0.0
            e2e_std = 0.0
            e2e_p95 = 0.0
        # Freeze stats over sorted render times with boundary gaps.
        if rendered_count:
            ordered = np.sort(render_times)
            bounds = np.empty(rendered_count + 2, dtype=np.float64)
            bounds[0] = 0.0
            bounds[1:-1] = ordered
            bounds[-1] = duration
            gaps = bounds[1:] - bounds[:-1]
            frozen = gaps[gaps > FREEZE_THRESHOLD] - nominal_interval
            freeze_count = int(frozen.shape[0])
            freeze_total = (
                float(np.cumsum(frozen)[-1]) if freeze_count else 0.0
            )
        else:
            freeze_count = 1
            freeze_total = duration
        freeze_mean = freeze_total / freeze_count if freeze_count else 0.0
        # ``qps`` carries the clamped RD ratio; the deferred log (the
        # encoder's exact ``math.log``) and QP clamp happen here, once
        # per rendered frame.
        ratios = qps[render_steps]
        qp_values = rd_model.qp_anchor - rd_model.qp_slope * np.fromiter(
            map(math.log, ratios.tolist()), np.float64, count=rendered_count
        )
        qp_values = np.where(
            qp_values < rd_model.qp_min, rd_model.qp_min, qp_values
        )
        qp_values = np.where(
            qp_values > rd_model.qp_max, rd_model.qp_max, qp_values
        )
        if rendered_count:
            average_qp = float(np.cumsum(qp_values)[-1]) / rendered_count
        else:
            average_qp = rd_model.qp_max
        frozen_frames = int(freeze_total * frame_rate)
        psnr_live = rd_model.psnr_intercept - rd_model.psnr_slope * qp_values
        psnr_samples = np.concatenate(
            [psnr_live, np.full(frozen_frames, REPEATED_FRAME_PSNR)]
        )
        total_samples = rendered_count + frozen_frames
        average_psnr = (
            float(np.cumsum(psnr_samples)[-1]) / total_samples
            if total_samples
            else 0.0
        )
        media_packets_sent = 0
        fec_packets_sent = 0
        paths_block: Dict[str, Dict[str, int]] = {}
        for p, lane in enumerate(self.lanes):
            mp = int(lane.rec_media_packets[i])
            fp = int(lane.rec_fec_packets[i])
            media_packets_sent += mp
            fec_packets_sent += fp
            paths_block[str(self.consts[p].path_id)] = {
                "media_packets": mp,
                "media_bytes": int(lane.rec_media_bytes[i]),
                "fec_packets": fp,
                "fec_bytes": int(lane.rec_fec_bytes[i]),
                "rtx_packets": int(lane.rec_rtx_packets[i]),
                "rtx_bytes": int(lane.rec_rtx_bytes[i]),
            }
        fec_overhead = (
            fec_packets_sent / media_packets_sent if media_packets_sent else 0.0
        )
        fec_received = int(self.fec_received_total[i])
        fec_utilization = (
            int(self.fec_recovered_total[i]) / fec_received
            if fec_received
            else 0.0
        )
        # fps series: bucketed render counts (collector.fps_series).
        sorted_rt = np.sort(render_times)
        edges = np.searchsorted(sorted_rt, np.array(bucket_ends), side="left")
        fps_counts = np.empty(len(bucket_ends), dtype=np.int64)
        fps_counts[0] = edges[0]
        fps_counts[1:] = edges[1:] - edges[:-1]
        fps_values = (fps_counts / 1.0).tolist()
        capture_list = capture.tolist()
        label = cell.label or config.system.value
        return {
            "label": label,
            "config": {
                "system": config.system.value,
                "fec_mode": config.fec_mode.value,
                "duration": duration,
                "num_streams": config.num_streams,
                "seed": cell.seed,
                "qoe_feedback_enabled": config.qoe_feedback_enabled,
            },
            "summary": {
                "frames_rendered": rendered_count,
                "average_fps": rendered_count / duration / 1,
                "throughput_bps": int(self.received_total[i]) * 8 / duration,
                "e2e_mean": e2e_mean,
                "e2e_std": e2e_std,
                "e2e_p95": e2e_p95,
                "freeze_count": freeze_count,
                "freeze_total": freeze_total,
                "freeze_mean": freeze_mean,
                "average_qp": average_qp,
                "average_psnr": average_psnr,
                "psnr_samples": psnr_samples.tolist(),
                "fec_overhead": fec_overhead,
                "fec_utilization": fec_utilization,
                "frame_drops": int(self.drops[i]),
                "keyframe_requests": len(self.kf_requests[i]),
            },
            "series": {
                "receive_rate": {
                    "times": list(sample_nows),
                    "values": rr_col.tolist(),
                },
                "target_rate": {
                    "times": list(sample_nows),
                    "values": tr_col.tolist(),
                },
                "ifd": {
                    "times": capture_list[1:],
                    "values": (render_times[1:] - render_times[:-1]).tolist(),
                },
                "fcd": {
                    "times": capture_list,
                    "values": comp.tolist(),
                },
                "fps": {
                    "times": list(bucket_ends),
                    "values": fps_values,
                },
                "path_rates": {
                    str(self.consts[p].path_id): {
                        "times": list(sample_nows),
                        "values": tgt_t[p][i].tolist(),
                    }
                    for p in range(len(self.lanes))
                },
            },
            "paths": paths_block,
            "events": {
                "keyframe_requests": [
                    list(req) for req in self.kf_requests[i]
                ],
                "feedback": [],
                "path_events": [
                    {"time": time, "path_id": path_id, "event": event}
                    for time, path_id, event in self.path_events[i]
                ],
            },
            "faults": {"injected": [], "recovery": []},
        }


# ---------------------------------------------------------------------------
# Group execution


def execute_batch(cells: Sequence[Cell]) -> List[Dict[str, Any]]:
    """Execute one structural group of cells as an array program.

    All cells must share :func:`group_key`; cells that fail the dynamic
    path checks (scheduled loss models, per-path parameter drift) fall
    back to the scalar backend individually.  Results come back in
    input order, byte-identical to normalized scalar runner payloads.
    """
    if not cells:
        return []
    payloads: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    accepted: List[int] = []
    links_per_cell: List[List[FlowLink]] = []
    template_sig: Optional[List[Tuple[Any, ...]]] = None
    template_config: Optional[CallConfig] = None
    for index, cell in enumerate(cells):
        if not batchable(cell):
            continue
        path_configs = sorted(
            cell.paths.build(cell.duration, cell.seed),
            key=lambda pc: pc.path_id,
        )
        config = build_template_config(cell)
        links = [FlowLink(pc) for pc in path_configs]
        if any(link._scheduled is not None for link in links):
            continue
        signature = [_PathConsts(link).signature() for link in links]
        if template_sig is None:
            template_sig = signature
            template_config = config
        if signature != template_sig:
            continue
        accepted.append(index)
        links_per_cell.append(links)
    if accepted and template_config is not None:
        run = _BatchFlowRun(
            template_config,
            [cells[i] for i in accepted],
            links_per_cell,
        )
        # One suppressed-warning window for the whole array program:
        # guarded divisions (outage capacities, zero weights) are
        # selected away by ``np.where`` right after they happen.
        with np.errstate(divide="ignore", invalid="ignore"):
            batch_payloads = run.run()
        for i, payload in zip(accepted, batch_payloads):
            payloads[i] = payload
    for index, payload in enumerate(payloads):
        if payload is None:
            payloads[index] = _scalar_payload(cells[index])
    return [payload for payload in payloads if payload is not None]


def build_template_config(cell: Cell) -> CallConfig:
    """The :class:`CallConfig` the batch shares (seed/label vary)."""
    from repro.core.api import build_call_config

    return build_call_config(
        cell.system,
        duration=cell.duration,
        num_streams=cell.num_streams,
        seed=cell.seed,
        single_path_id=cell.single_path_id,
        label=cell.label,
        **cell.override_kwargs(),
    )
