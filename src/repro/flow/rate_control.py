"""Steady-state approximation of the GCC rate controller.

The packet-level core runs the full delay-gradient pipeline
(arrival-time trendline, overuse detector, AIMD, probe-burst capacity
estimation, loss-based branch).  At flow fidelity the controller keeps
the regimes that pipeline moves through, driven by the fluid
queue-delay signal from :class:`repro.flow.link.FlowLink`:

- **ramp** — 8 %/s multiplicative increase while the path is
  saturated (the sender actually offered ~the target; an idle path's
  estimate stays frozen, exactly like the packet core where no
  feedback means no AIMD updates),
- **probe jumps** — the packet sender fires an 8-packet padding burst
  every 2 s on each healthy media-carrying path (PROBE_BWE); its
  arrival spacing measures capacity (diluted by per-packet jitter)
  and the estimate jumps to ``min(0.85 * estimate, 4 * rate)`` — this
  is what takes the packet GCC from ~1.15 Mbps to several Mbps in one
  step at t ~ 2.1 s of every golden trace.  The session replays the
  same 2 s cadence and the same gates (healthy, carrying media, loss
  under 8 %, no standing queue).  Above ~4.3 Mbps the pacer's
  inter-packet gap drops under the probe send-gap threshold and every
  media frame itself becomes a probe burst — that second channel is
  what lets the packet-level multipath paths climb from ~4 Mbps to
  link capacity in under a second, so the session replays it too,
- **overuse backoff** — a standing queue above the detector
  threshold, or a burst-loss window that trips the trendline, cuts to
  ``0.85 * delivered`` and latches a link-capacity estimate; from then
  on, increase near that estimate is *additive* (about one MTU per
  response time) and capped at ``1.5 * delivered`` — the sticky
  plateau the packet-level single-path systems settle into,
- **loss-based branch** — a parallel rate that mimics RTCP-report
  dynamics: +5 % per report under 2 % loss, multiplicative cut above
  10 %; burst losses are *diluted* by the report's packet count, so a
  fast path shrugs off a burst that pins a slow one,
- **watchdog decay** — multiplicative decay while feedback is dark or
  the path is in outage (driven by the session, :meth:`decay`).

Every constant lives at module scope so the cross-validation
tolerance methodology (EXPERIMENTS.md) can point at one place.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.cc.gcc import GccConfig

# Multiplicative increase per second while saturated (GCC's 1.08).
GROWTH_PER_SECOND = 1.08
# Standing queue delay that trips the overuse detector
# (repro.cc.gcc._STANDING_QUEUE_DELAY).
OVERUSE_QUEUE_DELAY = 0.08
# Overuse cut factor applied to the delivered rate (AIMD beta).
BACKOFF_FACTOR = 0.85
# Hold-off after an overuse cut before increasing again.
HOLD_SECONDS = 0.25
# Probability per burst-loss step that the trendline misreads the
# burst's arrival gaps as overuse (observed in packet traces: bursty
# paths occasionally take a delay-based cut with no standing queue).
BURST_OVERUSE_PROBABILITY = 0.18
# Loss level that counts as a burst for the misfire draw.
BURST_LOSS_FLOOR = 0.15
# One padding probe burst's measurable payload: the packet sender
# fires 8 x 800 B back-to-back every 2 s (core.sender) and the GCC
# estimator rates the burst over ``run[1:]`` — seven packets.
PROBE_RUN_BITS = 7 * 800 * 8
# Arrival-time jitter spread across a probe burst.  The burst leaves
# back-to-back but arrives smeared by per-packet jitter, so the
# measured rate is run_bits / (jitter_span + serialization) — a padding
# burst's estimate saturates around ~5 Mbps however fast the link is,
# which is exactly what the packet traces show (a ~14 Mbps driving
# path probes at ~4.9 Mbps at t = 2.1 s); the larger frame bursts of
# the fast-pacing regime amortize the jitter and measure capacity
# nearly exactly.
PROBE_JITTER_SPAN = 0.006
# AIMD near-convergence window around the latched capacity estimate.
NEAR_CONVERGENCE_WINDOW = 0.25
# Loss-based branch report interval and thresholds (loss_based.py).
LOSS_REPORT_INTERVAL = 0.1
LOSS_CUT_THRESHOLD = 0.10
LOSS_PROBE_THRESHOLD = 0.02
# Expected packets a Gilbert-Elliott burst destroys (dwell * loss).
BURST_EXPECTED_LOSSES = 2.0
# RTT smoothing gain (classic SRTT).
RTT_SMOOTHING = 0.125
# Delivered-rate EWMA time constant (the 1 s acked-bytes window).
DELIVERED_WINDOW = 1.0

_MTU_BITS = 1200 * 8


class SteadyStateGcc:
    """Per-path flow-level congestion controller."""

    __slots__ = (
        "rate",
        "loss_rate",
        "srtt",
        "frozen",
        "delivered",
        "offered_avg",
        "_min_rate",
        "_max_rate",
        "_hold_until",
        "_capacity_estimate",
        "_loss_report_accum",
    )

    def __init__(self, config: GccConfig, base_rtt: float) -> None:
        self.rate = float(config.initial_rate)
        self.loss_rate = float(config.initial_rate)
        self.srtt = max(base_rtt, 1e-3)
        # While True the controller neither grows nor cuts (feedback
        # blackout: the sender flies blind on a stale estimate).
        self.frozen = False
        self.delivered = 0.0
        self.offered_avg = 0.0
        self._min_rate = float(config.min_rate)
        self._max_rate = float(config.max_rate)
        self._hold_until = 0.0
        self._capacity_estimate: Optional[float] = None
        self._loss_report_accum = 0.0

    # drift: pair(flow-controller) ref
    def target(self) -> float:
        """The per-path sending rate ``S_i`` (bps)."""
        rate = self.rate
        if self.loss_rate < rate:
            rate = self.loss_rate
        if rate < self._min_rate:
            return self._min_rate
        return rate

    def observe_rtt(self, rtt_sample: float) -> None:
        self.srtt += RTT_SMOOTHING * (rtt_sample - self.srtt)

    def observe_delivered(self, rate_bps: float, dt: float) -> None:
        """Fold one step's delivered rate into the 1 s window estimate.

        The first sample seeds the window directly: the packet core's
        incoming-rate estimator reports the actual arrival rate from
        its first window, never a zero-biased warm-up, and a cold EWMA
        here would let the ``1.5 x delivered`` saturation cap choke
        the ramp at the first frame.
        """
        if self.delivered <= 0.0:
            self.delivered = rate_bps
            return
        alpha = 1.0 - math.exp(-dt / DELIVERED_WINDOW)
        self.delivered += alpha * (rate_bps - self.delivered)

    def observe_offered(self, rate_bps: float, dt: float) -> None:
        """Fold one step's offered (sent) rate into its 1 s window.

        The packet core's ``path_saturated`` check compares the target
        against a trailing window of *acked sends*, which lags a probe
        jump by up to a second — during that transient the path reads
        as unsaturated, so neither the 1.5x-delivered cap nor the
        multiplicative ramp applies and the jumped rate simply holds.
        Using the instantaneous offered rate here would re-engage the
        cap one frame after every jump and strangle it.
        """
        if self.offered_avg <= 0.0:
            self.offered_avg = rate_bps
            return
        alpha = 1.0 - math.exp(-dt / DELIVERED_WINDOW)
        self.offered_avg += alpha * (rate_bps - self.offered_avg)

    # drift: pair(flow-controller) ref
    def advance(
        self,
        now: float,
        dt: float,
        capacity: float,
        queue_delay: float,
        probe_run_bits: float,
        peak_loss: float,
        base_loss: float,
        offered_bps: float,
        delivered_bps: float,
        rtt_sample: float,
        win_alpha: float,
        rng: random.Random,
    ) -> None:
        """One-call step: fold the frame's samples, then update.

        Fuses :meth:`observe_rtt`, :meth:`observe_offered`,
        :meth:`observe_delivered` and :meth:`update` so the session's
        hot loop pays one method call per path per frame instead of
        four.  ``win_alpha`` is the precomputed 1 s-window EWMA gain
        ``1 - exp(-dt / DELIVERED_WINDOW)`` (``dt`` is constant over a
        call, so the caller computes it once).  In outage
        (``capacity <= 0``) the samples are folded but the rate logic
        does not run — the watchdog owns the rate then.
        """
        self.srtt += RTT_SMOOTHING * (rtt_sample - self.srtt)
        if self.offered_avg <= 0.0:
            self.offered_avg = offered_bps
        else:
            self.offered_avg += win_alpha * (offered_bps - self.offered_avg)
        if self.delivered <= 0.0:
            self.delivered = delivered_bps
        else:
            self.delivered += win_alpha * (delivered_bps - self.delivered)
        if capacity > 0.0:
            self.update(
                now,
                dt,
                capacity,
                queue_delay,
                probe_run_bits,
                peak_loss,
                base_loss,
                offered_bps,
                rng,
            )

    def decay(self, dt: float, factor: float, interval: float) -> None:
        """Watchdog decay while the path is silent or in outage."""
        scaled = factor ** (dt / interval)
        self.rate = max(self.rate * scaled, self._min_rate)
        self.loss_rate = max(self.loss_rate * scaled, self._min_rate)

    # drift: pair(flow-controller) ref
    def update(
        self,
        now: float,
        dt: float,
        capacity: float,
        queue_delay: float,
        probe_run_bits: float,
        peak_loss: float,
        base_loss: float,
        offered: float,
        rng: random.Random,
    ) -> float:
        """Advance one frame interval; returns the new target rate."""
        if self.frozen:
            return self.target()
        rate = self.rate
        delivered = self.delivered
        burst = peak_loss >= BURST_LOSS_FLOOR

        overuse = queue_delay > OVERUSE_QUEUE_DELAY or (
            burst and rng.random() < BURST_OVERUSE_PROBABILITY
        )
        if overuse:
            base = delivered if delivered > 0.0 else rate
            cut = BACKOFF_FACTOR * base
            if cut < rate:
                rate = cut
            self._capacity_estimate = delivered if delivered > 0.0 else rate
            self._hold_until = now + HOLD_SECONDS
        elif now >= self._hold_until:
            saturated = self.offered_avg >= 0.7 * rate
            estimate = self._capacity_estimate
            near = (
                estimate is not None
                and (1.0 - NEAR_CONVERGENCE_WINDOW) * estimate
                <= delivered
                <= (1.0 + NEAR_CONVERGENCE_WINDOW) * estimate
            )
            if near:
                # Additive: about one MTU per response time.
                rate += 0.5 * _MTU_BITS / max(self.srtt + 0.1, 1e-3) * dt
            elif saturated:
                rate *= GROWTH_PER_SECOND**dt
            if saturated and delivered > 0.0:
                cap_rate = 1.5 * delivered + 10_000.0
                if rate > cap_rate:
                    rate = cap_rate
            if probe_run_bits > 0.0 and capacity > 0.0:
                # PROBE_BWE: the burst's arrival rate, smeared by
                # per-packet jitter on top of serialization time.
                estimate_bps = probe_run_bits / (
                    PROBE_JITTER_SPAN + probe_run_bits / capacity
                )
                if estimate_bps > 1.5 * rate:
                    rate = min(0.85 * estimate_bps, 4.0 * rate)
                    if self.loss_rate < rate:
                        self.loss_rate = rate

        # Loss-based branch, at RTCP report cadence.
        self._loss_report_accum += dt
        while self._loss_report_accum >= LOSS_REPORT_INTERVAL:
            self._loss_report_accum -= LOSS_REPORT_INTERVAL
            fraction = base_loss
            if burst and base_loss <= LOSS_CUT_THRESHOLD:
                report_packets = max(
                    offered * LOSS_REPORT_INTERVAL / _MTU_BITS, 1.0
                )
                fraction = min(
                    peak_loss, BURST_EXPECTED_LOSSES / report_packets
                )
            if fraction > LOSS_CUT_THRESHOLD:
                self.loss_rate *= 1.0 - 0.5 * fraction
            elif fraction < LOSS_PROBE_THRESHOLD:
                self.loss_rate *= 1.05
        cap_loss = 2.0 * rate
        if self.loss_rate > cap_loss:
            self.loss_rate = cap_loss
        elif self.loss_rate < self._min_rate:
            self.loss_rate = self._min_rate

        if rate < self._min_rate:
            rate = self._min_rate
        elif rate > self._max_rate:
            rate = self._max_rate
        self.rate = rate
        return self.target()
