"""Flow-level session driver: one call, one frame-interval loop.

:func:`run_flow_call` is the flow-fidelity twin of
:func:`repro.core.api.run_call`: same :class:`CallConfig`, same
:class:`PathConfig` list, same fault-plan and churn inputs, same
:class:`CallResult` out — it populates a real
:class:`MetricsCollector` and hands it to the same ``summarize``, so
``analysis/export.result_to_dict`` produces an identical payload
shape with zero export-layer duplication.

Instead of discrete packet events the call advances one frame
interval (``1 / frame_rate``) at a time.  Each step: apply churn and
fault windows, update per-path watchdog state, approximate the
scheduler's split as per-frame byte allocations, size FEC from the
same protection policies, push bytes through the fluid queues, draw
the frame's loss outcome, and decide render/drop plus the decode
chain (a lost frame blocks delta frames until a requested keyframe
arrives).  The rate controllers are
:class:`repro.flow.rate_control.SteadyStateGcc` instances — see that
module and DESIGN.md for what is and is not carried over from the
packet-level GCC.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import CallConfig, FecMode, SystemKind
from repro.core.session import CallResult
from repro.faults.plan import ChurnAction, FaultKind, FaultPlan
from repro.flow.frames import (
    _BETA_DECAY,
    _MAX_PROTECTED_LOSS,
    _MAX_PROTECTION,
    _MIN_LOSS_FOR_FEC,
    _ROUND_UP_THRESHOLD,
    MAX_RTX_ROUNDS,
    PathFec,
    binomial_draw,
)
from repro.flow.link import FlowLink
from repro.flow.rate_control import (
    _MTU_BITS,
    BACKOFF_FACTOR,
    BURST_EXPECTED_LOSSES,
    BURST_LOSS_FLOOR,
    BURST_OVERUSE_PROBABILITY,
    DELIVERED_WINDOW,
    GROWTH_PER_SECOND,
    HOLD_SECONDS,
    LOSS_CUT_THRESHOLD,
    LOSS_PROBE_THRESHOLD,
    LOSS_REPORT_INTERVAL,
    NEAR_CONVERGENCE_WINDOW,
    OVERUSE_QUEUE_DELAY,
    PROBE_JITTER_SPAN,
    PROBE_RUN_BITS,
    RTT_SMOOTHING,
    SteadyStateGcc,
)
from repro.metrics.collector import (
    MetricsCollector,
    PathSendRecord,
    RenderedFrame,
)
from repro.metrics.qoe import summarize
from repro.net.path import PathConfig
from repro.rtp.packets import DEFAULT_MTU_PAYLOAD
from repro.simulation.random import RandomStreams
from repro.traces.scenarios import (
    make_loss_model,
    make_scenario_trace,
    propagation_delay,
    scenario_networks,
)

# Drain grace bounds, mirrored from the packet session.
_DRAIN_GRACE_MIN = 0.2
_DRAIN_GRACE_MAX = 1.0
# Minimum spacing between keyframe requests per stream (receiver PLI
# throttling in the packet core).
_KEYFRAME_REQUEST_INTERVAL = 1.0
# Delta frames repay at most this fraction of a base frame per frame.
_KEYFRAME_DEBT_REPAY = 0.2
# Smallest encoded frame the encoder will emit.
_MIN_FRAME_BYTES = 200
# Loss-estimate smoothing (matches the GCC facade's RTCP smoothing).
_LOSS_SMOOTHING = 0.3
# Peak-hold loss decay constant (repro.cc.gcc._LOSS_PEAK_TAU).
_LOSS_PEAK_TAU = 3.0
# WebRTC-CM migration behaviour (scheduling/singlepath.py).
_CM_FAILURE_TIMEOUT = 2.0
_CM_RECONNECT_DELAY = 1.5
# Smoothing for the FEC-overhead share the encoder budget discounts.
_PROTECTION_SMOOTHING = 0.2
# Padding probe-burst cadence (core.sender._CAPACITY_PROBE_INTERVAL).
# The t=0 tick never measures anything (no media in flight yet), so
# the first effective probe lands at t=2 s — matching the packet
# traces, where every system's first rate jump is at ~2.1 s.
_PROBE_INTERVAL = 2.0
# Probe suppression gates, mirrored from core.sender: a path with
# more than 8% smoothed loss or a standing queue is never probed.
_PROBE_MAX_LOSS = 0.08
_PROBE_MAX_QUEUE_DELAY = 0.08
# Media frames double as probe bursts once the pacer releases packets
# closer together than the probe send-gap threshold: gap = MTU_bits /
# (pacing_factor * rate) <= _PROBE_SEND_GAP, i.e. rate >= ~4.27 Mbps
# (cc.pacing pacing_factor 1.5, cc.gcc._PROBE_SEND_GAP 1.5 ms).
_FRAME_PROBE_MIN_RATE = DEFAULT_MTU_PAYLOAD * 8 / (1.5 * 0.0015)
_FRAME_PROBE_MIN_PACKETS = 5
# A Gilbert-Elliott burst kills packets *consecutively*, which defeats
# both FEC (parity cannot cover a run) and NACK recovery (the
# retransmissions die in the same burst).  A burst-hit frame is lost
# outright with probability proportional to the slice of the frame
# the burst covered; calibrated against the packet goldens, where
# nearly every 4 s driving call shows one such hard loss.
_BURST_KILL_FACTOR = 2.75
_BURST_KILL_MAX = 0.9
# Hard frame loss to keyframe-request latency: NACK retries, the
# frame-buffer abandon deadline and the 0.25 s desync watch add up to
# ~0.7 s in the packet receiver before the PLI goes out (measured:
# loss at ~1.57 s -> request at 2.25 s -> keyframe captured 2.30 s).
_KEYFRAME_RECOVERY_DELAY = 0.68
# A path death only costs in-flight media if the path carried bytes
# within the last few frame intervals.
_DEATH_MEDIA_WINDOW = 0.1


class _PathState:
    """Everything the flow loop tracks for one path."""

    __slots__ = (
        "link",
        "ctrl",
        "fec",
        "record",
        "loss_ewma",
        "loss_peak",
        "feedback_dark",
        "silence",
        "degraded",
        "disabled",
        "draining",
        "drain_deadline",
        "last_media_time",
        # Per-step scratch maintained by the run loop: the step's
        # effective capacity and target rate, the media this frame
        # placed on the path, whether the path sent this step, the
        # scheduler weight, and the send outcome the finish stage
        # consumes (delivered / completion / burst-killed / failed).
        "cap",
        "tgt",
        "step_bytes",
        "step_packets",
        "step_key",
        "stepped",
        "weight",
        "out_delivered",
        "out_completion",
        "out_killed",
        "out_failed",
    )

    def __init__(self, link: FlowLink, ctrl: SteadyStateGcc, fec: PathFec) -> None:
        self.link = link
        self.ctrl = ctrl
        self.fec = fec
        self.record = PathSendRecord()
        self.loss_ewma = 0.0
        self.loss_peak = 0.0
        self.feedback_dark = False
        self.silence = 0.0
        self.degraded = False
        self.disabled = False
        self.draining = False
        self.drain_deadline = 0.0
        self.last_media_time = -math.inf
        self.cap = 0.0
        self.tgt = 0.0
        self.step_bytes = 0
        self.step_packets = 0
        self.step_key = False
        self.stepped = False
        self.weight = 0.0
        self.out_delivered = False
        self.out_completion = 0.0
        self.out_killed = False
        self.out_failed = False


class _StreamState:
    """Per-stream encoder and decode-chain state."""

    __slots__ = (
        "frame_id",
        "frames_since_key",
        "debt",
        "blocked",
        "pending_keyframe",
        "request_at",
        "last_request",
        "last_render",
    )

    def __init__(self) -> None:
        self.frame_id = 0
        self.frames_since_key = 0
        self.debt = 0.0
        self.blocked = False
        self.pending_keyframe = False
        # When the receiver's loss-detection chain (NACK retries, the
        # frame-buffer abandon deadline, the desync watch) will issue
        # the keyframe request for the current outage.
        self.request_at = math.inf
        self.last_request = -math.inf
        self.last_render = -math.inf


class FlowCall:
    """One flow-fidelity conference call."""

    __slots__ = (
        "config",
        "metrics",
        "_paths",
        "_streams",
        "_stream_states",
        "_rng",
        "_fault_plan",
        "_churn_scenario",
        "_faults_recorded",
        "_churn_applied",
        "_pinned_path",
        "_cm_reconnect_until",
        "_next_probe",
        "_reroute_probe",
        "_protection",
        "_received_window",
        "_received_total",
        "_window_bytes",
        "_fec_received",
        "_fec_recovered",
        "_frame_drops",
        "_step_dt",
        "_total_steps",
        "_force_reference",
    )

    def __init__(
        self,
        config: CallConfig,
        path_configs: Sequence[PathConfig],
        fault_plan: Optional[FaultPlan] = None,
        churn_scenario: Optional[str] = None,
        force_reference: bool = False,
    ) -> None:
        if not path_configs:
            raise ValueError("a call needs at least one path")
        self.config = config
        self.metrics = MetricsCollector()
        self._streams = RandomStreams(config.seed)
        self._rng = self._streams.stream("flow-session")
        self._step_dt = 1.0 / config.frame_rate
        self._total_steps = int(round(config.duration * config.frame_rate))
        self._paths: Dict[int, _PathState] = {}
        for path_config in path_configs:
            self._add_path_state(path_config)
        self._stream_states = [_StreamState() for _ in range(config.num_streams)]
        self._fault_plan = fault_plan
        self._churn_scenario = churn_scenario
        self._faults_recorded: Set[int] = set()
        self._churn_applied = 0
        self._pinned_path = config.single_path_id
        if self._pinned_path not in self._paths:
            self._pinned_path = min(self._paths)
        self._cm_reconnect_until = -math.inf
        self._next_probe = _PROBE_INTERVAL
        self._reroute_probe = False
        self._protection = 0.0
        self._received_window: List[Tuple[float, int]] = []
        self._received_total = 0
        self._window_bytes = 0
        self._fec_received = 0
        self._fec_recovered = 0
        self._frame_drops = 0
        # Drift seam: route the dominant single-stream case through the
        # factored reference methods (_encode_frame / _allocate /
        # _finish_frame / _drop_frame) instead of their inlined copies.
        # The hot loop's RNG draw order is identical either way, so the
        # two modes must stay byte-identical — tests/test_flow_drift.py
        # pins that.
        self._force_reference = force_reference

    # -- path lifecycle ----------------------------------------------------

    def _add_path_state(self, path_config: PathConfig) -> None:
        link = FlowLink(path_config)
        link.precompute(self._step_dt, self._total_steps)
        ctrl = SteadyStateGcc(
            self.config.gcc, 2.0 * path_config.propagation_delay
        )
        self._paths[path_config.path_id] = _PathState(
            link, ctrl, PathFec(self.config.fec_mode)
        )

    def _birth_path(self, now: float, path_id: int, network: str) -> None:
        if self._churn_scenario is None:
            raise ValueError(
                "cannot synthesize a mid-call path without a trace "
                "scenario (pass churn_scenario to the call)"
            )
        networks = scenario_networks(self._churn_scenario)
        if network not in networks:
            network = sorted(networks)[path_id % len(networks)]
        streams = self._streams.fork(f"churn-path-{path_id}-{network}")
        config = PathConfig(
            path_id=path_id,
            trace=make_scenario_trace(
                self._churn_scenario, network, self.config.duration, streams
            ),
            propagation_delay=propagation_delay(self._churn_scenario, network),
            loss_model=make_loss_model(self._churn_scenario, network),
            name=network,
        )
        self._add_path_state(config)
        self.metrics.record_churn_event(now, path_id, "birth")

    def _live_path_count(self) -> int:
        return sum(1 for s in self._paths.values() if not s.draining)

    def _remove_path(self, now: float, path_id: int) -> None:
        state = self._paths.pop(path_id, None)
        if state is None:
            return
        # Keep the send record: exported payloads account every path
        # that ever carried bytes, dead or alive.
        self.metrics.path_sends.setdefault(path_id, state.record)
        self.metrics.record_churn_event(now, path_id, "removed")
        # The packet sender drains the removed path's pacer queue onto
        # the survivors back-to-back — an implicit probe burst (packet
        # traces show the surviving path's rate jump right after every
        # migration, well ahead of the periodic probe tick).
        self._reroute_probe = True

    def _apply_churn(self, now: float) -> None:
        if self._fault_plan is None:
            return
        churn = self._fault_plan.churn
        while self._churn_applied < len(churn):
            event = churn[self._churn_applied]
            if event.time > now:
                return
            self._churn_applied += 1
            if event.action is ChurnAction.BIRTH:
                self._birth_path(now, event.path_id, event.network or "")
            elif event.action is ChurnAction.DRAIN:
                state = self._paths.get(event.path_id)
                if state is None or self._live_path_count() <= 1:
                    continue
                state.draining = True
                grace = min(
                    max(2.0 * state.ctrl.srtt, _DRAIN_GRACE_MIN),
                    _DRAIN_GRACE_MAX,
                )
                state.drain_deadline = now + grace
                self.metrics.record_churn_event(now, event.path_id, "drain")
            elif event.action is ChurnAction.DEATH:
                state = self._paths.get(event.path_id)
                if state is None:
                    continue
                if self._live_path_count() <= 1 and not state.draining:
                    continue
                self.metrics.record_churn_event(now, event.path_id, "death")
                self._on_path_death(now, state)
                self._remove_path(now, event.path_id)

    def _on_path_death(self, now: float, state: _PathState) -> None:
        """An abrupt death strands the path's in-flight media.

        Unlike a drain (which stops allocating before removal), a death
        takes queued and in-transit packets with it; the packet traces
        show a ~0.7 s freeze at every death of a media-carrying path,
        multipath or not, because the decode chain re-anchors through
        the keyframe-request pipeline.
        """
        if now - state.last_media_time > _DEATH_MEDIA_WINDOW:
            return
        for stream in self._stream_states:
            if not stream.blocked or stream.request_at == math.inf:
                stream.request_at = now + _KEYFRAME_RECOVERY_DELAY
            stream.blocked = True

    def _finish_drains(self, now: float) -> None:
        expired = [
            pid
            for pid, state in self._paths.items()
            if state.draining and now >= state.drain_deadline
        ]
        for pid in expired:
            if len(self._paths) > 1:
                self._remove_path(now, pid)

    # -- faults ------------------------------------------------------------

    def _apply_faults(self, now: float) -> None:
        for state in self._paths.values():
            link = state.link
            link.capacity_cap = None
            link.loss_override = None
            link.extra_delay = 0.0
            link.queue_cap_override = None
            state.feedback_dark = False
        if self._fault_plan is None:
            return
        for index, event in enumerate(self._fault_plan.events):
            if event.start > now:
                break
            if now >= event.end:
                continue
            if index not in self._faults_recorded:
                self._faults_recorded.add(index)
                self.metrics.record_fault(
                    event.kind.value, event.path_id, event.start, event.end
                )
            state = self._paths.get(event.path_id)
            if state is None:
                continue
            link = state.link
            kind = event.kind
            if kind is FaultKind.BLACKOUT:
                link.capacity_cap = 0.0
            elif kind is FaultKind.CAPACITY_CAP:
                link.capacity_cap = event.magnitude
            elif kind is FaultKind.LOSS_STORM:
                link.loss_override = event.magnitude
            elif kind is FaultKind.DELAY_SPIKE:
                link.extra_delay += event.magnitude
            elif kind is FaultKind.QUEUE_FLAP:
                link.queue_cap_override = int(event.magnitude)
            elif kind is FaultKind.FEEDBACK_BLACKOUT:
                state.feedback_dark = True
            # FEEDBACK_LOSS < 1.0 has no flow-level effect: partial
            # RTCP loss only thins the feedback the packet core
            # smooths over anyway (documented divergence, DESIGN.md).

    def _update_watchdog(
        self, now: float, dt: float, state: _PathState, cap: float
    ) -> None:
        watchdog = self.config.watchdog
        pid = state.link.path_id
        dark = state.feedback_dark or cap <= 0.0
        state.ctrl.frozen = state.feedback_dark
        if dark:
            state.silence += dt
            if state.silence > watchdog.degrade_timeout:
                if not state.degraded:
                    state.degraded = True
                    self.metrics.record_path_event(now, pid, "degraded")
                state.ctrl.decay(
                    dt, watchdog.rate_decay_factor, watchdog.rate_decay_interval
                )
            if state.silence > watchdog.silence_timeout and not state.disabled:
                state.disabled = True
                self.metrics.record_path_event(now, pid, "disabled")
        elif state.silence > 0.0:
            state.silence = 0.0
            if state.degraded:
                state.degraded = False
                self.metrics.record_path_event(now, pid, "restored")
            if state.disabled:
                state.disabled = False
                self.metrics.record_path_event(now, pid, "enabled")

    # -- scheduling --------------------------------------------------------

    def _schedulable(self) -> List[int]:
        usable = [
            pid
            for pid, state in self._paths.items()
            if not state.draining and not state.disabled
        ]
        if not usable:
            usable = [
                pid for pid, state in self._paths.items() if not state.draining
            ]
        if not usable:
            usable = list(self._paths)
        return sorted(usable)

    def _cm_weights(self, now: float, usable: List[int]) -> Dict[int, float]:
        states = self._paths
        if now < self._cm_reconnect_until:
            return {}
        active = states.get(self._pinned_path)
        failed = (
            active is None
            or self._pinned_path not in usable
            or active.silence > _CM_FAILURE_TIMEOUT
        )
        if failed:
            candidates = [pid for pid in usable if pid != self._pinned_path]
            if candidates:
                self._pinned_path = min(
                    candidates, key=lambda pid: states[pid].silence
                )
                self._cm_reconnect_until = now + _CM_RECONNECT_DELAY
                return {}
            if active is None:
                self._pinned_path = min(states)
        return {self._pinned_path: 1.0}

    # -- main loop ---------------------------------------------------------

    # drift: pair(flow-single-stream) impl
    # drift: pair(flow-batch) ref
    def run(self) -> CallResult:
        """Advance the call one frame interval at a time.

        This is the flow backend's hot loop: everything the packet core
        amortizes over thousands of events happens here ~30 times per
        simulated second, so the whole per-step pipeline is inlined —
        the scheduler split writes per-state weight slots instead of
        building dicts, the link's loss draw and fluid queue
        (:meth:`FlowLink.step_loss` / :meth:`FlowLink.push`), the
        controller step (:meth:`SteadyStateGcc.advance` +
        :meth:`~SteadyStateGcc.update`) and, for the dominant
        single-stream case, the encoder and the frame-finish stage are
        all textually expanded in the loop body.  The factored methods
        remain the reference implementations (multi-stream calls still
        use them) and every inline copy is marked "keep in sync".
        Per-step capacity comes from the links' precomputed tables
        (:meth:`FlowLink.precompute`) and churn / fault / watchdog
        handling is gated behind cheap fast-path checks.  The semantics
        — including the RNG draw order, which the cross-validation
        calibration depends on — are exactly the pre-optimization
        per-step pipeline: churn, faults, watchdog, split, encode,
        per-path queue/loss/control, render/drop.
        """
        config = self.config
        metrics = self.metrics
        rng = self._rng
        rng_random = rng.random
        paths = self._paths
        stream_states = self._stream_states
        system = config.system
        dt = self._step_dt
        steps = self._total_steps
        sample_every = max(int(round(config.sample_interval / dt)), 1)
        mtu = DEFAULT_MTU_PAYLOAD
        enc = config.encoder_template
        rd_model = enc.rd_model
        rd_anchor = rd_model.anchor_bitrate
        rd_qp_anchor = rd_model.qp_anchor
        rd_qp_slope = rd_model.qp_slope
        rd_qp_min = rd_model.qp_min
        rd_qp_max = rd_model.qp_max
        enc_min = enc.min_bitrate
        enc_cap = min(enc.max_bitrate, config.max_rate_per_stream)
        gop_length = enc.gop_length
        key_mult = enc.keyframe_size_multiplier
        size_jitter = enc.size_jitter
        # rng.uniform(-j, j), precomputed: CPython's uniform(a, b) is
        # a + (b - a) * random(), reproduced term for term.
        jit_lo = -size_jitter
        jit_span = size_jitter - jit_lo
        frame_rate = config.frame_rate
        encoder_utilization = config.encoder_utilization
        num_streams = config.num_streams
        single_stream = num_streams == 1 and not self._force_reference
        stream0 = stream_states[0]
        max_latency = config.receiver.max_playout_latency
        watchdog = config.watchdog
        decay_factor = watchdog.rate_decay_factor
        decay_interval = watchdog.rate_decay_interval
        qoe_feedback = config.qoe_feedback_enabled
        peak_decay = math.exp(-dt / _LOSS_PEAK_TAU)
        win_alpha = 1.0 - math.exp(-dt / DELIVERED_WINDOW)
        fec_mode = config.fec_mode
        fec_none = fec_mode is FecMode.NONE
        fec_webrtc = fec_mode is FecMode.WEBRTC_TABLE
        is_converge = system is SystemKind.CONVERGE
        is_webrtc = system is SystemKind.WEBRTC
        is_srtt = system is SystemKind.SRTT
        is_cm = system is SystemKind.WEBRTC_CM
        is_mrtp = system is SystemKind.MRTP
        probe_run_bits_f = float(PROBE_RUN_BITS)
        log = math.log
        exp = math.exp
        expm1 = math.expm1
        inf = math.inf
        neg_inf = -math.inf
        # Controller constants, precomputed for the inlined update body
        # (reference implementation: SteadyStateGcc.update).
        growth_dt = GROWTH_PER_SECOND**dt
        near_lo = 1.0 - NEAR_CONVERGENCE_WINDOW
        near_hi = 1.0 + NEAR_CONVERGENCE_WINDOW
        half_mtu_bits = 0.5 * _MTU_BITS
        gcc_min = float(config.gcc.min_rate)
        gcc_max = float(config.gcc.max_rate)
        record_encoded = metrics.record_encoded_frame
        # Direct series appends for the single-stream fast path: `now`
        # is monotone by construction, so TimeSeries.append's ordering
        # check is skipped (reference: MetricsCollector.record_ifd /
        # record_fcd / record_frame_drop; keep in sync).
        ifd_times = metrics.ifd_series.times
        ifd_values = metrics.ifd_series.values
        fcd_times = metrics.fcd_series.times
        fcd_values = metrics.fcd_series.values
        drops_append = metrics.frame_drops.append
        rendered_append = metrics.rendered.append
        have_faults = (
            self._fault_plan is not None and bool(self._fault_plan.events)
        )
        have_churn = (
            self._fault_plan is not None and bool(self._fault_plan.churn)
        )
        path_items = sorted(paths.items())
        # Parallel row list for the first pass: (state, step_caps)
        # saves two attribute loads per path per step.  Rebuilt with
        # path_items whenever churn edits the path set.
        pass_rows = [(s, s.link.step_caps) for _p, s in path_items]
        send_items: List[Tuple[int, _PathState]]
        # Reusable one-element send lists for the single-path systems;
        # the WebRTC pin is resolved once when churn can't move it.
        webrtc_items: List[Tuple[int, _PathState]] = []
        if is_webrtc and not have_churn:
            pinned = self._pinned_path
            if pinned not in paths:
                pinned = self._pinned_path = min(paths)
            webrtc_items = [(pinned, paths[pinned])]
        elif is_webrtc:
            webrtc_items = [path_items[0]]
        srtt_items: List[Tuple[int, _PathState]] = (
            [path_items[0]] if is_srtt else []
        )
        frames: List[Tuple[int, int, int, bool, Dict[int, int]]] = []
        outcomes: Dict[int, Tuple[bool, float, int, float, bool]] = {}
        qp = 0.0
        sample_tick = 0
        fec_received_total = self._fec_received
        fec_recovered_total = self._fec_recovered
        next_probe = self._next_probe
        protection = self._protection

        for step in range(steps):
            now = step * dt
            if have_churn:
                self._apply_churn(now)
                self._finish_drains(now)
                path_items = sorted(paths.items())
                pass_rows = [(s, s.link.step_caps) for _p, s in path_items]
            if have_faults:
                self._apply_faults(now)

            # Capacity, watchdog and target rate for every path in one
            # pass.  The watchdog body only matters while a path is (or
            # was just) dark, so a healthy path skips the call.
            flagged = False
            for state, caps in pass_rows:
                if have_faults:
                    cap = state.link.capacity(now)
                else:
                    cap = caps[step]
                state.cap = cap
                if state.silence != 0.0 or cap <= 0.0 or state.feedback_dark:
                    self._update_watchdog(now, dt, state, cap)
                # SteadyStateGcc.target, inlined (keep in sync).
                # drift: pair(flow-controller) impl
                ctrl = state.ctrl
                tgt = ctrl.rate
                lr = ctrl.loss_rate
                if lr < tgt:
                    tgt = lr
                if tgt < gcc_min:
                    tgt = gcc_min
                state.tgt = tgt
                # drift: end
                if state.draining or state.disabled:
                    flagged = True

            if flagged:
                usable_items = [
                    (pid, paths[pid]) for pid in self._schedulable()
                ]
            else:
                usable_items = path_items

            # Scheduler split (the former _split_weights, specialized):
            # weights live in per-state slots, the common systems reuse
            # cached path lists, and each branch also resets the
            # per-step scratch slots and accumulates the target rate so
            # the send set is walked exactly once.
            if is_webrtc:
                if have_churn:
                    pinned = self._pinned_path
                    if pinned not in paths:
                        pinned = self._pinned_path = min(paths)
                    pstate = paths[pinned]
                    webrtc_items[0] = (pinned, pstate)
                else:
                    pstate = webrtc_items[0][1]
                pstate.weight = 1.0
                send_items = webrtc_items
                total_weight = 1.0
                target_rate = pstate.tgt
                pstate.step_bytes = 0
                pstate.step_packets = 0
                pstate.step_key = False
                pstate.stepped = True
                pstate.out_failed = False
            elif is_srtt:
                best_item = usable_items[0]
                for item in usable_items:
                    if item[1].ctrl.srtt < best_item[1].ctrl.srtt:
                        best_item = item
                bstate = best_item[1]
                bstate.weight = 1.0
                srtt_items[0] = best_item
                send_items = srtt_items
                total_weight = 1.0
                target_rate = bstate.tgt
                bstate.step_bytes = 0
                bstate.step_packets = 0
                bstate.step_key = False
                bstate.stepped = True
                bstate.out_failed = False
            elif is_cm:
                cm_weights = self._cm_weights(
                    now, [pid for pid, _ in usable_items]
                )
                send_items = []
                total_weight = 0.0
                target_rate = 0.0
                for pid in sorted(cm_weights):
                    weight = cm_weights[pid]
                    if weight > 0.0:
                        state = paths[pid]
                        state.weight = weight
                        send_items.append((pid, state))
                        total_weight += weight
                        target_rate += state.tgt
                        state.step_bytes = 0
                        state.step_packets = 0
                        state.step_key = False
                        state.stepped = True
                        state.out_failed = False
            elif is_mrtp:
                # MPRTP: loss-discounted even split over *all* paths —
                # it never disables a path however badly it performs.
                # The discount floor (5%) keeps every weight positive.
                every = path_items
                if flagged:
                    every = [
                        item for item in path_items if not item[1].draining
                    ] or path_items
                total_weight = 0.0
                target_rate = 0.0
                for pid, state in every:
                    le = state.loss_ewma
                    weight = 1.0 - (le if le < 0.95 else 0.95)
                    state.weight = weight
                    total_weight += weight
                    target_rate += state.tgt
                    state.step_bytes = 0
                    state.step_packets = 0
                    state.step_key = False
                    state.stepped = True
                    state.out_failed = False
                send_items = every
            else:
                # CONVERGE / MTPUT: Eq. 1 — split by per-path rates.
                # target() floors at min_rate, so weights are positive
                # whenever the configured floor is; the rare filter
                # below keeps a zero-floor config byte-compatible.
                total_weight = 0.0
                target_rate = 0.0
                zero_weight = False
                for pid, state in usable_items:
                    weight = state.tgt
                    state.weight = weight
                    total_weight += weight
                    target_rate += weight
                    if weight <= 0.0:
                        zero_weight = True
                    state.step_bytes = 0
                    state.step_packets = 0
                    state.step_key = False
                    state.stepped = True
                    state.out_failed = False
                send_items = usable_items
                if zero_weight:
                    send_items = []
                    target_rate = 0.0
                    for item in usable_items:
                        state = item[1]
                        if state.weight > 0.0:
                            send_items.append(item)
                            target_rate += state.tgt
                        else:
                            state.stepped = False

            send_n = len(send_items)

            if sample_tick == 0:
                metrics.record_target_rate(now, target_rate)
                for pid, state in path_items:
                    metrics.record_path_rate(now, pid, state.tgt)
                self._sample_receive_rate(now)
            sample_tick += 1
            if sample_tick == sample_every:
                sample_tick = 0

            if single_stream:
                if stream0.blocked and now >= stream0.request_at:
                    self._issue_keyframe_requests(now)
            else:
                for stream in stream_states:
                    if stream.blocked and now >= stream.request_at:
                        self._issue_keyframe_requests(now)
                        break

            fid0 = -1
            size0 = 0
            key0 = False
            if send_n and total_weight > 0.0:
                budget = (
                    target_rate
                    * encoder_utilization
                    / (1.0 + protection)
                )
                per_stream = budget / num_streams
                if per_stream < enc_min:
                    per_stream = enc_min
                if per_stream > enc_cap:
                    per_stream = enc_cap
                # rd_model.qp_for_bitrate, inlined (log-linear RD).
                qp = rd_qp_anchor - rd_qp_slope * log(
                    (per_stream if per_stream > 1.0 else 1.0) / rd_anchor
                )
                if qp < rd_qp_min:
                    qp = rd_qp_min
                elif qp > rd_qp_max:
                    qp = rd_qp_max
                if single_stream:
                    # _encode_frame, inlined (keep in sync).
                    is_key = (
                        stream0.frame_id == 0
                        or stream0.frames_since_key >= gop_length
                        or stream0.pending_keyframe
                    )
                    base = per_stream / 8.0 / frame_rate
                    if is_key:
                        size_f = base * key_mult
                        stream0.debt += size_f - base
                        stream0.frames_since_key = 0
                        stream0.pending_keyframe = False
                    else:
                        repay = _KEYFRAME_DEBT_REPAY * base
                        debt = stream0.debt
                        if debt < repay:
                            repay = debt
                        size_f = base - repay
                        stream0.debt = debt - repay
                        stream0.frames_since_key += 1
                    size_f *= 1.0 + (jit_lo + jit_span * rng_random())
                    size = int(size_f)
                    if size < _MIN_FRAME_BYTES:
                        size = _MIN_FRAME_BYTES
                    fid0 = stream0.frame_id
                    # The per-frame encoder ledger (metrics.encoded) is
                    # skipped on this path: nothing downstream of the
                    # flow backend reads it, and the rendered record
                    # below carries size/qp/keyframe directly (see
                    # DESIGN.md, flow-fidelity divergences).
                    size0 = size
                    key0 = is_key
                    if send_n == 1:
                        state = send_items[0][1]
                        state.step_bytes = size
                        state.step_packets = -(-size // mtu)
                        if is_key:
                            state.step_key = True
                    elif send_n == 2 and not (is_key and is_converge):
                        # Two-path proportional split, inlined.
                        s0 = send_items[0][1]
                        s1 = send_items[1][1]
                        share = int(size * s0.weight / total_weight)
                        if share > 0:
                            s0.step_bytes = share
                            s0.step_packets = -(-share // mtu)
                            if is_key:
                                s0.step_key = True
                        rest = size - share
                        if rest > 0:
                            s1.step_bytes = rest
                            s1.step_packets = -(-rest // mtu)
                            if is_key:
                                s1.step_key = True
                    else:
                        allocation = self._allocate(
                            size,
                            is_key,
                            {p: s.weight for p, s in send_items},
                            total_weight,
                            [p for p, _ in send_items],
                        )
                        for pid, path_bytes in allocation.items():
                            if path_bytes <= 0:
                                continue
                            state = paths[pid]
                            state.step_bytes += path_bytes
                            state.step_packets += -(-path_bytes // mtu)
                            if is_key:
                                state.step_key = True
                else:
                    frames = []
                    for ssrc, stream in enumerate(stream_states):
                        size, is_key = self._encode_frame(
                            stream, per_stream, rng
                        )
                        record_encoded(
                            ssrc, stream.frame_id, now, size, qp, is_key
                        )
                        if send_n == 1:
                            allocation = {send_items[0][0]: size}
                        elif send_n == 2 and not (is_key and is_converge):
                            # Two-path proportional split, inlined.
                            pid0, s0 = send_items[0]
                            pid1 = send_items[1][0]
                            share = int(size * s0.weight / total_weight)
                            allocation = {pid0: share, pid1: size - share}
                        else:
                            allocation = self._allocate(
                                size,
                                is_key,
                                {p: s.weight for p, s in send_items},
                                total_weight,
                                [p for p, _ in send_items],
                            )
                        for pid, path_bytes in allocation.items():
                            if path_bytes <= 0:
                                continue
                            state = paths[pid]
                            state.step_bytes += path_bytes
                            state.step_packets += -(-path_bytes // mtu)
                            if is_key:
                                state.step_key = True
                        frames.append(
                            (ssrc, stream.frame_id, size, is_key, allocation)
                        )

            probe_due = now >= next_probe
            if probe_due:
                next_probe += _PROBE_INTERVAL
            if have_churn and self._reroute_probe:
                # _remove_path is the only setter, and only churn
                # removes paths mid-call.
                probe_due = True
                self._reroute_probe = False

            # Push each sending path's aggregate bytes through queue +
            # loss and advance its controller — the former _path_step
            # with FlowLink.step_loss / FlowLink.push and
            # SteadyStateGcc.advance + update textually inlined (those
            # methods stay the reference implementations; keep in
            # sync).  Results land in per-state out_* slots; the
            # multi-stream fallback also mirrors them into the
            # outcomes dict _finish_frame consumes.
            if not single_stream:
                outcomes = {}
            step_media = 0
            step_fec = 0
            for pid, state in send_items:
                link = state.link
                ctrl = state.ctrl
                cap = state.cap
                media_bytes = state.step_bytes
                media_packets = state.step_packets

                # -- FlowLink.step_loss, inlined --
                n_pkts = media_packets if media_packets > 0 else 1
                scheduled = link._scheduled
                burst_loss = link._burst_loss
                if scheduled is not None:
                    frame_loss = scheduled.rate_at(now)
                    peak_loss = frame_loss
                elif burst_loss > 0.0:
                    frame_loss = link._base_loss
                    peak_loss = frame_loss
                    # P(the chain enters the bad state among n packets).
                    p_burst = -expm1(link._log_stay_good * n_pkts)
                    if rng_random() < p_burst:
                        # The burst covers its expected dwell within
                        # the frame.
                        fraction = link._burst_packets / n_pkts
                        if fraction > 1.0:
                            fraction = 1.0
                        frame_loss = frame_loss + (
                            burst_loss - frame_loss
                        ) * fraction
                        peak_loss = burst_loss
                else:
                    frame_loss = link._base_loss
                    peak_loss = frame_loss
                if have_faults:
                    override = link.loss_override
                    if override is not None:
                        if override > frame_loss:
                            frame_loss = override
                        if override > peak_loss:
                            peak_loss = override
                if cap <= 0.0:
                    frame_loss = 1.0
                    peak_loss = 1.0
                loss_ewma = state.loss_ewma
                loss_ewma += _LOSS_SMOOTHING * (frame_loss - loss_ewma)
                state.loss_ewma = loss_ewma
                decayed = state.loss_peak * peak_decay
                loss_peak = decayed if decayed > frame_loss else frame_loss
                state.loss_peak = loss_peak

                # -- PathFec.packets_for, inlined (keep in sync) --
                if media_packets <= 0 or fec_none:
                    fec_packets = 0
                elif fec_webrtc:
                    # webrtc_protection_factor: threshold walk over
                    # repro.fec.tables._PROTECTION_TABLE (keep in
                    # sync), keyframes at twice the factor capped at 1.
                    lr = loss_ewma
                    if lr <= 0.002:
                        pf = 0.0
                    elif lr <= 0.005:
                        pf = 0.30
                    elif lr <= 0.010:
                        pf = 0.40
                    elif lr <= 0.020:
                        pf = 0.43
                    elif lr <= 0.030:
                        pf = 0.45
                    elif lr <= 0.050:
                        pf = 0.48
                    elif lr <= 0.070:
                        pf = 0.50
                    elif lr <= 0.100:
                        pf = 0.55
                    elif lr <= 0.150:
                        pf = 0.60
                    else:
                        pf = 0.65
                    if state.step_key:
                        pf *= 2.0
                        if pf > 1.0:
                            pf = 1.0
                    fec = state.fec
                    exact = pf * media_packets + fec._carry
                    fec_packets = int(exact)
                    carry = exact - fec_packets
                    if carry < 0.0:
                        carry = 0.0
                    elif carry > 1.0:
                        carry = 1.0
                    fec._carry = carry
                    if fec_packets > media_packets:
                        fec_packets = media_packets
                else:
                    # FecMode.CONVERGE: loss-proportional + QoE beta.
                    fec = state.fec
                    if loss_peak < _MIN_LOSS_FOR_FEC:
                        fec._carry = 0.0
                        fec_packets = 0
                    else:
                        elapsed = now - fec._last_update
                        if elapsed > 0.0:
                            fec.beta = 1.0 + (fec.beta - 1.0) * exp(
                                -_BETA_DECAY * elapsed
                            )
                            fec._last_update = now
                        prot = loss_peak
                        if prot > _MAX_PROTECTED_LOSS:
                            prot = _MAX_PROTECTED_LOSS
                        prot *= fec.beta
                        if prot > _MAX_PROTECTION:
                            prot = _MAX_PROTECTION
                        exact = prot * media_packets + fec._carry
                        fec_packets = int(exact)
                        if fec_packets == 0 and exact >= _ROUND_UP_THRESHOLD:
                            fec_packets = 1
                        carry = exact - fec_packets
                        if carry < 0.0:
                            carry = 0.0
                        elif carry > 1.0:
                            carry = 1.0
                        fec._carry = carry
                        if fec_packets > media_packets:
                            fec_packets = media_packets
                fec_bytes = fec_packets * mtu

                # -- FlowLink.push, inlined --
                backlog = link.backlog_bytes - cap * dt / 8.0
                if backlog < 0.0:
                    backlog = 0.0
                backlog += media_bytes + fec_bytes
                if have_faults and link.queue_cap_override is not None:
                    cap_bytes = float(link.queue_cap_override)
                else:
                    cap_bytes = float(link._queue_capacity)
                overflow = backlog - cap_bytes
                if overflow > 0.0:
                    backlog = cap_bytes
                else:
                    overflow = 0.0
                link.backlog_bytes = backlog
                if cap <= 0.0:
                    queue_delay = inf if backlog > 0.0 else 0.0
                else:
                    queue_delay = backlog * 8.0 / cap
                overflow_packets = int(overflow // mtu)

                # -- path_frame_outcome + binomial_draw, inlined (keep
                # in sync; the draw order and skip conditions are the
                # calibration contract) --
                p = frame_loss
                if media_packets <= 0 or p <= 0.0:
                    lost_media = 0
                elif p >= 1.0:
                    lost_media = media_packets
                else:
                    u = rng_random()
                    q = 1.0 - p
                    ratio = p / q
                    prob = q**media_packets
                    cumulative = prob
                    k = 0
                    while cumulative < u and k < media_packets:
                        k += 1
                        prob *= ratio * (media_packets - k + 1) / k
                        cumulative += prob
                    lost_media = k
                lost_media += overflow_packets
                if lost_media > media_packets:
                    lost_media = media_packets
                if fec_packets <= 0 or p <= 0.0:
                    fec_received = fec_packets
                elif p >= 1.0:
                    fec_received = 0
                else:
                    u = rng_random()
                    q = 1.0 - p
                    ratio = p / q
                    prob = q**fec_packets
                    cumulative = prob
                    k = 0
                    while cumulative < u and k < fec_packets:
                        k += 1
                        prob *= ratio * (fec_packets - k + 1) / k
                        cumulative += prob
                    fec_received = fec_packets - k
                if lost_media == 0:
                    delivered = True
                    rtx_rounds = 0
                    fec_recovered = 0
                else:
                    fec_recovered = (
                        lost_media
                        if lost_media < fec_received
                        else fec_received
                    )
                    remaining = lost_media - fec_recovered
                    if remaining == 0:
                        delivered = True
                        rtx_rounds = 0
                    else:
                        # RTX rounds are rare: the reference sampler is
                        # cheap enough off the common path.
                        rtx_rounds = 0
                        while remaining > 0 and rtx_rounds < MAX_RTX_ROUNDS:
                            rtx_rounds += 1
                            remaining = binomial_draw(rng, remaining, p)
                        delivered = remaining == 0
                if cap <= 0.0:
                    delivered = False
                # Consecutive burst losses defeat FEC and
                # retransmission both; the binomial outcome above
                # models *independent* loss, so the burst's
                # run-of-losses character is restored with an explicit
                # kill draw scaled by the burst's frame coverage.
                killed = False
                if (
                    cap > 0.0
                    and media_packets > 0
                    and peak_loss >= BURST_LOSS_FLOOR
                ):
                    kill_p = _BURST_KILL_FACTOR * frame_loss
                    if kill_p > _BURST_KILL_MAX:
                        kill_p = _BURST_KILL_MAX
                    if rng_random() < kill_p:
                        killed = True
                        delivered = False

                record = state.record
                record.media_packets += media_packets
                record.media_bytes += media_bytes
                if media_bytes > 0:
                    state.last_media_time = now
                record.fec_packets += fec_packets
                record.fec_bytes += fec_bytes
                fec_received_total += fec_received
                fec_recovered_total += fec_recovered
                uncovered = lost_media - fec_recovered
                if uncovered > 0:
                    record.rtx_packets += uncovered
                    record.rtx_bytes += uncovered * mtu
                    if qoe_feedback:
                        state.fec.on_uncovered_loss(
                            now, uncovered, media_packets
                        )

                extra = link.extra_delay if have_faults else 0.0
                prop = link.propagation_delay
                srtt_sample = 2.0 * (prop + extra) + (
                    queue_delay if queue_delay < 2.0 else 2.0
                )
                sent = media_bytes + fec_bytes
                offered = sent * 8.0 / dt
                delivered_bytes = media_bytes
                if not delivered:
                    delivered_bytes = media_bytes - uncovered * mtu
                    if delivered_bytes < 0:
                        delivered_bytes = 0
                acked = delivered_bytes + fec_bytes
                delivered_rate = (acked if acked < sent else sent) * 8.0 / dt

                probe_bits = 0.0
                if (
                    cap > 0.0
                    and not state.degraded
                    and not state.feedback_dark
                    and loss_ewma <= _PROBE_MAX_LOSS
                    and queue_delay <= _PROBE_MAX_QUEUE_DELAY
                ):
                    if probe_due:
                        probe_bits = probe_run_bits_f
                    elif (
                        ctrl.rate >= _FRAME_PROBE_MIN_RATE
                        and media_packets + fec_packets
                        >= _FRAME_PROBE_MIN_PACKETS
                    ):
                        # Fast-pacing regime: this frame's own packet
                        # burst doubles as a capacity probe.
                        probe_bits = (
                            (media_packets + fec_packets - 1) * mtu * 8.0
                        )

                # -- SteadyStateGcc.advance + update, inlined --
                # drift: pair(flow-controller) impl
                srtt = ctrl.srtt
                srtt += RTT_SMOOTHING * (srtt_sample - srtt)
                ctrl.srtt = srtt
                offered_avg = ctrl.offered_avg
                if offered_avg <= 0.0:
                    offered_avg = offered
                else:
                    offered_avg += win_alpha * (offered - offered_avg)
                ctrl.offered_avg = offered_avg
                delivered_avg = ctrl.delivered
                if delivered_avg <= 0.0:
                    delivered_avg = delivered_rate
                else:
                    delivered_avg += win_alpha * (
                        delivered_rate - delivered_avg
                    )
                ctrl.delivered = delivered_avg
                if cap > 0.0 and not ctrl.frozen:
                    rate = ctrl.rate
                    burst = peak_loss >= BURST_LOSS_FLOOR
                    if queue_delay > OVERUSE_QUEUE_DELAY or (
                        burst and rng_random() < BURST_OVERUSE_PROBABILITY
                    ):
                        cut_base = (
                            delivered_avg if delivered_avg > 0.0 else rate
                        )
                        cut = BACKOFF_FACTOR * cut_base
                        if cut < rate:
                            rate = cut
                        ctrl._capacity_estimate = (
                            delivered_avg if delivered_avg > 0.0 else rate
                        )
                        ctrl._hold_until = now + HOLD_SECONDS
                    elif now >= ctrl._hold_until:
                        saturated = offered_avg >= 0.7 * rate
                        estimate = ctrl._capacity_estimate
                        if (
                            estimate is not None
                            and near_lo * estimate
                            <= delivered_avg
                            <= near_hi * estimate
                        ):
                            # Additive: about one MTU per response time.
                            denom = srtt + 0.1
                            if denom < 1e-3:
                                denom = 1e-3
                            rate += half_mtu_bits / denom * dt
                        elif saturated:
                            rate *= growth_dt
                        if saturated and delivered_avg > 0.0:
                            rate_cap = 1.5 * delivered_avg + 10_000.0
                            if rate > rate_cap:
                                rate = rate_cap
                        if probe_bits > 0.0:
                            # PROBE_BWE: the burst's arrival rate,
                            # smeared by per-packet jitter on top of
                            # serialization time.
                            estimate_bps = probe_bits / (
                                PROBE_JITTER_SPAN + probe_bits / cap
                            )
                            if estimate_bps > 1.5 * rate:
                                jump = 0.85 * estimate_bps
                                limit = 4.0 * rate
                                rate = jump if jump < limit else limit
                                if ctrl.loss_rate < rate:
                                    ctrl.loss_rate = rate
                    # Loss-based branch, at RTCP report cadence.
                    accum = ctrl._loss_report_accum + dt
                    loss_rate = ctrl.loss_rate
                    while accum >= LOSS_REPORT_INTERVAL:
                        accum -= LOSS_REPORT_INTERVAL
                        fraction = frame_loss
                        if burst and frame_loss <= LOSS_CUT_THRESHOLD:
                            report_packets = (
                                offered * LOSS_REPORT_INTERVAL / _MTU_BITS
                            )
                            if report_packets < 1.0:
                                report_packets = 1.0
                            diluted = (
                                BURST_EXPECTED_LOSSES / report_packets
                            )
                            fraction = (
                                peak_loss
                                if peak_loss <= diluted
                                else diluted
                            )
                        if fraction > LOSS_CUT_THRESHOLD:
                            loss_rate *= 1.0 - 0.5 * fraction
                        elif fraction < LOSS_PROBE_THRESHOLD:
                            loss_rate *= 1.05
                    ctrl._loss_report_accum = accum
                    loss_cap = 2.0 * rate
                    if loss_rate > loss_cap:
                        loss_rate = loss_cap
                    elif loss_rate < gcc_min:
                        loss_rate = gcc_min
                    ctrl.loss_rate = loss_rate
                    if rate < gcc_min:
                        rate = gcc_min
                    elif rate > gcc_max:
                        rate = gcc_max
                    ctrl.rate = rate
                # drift: end

                completion = (
                    (queue_delay if queue_delay < 4.0 else 4.0)
                    + prop
                    + extra
                    + rtx_rounds * srtt
                )
                state.out_delivered = delivered
                state.out_completion = completion
                state.out_killed = killed
                if not single_stream:
                    outcomes[pid] = (
                        delivered, completion, delivered_bytes, srtt, killed
                    )
                step_media += media_bytes
                step_fec += fec_bytes

            # Idle paths still age their queues and rate state.
            for pid, state in path_items:
                if state.stepped:
                    state.stepped = False
                    continue
                cap = state.cap
                if state.link.backlog_bytes > 0.0:
                    state.link.push(dt, cap, 0.0)
                if cap <= 0.0 and not state.feedback_dark:
                    state.ctrl.decay(dt, decay_factor, decay_interval)

            # Track how much of the send budget FEC actually consumed
            # so the next frame's encoder budget discounts it — the
            # packet sender does the same through its bitrate
            # allocator (media = target / (1 + protection)).
            if step_media > 0:
                instant = step_fec / step_media
                protection += _PROTECTION_SMOOTHING * (
                    instant - protection
                )

            if single_stream:
                if fid0 < 0:
                    continue
                # _finish_frame, inlined for the one-stream case (keep
                # in sync): outcomes come from the out_* slots, the
                # killed-share draws preserve the allocation-order RNG
                # sequence, and the rendered record is built directly
                # (same qp record_render would copy from the encoded
                # entry written above).
                stream0.frame_id = fid0 + 1
                size = size0
                completion = 0.0
                any_failed = False
                dropped = False
                for pid, state in send_items:
                    sent_bytes = state.step_bytes
                    if sent_bytes <= 0:
                        continue
                    if state.out_killed:
                        kill_share = (
                            sent_bytes / size if size > 0 else 1.0
                        )
                        if rng_random() < kill_share:
                            # _drop_frame, inlined (keep in sync).
                            self._frame_drops += 1
                            drops_append((now, 0, fid0, "lost"))
                            metrics.frame_drop_count += 1
                            if (
                                not stream0.blocked
                                or stream0.request_at == inf
                            ):
                                stream0.request_at = (
                                    now + _KEYFRAME_RECOVERY_DELAY
                                )
                            stream0.blocked = True
                            dropped = True
                            break
                        state.out_failed = True
                        any_failed = True
                        continue
                    path_completion = state.out_completion
                    if path_completion > completion:
                        completion = path_completion
                    if not state.out_delivered:
                        state.out_failed = True
                        any_failed = True
                if dropped:
                    continue
                if any_failed:
                    best_state: Optional[_PathState] = None
                    best_completion = inf
                    for pid, state in send_items:
                        if state.out_failed or not state.out_delivered:
                            continue
                        if state.out_completion < best_completion:
                            best_state = state
                            best_completion = state.out_completion
                    if best_state is None:
                        # _drop_frame, inlined (keep in sync).
                        self._frame_drops += 1
                        drops_append((now, 0, fid0, "lost"))
                        metrics.frame_drop_count += 1
                        if not stream0.blocked or stream0.request_at == inf:
                            stream0.request_at = (
                                now + _KEYFRAME_RECOVERY_DELAY
                            )
                        stream0.blocked = True
                        continue
                    # Salvage: the failed share rides the best survivor
                    # as priority retransmissions, one extra RTT there.
                    salvage = best_completion + best_state.ctrl.srtt
                    if salvage > completion:
                        completion = salvage
                if completion > max_latency:
                    # _drop_frame, inlined (keep in sync).
                    self._frame_drops += 1
                    drops_append((now, 0, fid0, "late"))
                    metrics.frame_drop_count += 1
                    if not stream0.blocked or stream0.request_at == inf:
                        stream0.request_at = now + _KEYFRAME_RECOVERY_DELAY
                    stream0.blocked = True
                    continue
                if stream0.blocked and not key0:
                    # _drop_frame, inlined: a decode-gap drop is soft —
                    # it never (re-)arms the keyframe-recovery clock.
                    self._frame_drops += 1
                    drops_append((now, 0, fid0, "decode-gap"))
                    metrics.frame_drop_count += 1
                    continue
                render_time = now + completion
                self._received_total += size
                self._window_bytes += size
                self._received_window.append((now, size))
                if stream0.blocked:
                    stream0.blocked = False
                rendered_append(
                    RenderedFrame(
                        ssrc=0,
                        frame_id=fid0,
                        capture_time=now,
                        render_time=render_time,
                        size_bytes=size,
                        is_keyframe=key0,
                        # Per-frame recovery attribution is a
                        # packet-level notion; aggregate FEC stats are
                        # reported via record_fec_stats.
                        fec_recovered=False,
                        qp=qp,
                    )
                )
                last_render = stream0.last_render
                if last_render > neg_inf:
                    ifd_times.append(now)
                    ifd_values.append(render_time - last_render)
                stream0.last_render = render_time
                fcd_times.append(now)
                fcd_values.append(completion)
            else:
                for ssrc, frame_id, size, is_key, allocation in frames:
                    self._finish_frame(
                        now, ssrc, frame_id, size, is_key, allocation,
                        outcomes,
                    )

        self._fec_received = fec_received_total
        self._fec_recovered = fec_recovered_total
        self._next_probe = next_probe
        self._protection = protection
        return self._finalize()

    # -- per-step helpers --------------------------------------------------

    # drift: pair(flow-single-stream) ref
    def _encode_frame(
        self, stream: _StreamState, rate: float, rng: random.Random
    ) -> Tuple[int, bool]:
        config = self.config.encoder_template
        is_key = (
            stream.frame_id == 0
            or stream.frames_since_key >= config.gop_length
            or stream.pending_keyframe
        )
        base = rate / 8.0 / self.config.frame_rate
        if is_key:
            size = base * config.keyframe_size_multiplier
            stream.debt += size - base
            stream.frames_since_key = 0
            stream.pending_keyframe = False
        else:
            repay = min(stream.debt, _KEYFRAME_DEBT_REPAY * base)
            size = base - repay
            stream.debt -= repay
            stream.frames_since_key += 1
        jitter = config.size_jitter
        size *= 1.0 + rng.uniform(-jitter, jitter)
        return max(int(size), _MIN_FRAME_BYTES), is_key

    # drift: pair(flow-single-stream) ref
    def _allocate(
        self,
        size: int,
        is_key: bool,
        weights: Dict[int, float],
        total_weight: float,
        send_paths: List[int],
    ) -> Dict[int, int]:
        """Split one frame's bytes across paths, conserving every byte."""
        if len(send_paths) == 1:
            return {send_paths[0]: size}
        if is_key and self.config.system is SystemKind.CONVERGE:
            # Frame-level control (Algorithm 1): keyframes ride the
            # path with the shortest completion time, not the split.
            best = min(
                send_paths,
                key=lambda pid: self._paths[pid].ctrl.srtt
                + self._paths[pid].link.queue_delay(
                    max(self._paths[pid].ctrl.target(), 1.0)
                ),
            )
            return {best: size}
        allocation: Dict[int, int] = {}
        assigned = 0
        for pid in send_paths[:-1]:
            share = int(size * weights[pid] / total_weight)
            allocation[pid] = share
            assigned += share
        allocation[send_paths[-1]] = size - assigned
        return allocation

    # drift: pair(flow-single-stream) ref
    def _finish_frame(
        self,
        now: float,
        ssrc: int,
        frame_id: int,
        size: int,
        is_key: bool,
        allocation: Dict[int, int],
        outcomes: Dict[int, Tuple[bool, float, int, float, bool]],
    ) -> None:
        metrics = self.metrics
        stream = self._stream_states[ssrc]
        stream.frame_id += 1

        used = [pid for pid, b in allocation.items() if b > 0]
        if not used:
            # Nothing flowed (CM reconnect window): the frame vanishes.
            self._drop_frame(now, ssrc, frame_id, "not-sent")
            return

        completion = 0.0
        failed: List[int] = []
        for pid in used:
            outcome = outcomes.get(pid)
            if outcome is None:
                failed.append(pid)
                continue
            if outcome[4]:
                # A burst-killed slice defeats recovery for the packets
                # it covered.  Whether that takes the whole frame down
                # scales with how much of the frame rode this path —
                # the packet goldens lose roughly one frame per call to
                # a burst, single-path and multipath alike, because a
                # smaller slice gives the burst fewer packets to hit.
                share = allocation[pid] / size if size > 0 else 1.0
                if self._rng.random() < share:
                    self._drop_frame(now, ssrc, frame_id, "lost")
                    return
                failed.append(pid)
                continue
            delivered, path_completion, _, _, _ = outcome
            if path_completion > completion:
                completion = path_completion
            if not delivered:
                failed.append(pid)

        if failed:
            survivors = [
                pid
                for pid in outcomes
                if pid not in failed and outcomes[pid][0]
            ]
            if not survivors:
                self._drop_frame(now, ssrc, frame_id, "lost")
                return
            # Salvage: the failed share rides the best survivor as
            # priority retransmissions, costing one extra RTT there.
            best = min(survivors, key=lambda pid: outcomes[pid][1])
            salvage = outcomes[best][1] + outcomes[best][3]
            if salvage > completion:
                completion = salvage

        if completion > self.config.receiver.max_playout_latency:
            self._drop_frame(now, ssrc, frame_id, "late")
            return

        if stream.blocked and not is_key:
            self._drop_frame(now, ssrc, frame_id, "decode-gap")
            return

        render_time = now + completion
        self._record_receive(now, size)
        if stream.blocked and is_key:
            stream.blocked = False
        frame = RenderedFrame(
            ssrc=ssrc,
            frame_id=frame_id,
            capture_time=now,
            render_time=render_time,
            size_bytes=size,
            is_keyframe=is_key,
            # Per-frame recovery attribution is a packet-level notion;
            # aggregate FEC stats are reported via record_fec_stats.
            fec_recovered=False,
        )
        metrics.record_render(frame)
        if stream.last_render > -math.inf:
            metrics.record_ifd(now, render_time - stream.last_render)
        stream.last_render = render_time
        metrics.record_fcd(now, completion)

    # drift: pair(flow-single-stream) ref
    def _drop_frame(
        self, now: float, ssrc: int, frame_id: int, reason: str
    ) -> None:
        stream = self._stream_states[ssrc]
        hard = reason != "decode-gap"
        self._frame_drops += 1
        self.metrics.record_frame_drop(now, ssrc, frame_id, reason)
        # A hard drop (re-)arms the recovery clock: the receiver burns
        # through NACK retries and the abandon deadline before asking
        # for a keyframe.  Decode-gap drops are downstream casualties
        # of an outage already on the clock.
        if hard and (not stream.blocked or stream.request_at == math.inf):
            stream.request_at = now + _KEYFRAME_RECOVERY_DELAY
        stream.blocked = True

    def _issue_keyframe_requests(self, now: float) -> None:
        """Fire due keyframe requests, honouring the PLI throttle."""
        for ssrc, stream in enumerate(self._stream_states):
            if not stream.blocked or now < stream.request_at:
                continue
            if now - stream.last_request < _KEYFRAME_REQUEST_INTERVAL:
                continue  # throttled: retry once the interval expires
            stream.last_request = now
            stream.request_at = math.inf
            stream.pending_keyframe = True
            self.metrics.record_keyframe_request(now, ssrc)

    def _record_receive(self, now: float, size: int) -> None:
        self._received_total += size
        self._window_bytes += size
        self._received_window.append((now, size))

    def _sample_receive_rate(self, now: float) -> None:
        window = self._received_window
        cutoff = now - 1.0
        drop = 0
        removed = 0
        for time, size in window:
            if time >= cutoff:
                break
            drop += 1
            removed += size
        if drop:
            del window[:drop]
            self._window_bytes -= removed
        self.metrics.receive_rate_series.append(
            now, self._window_bytes * 8 / 1.0
        )

    # -- finish ------------------------------------------------------------

    def _finalize(self) -> CallResult:
        metrics = self.metrics
        for pid, state in self._paths.items():
            metrics.path_sends.setdefault(pid, state.record)
        metrics.received_media_bytes = self._received_total
        metrics.record_fec_stats(self._fec_received, self._fec_recovered)
        summary = summarize(
            metrics,
            duration=self.config.duration,
            num_streams=self.config.num_streams,
            frame_rate=self.config.frame_rate,
            rd_model=self.config.encoder_template.rd_model,
        )
        return CallResult(
            config=self.config, summary=summary, metrics=metrics
        )


def run_flow_call(
    config: CallConfig,
    path_configs: Sequence[PathConfig],
    fault_plan: Optional[FaultPlan] = None,
    churn_scenario: Optional[str] = None,
    force_reference: bool = False,
) -> CallResult:
    """Run one flow-fidelity call; drop-in twin of ``run_call``."""
    call = FlowCall(
        config,
        path_configs,
        fault_plan=fault_plan,
        churn_scenario=churn_scenario,
        force_reference=force_reference,
    )
    return call.run()
