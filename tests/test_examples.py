"""Smoke tests: every example script runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, monkeypatch, capsys):
    # multicamera example takes argv; pin it to 1 stream for speed
    monkeypatch.setattr(sys, "argv", [str(script), "1"])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example prints its results
