"""Tests for the sender session: encode, schedule, FEC, RTX, probing."""

import pytest

from repro.core.api import build_scheduler
from repro.core.config import CallConfig, FecMode, SystemKind
from repro.core.sender import SenderSession
from repro.metrics.collector import MetricsCollector
from repro.net.multipath import PathSet
from repro.net.path import PathConfig
from repro.net.trace import BandwidthTrace
from repro.rtp.packets import PacketType, RtpPacket
from repro.rtp.rtcp import KeyframeRequest, Nack, QoeFeedback
from repro.simulation import Simulator


def make_sender(system=SystemKind.CONVERGE, fec_mode=None, num_streams=1,
                duration=10.0, capacities=(10e6, 10e6)):
    sim = Simulator(seed=2)
    paths = PathSet(
        sim,
        [
            PathConfig(path_id=i, trace=BandwidthTrace.constant(c),
                       propagation_delay=0.02 + 0.01 * i)
            for i, c in enumerate(capacities)
        ],
    )
    kwargs = {}
    if fec_mode is not None:
        kwargs["fec_mode"] = fec_mode
    config = CallConfig(
        system=system,
        duration=duration,
        num_streams=num_streams,
        seed=2,
        **kwargs,
    )
    metrics = MetricsCollector()
    sender = SenderSession(
        sim, paths, config, build_scheduler(config), metrics
    )
    return sim, paths, sender, metrics


class TestSenderPipeline:
    def test_packets_flow_on_camera_ticks(self):
        sim, paths, sender, metrics = make_sender()
        sim.run(until=1.0)
        assert metrics.total_media_packets_sent > 20

    def test_mp_sequence_numbers_contiguous_per_path(self):
        sim, paths, sender, metrics = make_sender()
        seen = {0: [], 1: []}
        for path in paths:
            original = path.on_deliver

            def capture(packet, store=seen):
                store[packet.path_id].append(packet.mp_seq)

            path.on_deliver = capture
        sim.run(until=2.0)
        for path_id, seqs in seen.items():
            if len(seqs) > 1:
                # Delivery jitter may swap adjacent packets, but the
                # assigned numbers must form a contiguous block.
                ordered = sorted(seqs)
                assert ordered == list(
                    range(ordered[0], ordered[0] + len(ordered))
                )

    def test_keyframe_request_forces_keyframe(self):
        sim, paths, sender, metrics = make_sender()
        sim.run(until=0.5)
        keyframes_before = sum(
            1 for rec in metrics.encoded.values() if rec.is_keyframe
        )
        sender.on_rtcp(KeyframeRequest(ssrc=1, path_id=-1))
        sim.run(until=1.0)
        keyframes_after = sum(
            1 for rec in metrics.encoded.values() if rec.is_keyframe
        )
        assert keyframes_after == keyframes_before + 1

    def test_nack_triggers_retransmission(self):
        sim, paths, sender, metrics = make_sender()
        delivered = []
        for path in paths:
            path.on_deliver = delivered.append
        sim.run(until=0.5)
        some_media = next(
            p
            for p in delivered
            if p.packet_type is not PacketType.FEC and p.ssrc == 1
        )
        sender.on_rtcp(Nack(ssrc=1, path_id=-1, seqs=[some_media.seq]))
        sim.run(until=1.0)
        rtx = [
            p for p in delivered
            if p.packet_type is PacketType.RETRANSMISSION
        ]
        assert len(rtx) == 1
        assert rtx[0].original_seq == some_media.seq

    def test_rtx_budget_caps_storms(self):
        sim, paths, sender, metrics = make_sender()
        delivered = []
        for path in paths:
            path.on_deliver = delivered.append
        sim.run(until=1.0)
        media = [p for p in delivered if p.packet_type is not PacketType.FEC]
        sender.on_rtcp(Nack(ssrc=1, path_id=-1, seqs=[p.seq for p in media]))
        sim.run(until=1.5)
        rtx = [p for p in delivered if p.packet_type is PacketType.RETRANSMISSION]
        assert len(rtx) < len(media)

    def test_converge_fec_generated_per_path_under_loss(self):
        sim, paths, sender, metrics = make_sender(fec_mode=FecMode.CONVERGE)
        from repro.rtp.rtcp import ReceiverReport

        def report_loss():
            sender.on_rtcp(
                ReceiverReport(ssrc=0, path_id=0, fraction_lost=0.05)
            )

        from repro.simulation.process import PeriodicProcess
        PeriodicProcess(sim, 0.2, report_loss)
        sim.run(until=3.0)
        assert metrics.total_fec_packets_sent > 0

    def test_no_fec_mode(self):
        sim, paths, sender, metrics = make_sender(fec_mode=FecMode.NONE)
        sim.run(until=1.0)
        assert metrics.total_fec_packets_sent == 0

    def test_qoe_feedback_ignored_by_non_converge(self):
        sim, paths, sender, metrics = make_sender(system=SystemKind.SRTT)
        sender.on_rtcp(QoeFeedback(ssrc=1, path_id=0, alpha=-50, fcd=0.1))
        assert sender.path_manager.adjustment(0) == 0.0

    def test_qoe_feedback_applied_by_converge(self):
        sim, paths, sender, metrics = make_sender()
        sender.on_rtcp(QoeFeedback(ssrc=1, path_id=0, alpha=-5, fcd=0.1))
        assert sender.path_manager.adjustment(0) == -5.0

    def test_multi_stream_creates_all_encoders(self):
        sim, paths, sender, metrics = make_sender(num_streams=3)
        sim.run(until=0.5)
        ssrcs = {key[0] for key in metrics.encoded}
        assert ssrcs == {1, 2, 3}

    def test_capacity_probes_sent_as_padding(self):
        sim, paths, sender, metrics = make_sender()
        padding = []
        original = paths.get(0).on_deliver
        paths.get(0).on_deliver = lambda p: padding.append(p) if p.ssrc == 0 else None
        sim.run(until=5.0)
        assert padding  # PROBE_BWE bursts flow as ssrc-0 padding

    def test_stop_halts_all_processes(self):
        sim, paths, sender, metrics = make_sender()
        sim.run(until=0.5)
        sent_at_stop = metrics.total_media_packets_sent
        sender.stop()
        sim.run(until=2.0)
        # The pacer drains what was already queued, nothing more.
        drained = metrics.total_media_packets_sent
        sim.run(until=3.0)
        assert metrics.total_media_packets_sent == drained
        assert drained - sent_at_stop < 60
