"""Failure-injection integration tests.

Kill paths mid-call, inject loss storms and blackouts, and verify the
system recovers instead of wedging — the robustness claims behind the
paper's "uninterrupted calls" pitch.
"""

import pytest

from repro.core.api import build_call_config, build_scheduler
from repro.core.config import SystemKind
from repro.core.session import ConferenceCall
from repro.experiments.common import run_system
from repro.net.loss import BernoulliLoss, ScheduledLoss
from repro.net.path import PathConfig
from repro.net.trace import BandwidthTrace


def outage_path(path_id, outage_start, outage_end, bps=10e6, delay=0.02,
                loss=None):
    """A path that blacks out completely during [start, end)."""
    trace = BandwidthTrace(
        [(0.0, bps), (outage_start, 0.0), (outage_end, bps)]
    )
    return PathConfig(
        path_id=path_id,
        trace=trace,
        propagation_delay=delay,
        loss_model=loss or BernoulliLoss(0.0),
        name=f"outage-{path_id}",
    )


def steady_path(path_id, bps=10e6, delay=0.02):
    return PathConfig(
        path_id=path_id,
        trace=BandwidthTrace.constant(bps),
        propagation_delay=delay,
        name=f"steady-{path_id}",
    )


class TestPathOutage:
    def test_converge_survives_one_path_blackout(self):
        """One path blacks out for 10 s mid-call; the call must keep a
        usable frame rate by leaning on the surviving path."""
        paths = [steady_path(0), outage_path(1, 10.0, 20.0)]
        result = run_system(SystemKind.CONVERGE, paths, duration=30.0, seed=4)
        summary = result.summary
        assert summary.average_fps > 15
        # The outage window must not be one continuous 10 s freeze.
        assert summary.freeze.total_duration < 8.0

    def test_converge_recovers_after_blackout_ends(self):
        paths = [steady_path(0), outage_path(1, 5.0, 10.0)]
        result = run_system(SystemKind.CONVERGE, paths, duration=40.0, seed=4)
        fps_series = result.metrics.fps_series(40.0)
        tail = fps_series.window(25.0, 40.0)
        assert sum(tail) / len(tail) > 22

    def test_single_path_webrtc_freezes_through_blackout(self):
        """The motivating failure: with only one network, a blackout is
        a freeze — quantifying what multipath buys."""
        paths = [outage_path(0, 10.0, 16.0)]
        result = run_system(SystemKind.WEBRTC, paths, duration=30.0, seed=4)
        assert result.summary.freeze.total_duration > 4.0

    def test_simultaneous_blackout_then_recovery(self):
        """Both networks die together (the paper's double coverage
        hole): the call freezes but must come back afterwards."""
        paths = [outage_path(0, 10.0, 14.0), outage_path(1, 10.0, 14.0)]
        result = run_system(SystemKind.CONVERGE, paths, duration=30.0, seed=4)
        fps_series = result.metrics.fps_series(30.0)
        tail = fps_series.window(22.0, 30.0)
        assert sum(tail) / len(tail) > 18

    def test_permanent_path_death(self):
        """A path that dies and never returns must not poison the call."""
        paths = [steady_path(0), outage_path(1, 8.0, 10_000.0)]
        result = run_system(SystemKind.CONVERGE, paths, duration=30.0, seed=4)
        fps_series = result.metrics.fps_series(30.0)
        tail = fps_series.window(20.0, 30.0)
        assert sum(tail) / len(tail) > 20


class TestLossStorm:
    def test_loss_storm_on_one_path(self):
        """30% loss storm on path 1 for 10 s: QoE dips but recovers."""
        storm = ScheduledLoss([(0.0, 0.002), (10.0, 0.3), (20.0, 0.002)])
        paths = [
            steady_path(0),
            PathConfig(
                path_id=1,
                trace=BandwidthTrace.constant(10e6),
                propagation_delay=0.03,
                loss_model=storm,
                name="stormy",
            ),
        ]
        result = run_system(SystemKind.CONVERGE, paths, duration=35.0, seed=4)
        assert result.summary.average_fps > 15
        fps_series = result.metrics.fps_series(35.0)
        tail = fps_series.window(27.0, 35.0)
        assert sum(tail) / len(tail) > 20

    def test_fec_responds_to_storm(self):
        storm = ScheduledLoss([(0.0, 0.002), (5.0, 0.1), (15.0, 0.002)])
        paths = [
            steady_path(0),
            PathConfig(
                path_id=1,
                trace=BandwidthTrace.constant(10e6),
                propagation_delay=0.03,
                loss_model=storm,
                name="stormy",
            ),
        ]
        result = run_system(SystemKind.CONVERGE, paths, duration=25.0, seed=4)
        assert result.metrics.total_fec_packets_sent > 0


class TestConnectionMigration:
    def test_cm_migrates_on_blackout(self):
        paths = [outage_path(0, 5.0, 10_000.0), steady_path(1, delay=0.03)]
        config = build_call_config(
            SystemKind.WEBRTC_CM, duration=30.0, seed=4, single_path_id=0
        )
        scheduler = build_scheduler(config)
        call = ConferenceCall(config, paths, scheduler)
        result = call.run()
        assert scheduler.migrations >= 1
        assert scheduler.active_path_id == 1
        fps_series = result.metrics.fps_series(30.0)
        tail = fps_series.window(20.0, 30.0)
        assert sum(tail) / len(tail) > 15

    def test_cm_does_not_migrate_without_cause(self):
        paths = [steady_path(0), steady_path(1, delay=0.03)]
        config = build_call_config(
            SystemKind.WEBRTC_CM, duration=20.0, seed=4, single_path_id=0
        )
        scheduler = build_scheduler(config)
        ConferenceCall(config, paths, scheduler).run()
        assert scheduler.migrations == 0
