"""Tests for the array-batched flow backend (repro.flow.batch).

The batch engine's contract is *byte-exactness*: for every cell it
accepts, the payload it produces must equal the scalar runner's
normalized payload byte for byte (compared through canonical_json).
These tests pin that contract on real scenario paths, exercise the
planner's grouping semantics, and check the runner's ``mode="batch"``
integration including the cache and the scalar fallback.
"""

import json

import pytest

from repro.core.config import SystemKind
from repro.experiments import runner as runner_mod
from repro.experiments.cells import (
    ConstantPaths,
    Fidelity,
    ScenarioPaths,
    canonical_json,
    make_cell,
)
from repro.experiments.runner import results_of, run_cells
from repro.flow.batch import (
    _scalar_payload,
    batchable,
    execute_batch,
    execute_cells,
    group_key,
    plan_batches,
)

DURATION = 3.0


def _types_of(value):
    """Structural type fingerprint: catches np scalars and tuples."""
    if isinstance(value, dict):
        return {k: _types_of(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [type(value).__name__] + [_types_of(v) for v in value]
    return type(value).__name__


def _flow_cell(system=SystemKind.CONVERGE, seed=1, scenario="driving", **kw):
    return make_cell(
        ScenarioPaths(scenario),
        system,
        seed=seed,
        duration=DURATION,
        fidelity=Fidelity.FLOW,
        **kw,
    )


class TestBatchable:
    def test_flow_single_stream_is_batchable(self):
        assert batchable(_flow_cell())

    def test_packet_fidelity_is_not(self):
        cell = make_cell(
            ScenarioPaths("driving"),
            SystemKind.CONVERGE,
            seed=1,
            duration=DURATION,
            fidelity=Fidelity.PACKET,
        )
        assert not batchable(cell)

    def test_chaos_cells_are_not(self):
        assert not batchable(_flow_cell(chaos="uplink-death"))

    def test_multi_stream_is_not(self):
        assert not batchable(_flow_cell(num_streams=2))


class TestPlanBatches:
    def test_groups_by_structure_seed_and_label_masked(self):
        # Same system, different seeds/labels -> one group.
        a = _flow_cell(seed=1)
        b = _flow_cell(seed=2, label="second")
        c = _flow_cell(seed=3)
        assert group_key(a) == group_key(b) == group_key(c)
        groups, rest = plan_batches([a, b, c])
        assert groups == [[0, 1, 2]]
        assert rest == []

    def test_groups_split_on_system(self):
        cells = [
            _flow_cell(SystemKind.CONVERGE, seed=1),
            _flow_cell(SystemKind.SRTT, seed=1),
            _flow_cell(SystemKind.CONVERGE, seed=2),
        ]
        groups, rest = plan_batches(cells)
        # First-seen order, input order inside each group.
        assert groups == [[0, 2], [1]]
        assert rest == []

    def test_non_batchable_cells_go_to_rest(self):
        cells = [
            _flow_cell(seed=1),
            _flow_cell(seed=2, chaos="uplink-death"),
            make_cell(
                ScenarioPaths("driving"),
                SystemKind.CONVERGE,
                seed=3,
                duration=DURATION,
                fidelity=Fidelity.PACKET,
            ),
            _flow_cell(seed=4),
        ]
        groups, rest = plan_batches(cells)
        assert groups == [[0, 3]]
        assert rest == [1, 2]


class TestExecuteBatchByteExact:
    @pytest.mark.parametrize(
        "system",
        [SystemKind.CONVERGE, SystemKind.SRTT, SystemKind.WEBRTC],
    )
    def test_matches_scalar_payloads(self, system):
        cells = [_flow_cell(system, seed=seed) for seed in (1, 2, 3)]
        batched = execute_batch(cells)
        assert len(batched) == len(cells)
        for cell, payload in zip(cells, batched):
            scalar = _scalar_payload(cell)
            assert canonical_json(payload) == canonical_json(scalar)

    def test_constant_paths_match_scalar(self):
        cells = [
            make_cell(
                ConstantPaths((8e6, 8e6), (0.02, 0.03), (0.01, 0.0)),
                SystemKind.CONVERGE,
                seed=seed,
                duration=DURATION,
                fidelity=Fidelity.FLOW,
            )
            for seed in (5, 6)
        ]
        batched = execute_batch(cells)
        for cell, payload in zip(cells, batched):
            assert canonical_json(payload) == canonical_json(
                _scalar_payload(cell)
            )

    def test_results_in_input_order(self):
        # Labels survive the round trip in the order the cells went in.
        cells = [
            _flow_cell(seed=seed, label=f"cell-{seed}") for seed in (3, 1, 2)
        ]
        batched = execute_batch(cells)
        assert [p["label"] for p in batched] == ["cell-3", "cell-1", "cell-2"]


class TestExecuteCells:
    def test_mixed_population_matches_scalar(self):
        cells = [
            _flow_cell(SystemKind.CONVERGE, seed=1),
            _flow_cell(SystemKind.SRTT, seed=1),
            _flow_cell(SystemKind.CONVERGE, seed=2, chaos="uplink-death"),
        ]
        payloads = execute_cells(cells)
        assert len(payloads) == len(cells)
        for cell, payload in zip(cells, payloads):
            assert canonical_json(payload) == canonical_json(
                _scalar_payload(cell)
            )


class TestRunnerBatchMode:
    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            run_cells([_flow_cell()], mode="vectorized")

    def test_batch_mode_matches_scalar_mode(self, tmp_path):
        cells = [_flow_cell(seed=seed) for seed in (1, 2)] + [
            # A chaos cell rides along and exercises the scalar fallback
            # inside batch mode.
            _flow_cell(seed=3, chaos="uplink-death")
        ]
        scalar = run_cells(cells, cache=tmp_path / "scalar", jobs=1)
        batch = run_cells(cells, cache=tmp_path / "batch", mode="batch")
        scalar_payloads = [s.data for s in results_of(scalar)]
        batch_payloads = [s.data for s in results_of(batch)]
        assert [canonical_json(p) for p in batch_payloads] == [
            canonical_json(p) for p in scalar_payloads
        ]

    def test_batch_entries_hit_cache_in_scalar_mode(self, tmp_path):
        cells = [_flow_cell(seed=seed) for seed in (1, 2, 3)]
        first = run_cells(cells, cache=tmp_path, mode="batch")
        assert first.stats.executed == 3
        second = run_cells(cells, cache=tmp_path, jobs=1)
        assert second.stats.cache_hits == 3
        assert second.stats.executed == 0
        assert [canonical_json(s.data) for s in results_of(second)] == [
            canonical_json(s.data) for s in results_of(first)
        ]

    def test_chunking_preserves_results(self, tmp_path, monkeypatch):
        # Force tiny chunks so one group spans several execute_batch
        # calls; the outcome must not change.
        monkeypatch.setattr(runner_mod, "_MAX_BATCH_CELLS", 2)
        cells = [_flow_cell(seed=seed) for seed in (1, 2, 3, 4, 5)]
        chunked = run_cells(cells, cache=tmp_path / "a", mode="batch")
        monkeypatch.setattr(runner_mod, "_MAX_BATCH_CELLS", 1024)
        whole = run_cells(cells, cache=tmp_path / "b", mode="batch")
        assert [canonical_json(s.data) for s in results_of(chunked)] == [
            canonical_json(s.data) for s in results_of(whole)
        ]

    @pytest.mark.parametrize("system", list(SystemKind))
    def test_batch_payload_is_json_normalized(self, system):
        # The contract the batch-mode runner relies on (it skips the
        # re-normalization pass): payloads come back already in
        # canonical-JSON normal form — native lists/floats only, no
        # change under a canonical_json round trip.
        payload = execute_batch([_flow_cell(system, seed=7)])[0]
        normalized = json.loads(canonical_json(payload))
        assert normalized == payload
        assert _types_of(payload) == _types_of(normalized)
