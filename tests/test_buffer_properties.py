"""Property-based fuzzing of the receive pipeline.

Hypothesis drives randomized frame delivery — drops, duplication,
reordering, truncation — through the packet buffer + frame buffer +
decoder stack and checks the invariants that must hold under *any*
input:

- rendered frames are strictly increasing in frame id,
- a frame is never rendered unless every one of its packets was
  inserted (no fabricated frames),
- the packet-buffer occupancy never exceeds its configured capacity,
- the pipeline never raises.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.receiver.frame_buffer import FrameBuffer, FrameBufferConfig
from repro.receiver.packet_buffer import PacketBuffer, PacketBufferConfig
from repro.simulation import Simulator
from repro.video.decoder import DecoderModel
from repro.video.frames import VideoFrame
from repro.video.packetizer import Packetizer
from repro.rtp.packets import FRAME_TYPE_DELTA, FRAME_TYPE_KEY


def build_gop(num_frames, gop_length=8, size=2600):
    """A frame sequence with keyframes every ``gop_length``."""
    packetizer = Packetizer(1)
    frames = []
    gop_id = -1
    for frame_id in range(num_frames):
        key = frame_id % gop_length == 0
        if key:
            gop_id += 1
        frames.append(
            packetizer.packetize(
                VideoFrame(
                    frame_id=frame_id,
                    ssrc=1,
                    frame_type=FRAME_TYPE_KEY if key else FRAME_TYPE_DELTA,
                    size_bytes=size,
                    capture_time=frame_id / 30,
                    qp=30,
                    gop_id=gop_id,
                    depends_on=None if key else frame_id - 1,
                )
            )
        )
    return frames


# Per-packet fate: delivered with a reorder slot, duplicated, or lost.
packet_plan = st.lists(
    st.tuples(
        st.integers(0, 99),       # delivery order jitter bucket
        st.sampled_from(["ok", "ok", "ok", "ok", "dup", "lost"]),
    ),
    min_size=1,
    max_size=400,
)


class TestPipelineInvariants:
    @given(plan=packet_plan, capacity=st.integers(16, 128))
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_arbitrary_delivery(self, plan, capacity):
        sim = Simulator(seed=1)
        rendered = []
        decoder = DecoderModel()
        packet_buffer = PacketBuffer(
            1, PacketBufferConfig(capacity_packets=capacity)
        )
        frame_buffer = FrameBuffer(
            sim,
            decoder,
            FrameBufferConfig(wait_timeout=0.2),
            on_render=lambda frame, t: rendered.append(frame.frame_id),
            on_frame_declared_lost=lambda fid: packet_buffer.drop_frame(fid),
        )

        frames = build_gop(12)
        packets = [p for frame in frames for p in frame]
        inserted_by_frame = {}

        # Build the delivery schedule from the plan.
        deliveries = []
        for i, packet in enumerate(packets):
            if i >= len(plan):
                jitter, fate = 0, "ok"
            else:
                jitter, fate = plan[i]
            if fate == "lost":
                continue
            deliveries.append((i + jitter * 3, packet))
            if fate == "dup":
                deliveries.append((i + jitter * 3 + 1, packet))
        deliveries.sort(key=lambda item: item[0])

        def deliver(packet):
            inserted_by_frame.setdefault(packet.frame_id, set()).add(packet.seq)
            result = packet_buffer.insert(packet, sim.now)
            assert packet_buffer.packet_count <= capacity
            if result is not None:
                frame, _ = result
                frame_buffer.insert(frame)

        for slot, packet in deliveries:
            sim.schedule(slot * 0.002, lambda p=packet: deliver(p))
        sim.run(until=5.0)

        # Invariant: strict render order.
        assert rendered == sorted(rendered)
        assert len(rendered) == len(set(rendered))

        # Invariant: no fabricated frames — every rendered frame had
        # all of its packets inserted at least once.
        frame_sizes = {f[0].frame_id: len(f) for f in frames}
        for frame_id in rendered:
            assert len(inserted_by_frame.get(frame_id, ())) == frame_sizes[frame_id]

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_in_order_lossless_delivery_renders_everything(self, data):
        """With no loss and in-order delivery the pipeline must render
        every frame regardless of GOP structure."""
        gop_length = data.draw(st.integers(1, 10))
        num_frames = data.draw(st.integers(1, 30))
        sim = Simulator(seed=1)
        rendered = []
        frame_buffer = FrameBuffer(
            sim,
            DecoderModel(),
            FrameBufferConfig(),
            on_render=lambda frame, t: rendered.append(frame.frame_id),
        )
        packet_buffer = PacketBuffer(1)
        for frame_packets in build_gop(num_frames, gop_length=gop_length):
            for packet in frame_packets:
                result = packet_buffer.insert(packet, sim.now)
                if result is not None:
                    frame_buffer.insert(result[0])
        sim.run(until=1.0)
        assert rendered == list(range(num_frames))
