"""Property-based tests for fleet sharding and batch execution.

Two invariants, fuzzed rather than hand-picked:

- *Shard/merge invariance*: a fleet's statistics are a pure function
  of the spec and the per-cell summaries, so a cache sharded into N
  pieces and merged back in *any* order yields byte-identical fleet
  reports — and byte-identical cache entries — to the unsharded run.
  This is what makes `repro fleet` splittable across machines.
- *Mode invariance*: for any small population of flow cells,
  ``run_cells(mode="batch")`` and ``mode="scalar"`` produce identical
  payloads, byte for byte.
"""

import json
import shutil
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SystemKind
from repro.experiments.cache import ResultCache
from repro.experiments.cells import (
    Fidelity,
    ScenarioPaths,
    canonical_json,
    make_cell,
)
from repro.experiments.fleet import (
    FleetSpec,
    expand_fleet,
    fleet_statistics,
)
from repro.experiments.runner import results_of, run_cells

DURATION = 2.0

# One small fleet, executed once and reused by every shard/merge
# example (the property varies the partitioning, not the simulation).
_BASE_SPEC = FleetSpec(
    scenarios=("driving",),
    systems=(SystemKind.CONVERGE, SystemKind.WEBRTC),
    seeds=(1, 2, 3),
    duration=DURATION,
    fidelity=Fidelity.FLOW,
)
_BASE_CACHE: Path = Path(tempfile.mkdtemp(prefix="fleet-prop-base-"))
_BASE_REPORT = None


def _base():
    global _BASE_REPORT
    if _BASE_REPORT is None:
        report = run_cells(
            expand_fleet(_BASE_SPEC), cache=_BASE_CACHE, mode="batch"
        )
        assert report.ok()
        _BASE_REPORT = report
    return _BASE_REPORT


def _cache_bytes(root: Path) -> dict:
    store = ResultCache(root)
    return {e.key: store.path_for(e.key).read_bytes() for e in store.entries()}


@given(
    shards=st.integers(min_value=1, max_value=4),
    order_seed=st.randoms(use_true_random=False),
)
@settings(max_examples=10, deadline=None)
def test_shard_merge_order_invariance(shards, order_seed):
    base = _base()
    baseline = [
        g.payload()
        for g in fleet_statistics(_BASE_SPEC, base.summaries())
    ]
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        source = ResultCache(_BASE_CACHE)
        dirs = [tmp_path / f"shard-{i}" for i in range(shards)]
        counts = source.shard(dirs)
        assert sum(counts) == _BASE_SPEC.cell_count
        order_seed.shuffle(dirs)
        merged = ResultCache(tmp_path / "merged")
        result = merged.merge(dirs)
        assert result["merged"] == _BASE_SPEC.cell_count
        # Bytes survive the shard -> merge round trip exactly.
        assert _cache_bytes(tmp_path / "merged") == _cache_bytes(_BASE_CACHE)
        # And the fleet report computed from the merged cache is
        # byte-identical to the unsharded baseline.
        report = run_cells(
            expand_fleet(_BASE_SPEC), cache=merged, jobs=1
        )
        assert report.stats.cache_hits == _BASE_SPEC.cell_count
        regrouped = [
            g.payload()
            for g in fleet_statistics(_BASE_SPEC, report.summaries())
        ]
        assert canonical_json(regrouped) == canonical_json(baseline)


def teardown_module(module):
    shutil.rmtree(_BASE_CACHE, ignore_errors=True)


@given(
    seeds=st.lists(
        st.integers(min_value=1, max_value=50),
        min_size=1,
        max_size=4,
        unique=True,
    ),
    systems=st.lists(
        st.sampled_from([SystemKind.CONVERGE, SystemKind.SRTT]),
        min_size=1,
        max_size=2,
        unique=True,
    ),
)
@settings(max_examples=6, deadline=None)
def test_batch_and_scalar_modes_are_byte_identical(seeds, systems):
    cells = [
        make_cell(
            ScenarioPaths("driving"),
            system,
            seed=seed,
            duration=DURATION,
            fidelity=Fidelity.FLOW,
        )
        for system in systems
        for seed in seeds
    ]
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        scalar = run_cells(cells, cache=tmp_path / "scalar", jobs=1)
        batch = run_cells(cells, cache=tmp_path / "batch", mode="batch")
        scalar_payloads = [s.data for s in results_of(scalar)]
        batch_payloads = [s.data for s in results_of(batch)]
        assert canonical_json(batch_payloads) == canonical_json(
            scalar_payloads
        )
        assert json.loads(canonical_json(batch_payloads)) == batch_payloads
