"""Tests for the frame buffer and decode ordering."""

import pytest

from repro.receiver.frame_buffer import FrameBuffer, FrameBufferConfig
from repro.rtp.packets import FRAME_TYPE_DELTA, FRAME_TYPE_KEY
from repro.simulation import Simulator
from repro.video.decoder import AssembledFrame, DecoderModel


def frame(frame_id, key=False, gop_id=0):
    return AssembledFrame(
        frame_id=frame_id,
        ssrc=1,
        frame_type=FRAME_TYPE_KEY if key else FRAME_TYPE_DELTA,
        gop_id=gop_id,
        size_bytes=1000,
        capture_time=frame_id / 30,
        has_pps=True,
        has_sps=key,
    )


class Harness:
    def __init__(self, config=None):
        self.sim = Simulator()
        self.rendered = []
        self.keyframe_requests = 0
        self.lost = []
        self.buffer = FrameBuffer(
            self.sim,
            DecoderModel(),
            config or FrameBufferConfig(),
            on_render=lambda f, t: self.rendered.append((f.frame_id, t)),
            on_keyframe_needed=self._on_keyframe,
            on_frame_declared_lost=self.lost.append,
        )

    def _on_keyframe(self):
        self.keyframe_requests += 1

    def rendered_ids(self):
        return [fid for fid, _ in self.rendered]


class TestInOrderDecode:
    def test_decodes_sequential_frames(self):
        h = Harness()
        h.buffer.insert(frame(0, key=True))
        for i in range(1, 5):
            h.buffer.insert(frame(i))
        h.sim.run(until=1.0)
        assert h.rendered_ids() == [0, 1, 2, 3, 4]

    def test_waits_for_keyframe_first(self):
        h = Harness()
        h.buffer.insert(frame(1))
        h.sim.run(until=1.0)
        assert h.rendered == []
        assert h.buffer.awaiting_keyframe

    def test_reordered_frames_decode_in_order(self):
        h = Harness()
        h.buffer.insert(frame(0, key=True))
        h.buffer.insert(frame(2))
        assert h.rendered_ids() == [0]
        h.buffer.insert(frame(1))
        assert h.rendered_ids() == [0, 1, 2]

    def test_ifd_tracked(self):
        h = Harness()
        h.buffer.insert(frame(0, key=True))
        h.sim.schedule(0.05, lambda: h.buffer.insert(frame(1)))
        h.sim.run(until=0.1)
        assert h.buffer.last_ifd == pytest.approx(0.05)

    def test_render_time_includes_decode_delay(self):
        config = FrameBufferConfig(decode_delay=0.02)
        h = Harness(config)
        h.buffer.insert(frame(0, key=True))
        assert h.rendered[0][1] == pytest.approx(0.02)

    def test_fec_recovery_penalty(self):
        config = FrameBufferConfig(decode_delay=0.01, fec_decode_penalty=0.03)
        h = Harness(config)
        recovered = frame(0, key=True)
        recovered.fec_recovered = True
        h.buffer.insert(recovered)
        assert h.rendered[0][1] == pytest.approx(0.04)


class TestLossHandling:
    def test_missing_frame_declared_lost_after_timeout(self):
        config = FrameBufferConfig(wait_timeout=0.2)
        h = Harness(config)
        h.buffer.insert(frame(0, key=True))
        h.buffer.insert(frame(2))  # frame 1 missing
        h.sim.run(until=1.0)
        assert 1 in h.lost
        assert h.keyframe_requests >= 1

    def test_late_frame_before_timeout_decodes(self):
        config = FrameBufferConfig(wait_timeout=0.5)
        h = Harness(config)
        h.buffer.insert(frame(0, key=True))
        h.buffer.insert(frame(2))
        h.sim.schedule(0.1, lambda: h.buffer.insert(frame(1)))
        h.sim.run(until=1.0)
        assert h.rendered_ids() == [0, 1, 2]
        assert h.lost == []

    def test_keyframe_jump_over_gap(self):
        h = Harness()
        h.buffer.insert(frame(0, key=True))
        h.buffer.insert(frame(1))
        # frames 2-9 lost; a new GOP keyframe arrives
        h.buffer.insert(frame(10, key=True, gop_id=1))
        assert h.rendered_ids() == [0, 1, 10]
        h.buffer.insert(frame(11, gop_id=1))
        assert h.rendered_ids() == [0, 1, 10, 11]

    def test_keyframe_jump_drops_stale_frames(self):
        h = Harness()
        h.buffer.insert(frame(0, key=True))
        h.buffer.insert(frame(3))  # blocked: 1-2 missing
        h.buffer.insert(frame(4))
        before = h.buffer.stats.frames_dropped
        h.buffer.insert(frame(10, key=True, gop_id=1))
        assert h.rendered_ids()[-1] == 10
        assert h.buffer.stats.frames_dropped > before

    def test_deltas_dropped_while_awaiting_keyframe(self):
        config = FrameBufferConfig(wait_timeout=0.1)
        h = Harness(config)
        h.buffer.insert(frame(0, key=True))
        h.buffer.insert(frame(2))  # 1 missing -> timeout -> awaiting key
        h.sim.run(until=0.5)
        dropped_before = h.buffer.stats.frames_dropped
        h.buffer.insert(frame(3))
        assert h.buffer.stats.frames_dropped == dropped_before + 1

    def test_obsolete_frame_dropped(self):
        h = Harness()
        h.buffer.insert(frame(0, key=True))
        h.buffer.insert(frame(1))
        h.buffer.insert(frame(1))  # already decoded
        assert h.buffer.stats.frames_dropped == 1

    def test_purge_when_full(self):
        config = FrameBufferConfig(capacity_frames=4, wait_timeout=10.0)
        h = Harness(config)
        h.buffer.insert(frame(0, key=True))
        # frame 1 missing; 2..8 accumulate past capacity
        for i in range(2, 9):
            h.buffer.insert(frame(i))
        assert h.buffer.stats.purges > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameBufferConfig(capacity_frames=1)
        with pytest.raises(ValueError):
            FrameBufferConfig(wait_timeout=0.0)
