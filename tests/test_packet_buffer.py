"""Tests for the bounded packet buffer (frame assembly + eviction)."""

import pytest

from repro.receiver.packet_buffer import PacketBuffer, PacketBufferConfig
from repro.rtp.packets import FRAME_TYPE_DELTA, FRAME_TYPE_KEY, PacketType, RtpPacket
from repro.video.packetizer import Packetizer
from repro.video.frames import VideoFrame


def make_frame(frame_id, size=3000, key=False, gop_id=0):
    return VideoFrame(
        frame_id=frame_id,
        ssrc=1,
        frame_type=FRAME_TYPE_KEY if key else FRAME_TYPE_DELTA,
        size_bytes=size,
        capture_time=frame_id / 30,
        qp=30,
        gop_id=gop_id,
        depends_on=None if key else frame_id - 1,
    )


@pytest.fixture
def packetizer():
    return Packetizer(1)


class TestFrameAssembly:
    def test_frame_completes_when_all_packets_arrive(self, packetizer):
        buffer = PacketBuffer(1)
        packets = packetizer.packetize(make_frame(0, key=True))
        result = None
        for i, packet in enumerate(packets):
            result = buffer.insert(packet, now=0.01 * i)
        assert result is not None
        frame, arrivals = result
        assert frame.frame_id == 0
        assert frame.has_pps and frame.has_sps
        assert len(arrivals) == len(packets)

    def test_incomplete_frame_not_delivered(self, packetizer):
        buffer = PacketBuffer(1)
        packets = packetizer.packetize(make_frame(0, key=True))
        for packet in packets[:-1]:
            assert buffer.insert(packet, now=0.0) is None
        assert buffer.frame_pending(0)

    def test_out_of_order_completion(self, packetizer):
        buffer = PacketBuffer(1)
        packets = packetizer.packetize(make_frame(0, key=True))
        result = None
        for packet in reversed(packets):
            result = buffer.insert(packet, now=0.0) or result
        assert result is not None

    def test_duplicates_counted_and_ignored(self, packetizer):
        buffer = PacketBuffer(1)
        packets = packetizer.packetize(make_frame(0, key=True))
        buffer.insert(packets[0], now=0.0)
        buffer.insert(packets[0], now=0.0)
        assert buffer.stats.duplicates == 1

    def test_rtx_counts_under_original_seq(self, packetizer):
        buffer = PacketBuffer(1)
        packets = packetizer.packetize(make_frame(0, key=True))
        lost = packets[2]
        for packet in packets:
            if packet is not lost:
                buffer.insert(packet, now=0.0)
        rtx = lost.clone_for_retransmission(new_seq=5000, now=1.0)
        result = buffer.insert(rtx, now=1.0)
        assert result is not None

    def test_fcd_fields(self, packetizer):
        buffer = PacketBuffer(1)
        packets = packetizer.packetize(make_frame(0, key=True))
        for i, packet in enumerate(packets):
            result = buffer.insert(packet, now=1.0 + 0.01 * i)
        frame, _ = result
        assert frame.first_arrival == 1.0
        assert frame.completed_at == pytest.approx(1.0 + 0.01 * (len(packets) - 1))

    def test_media_bytes_exclude_parameter_sets(self, packetizer):
        buffer = PacketBuffer(1)
        frame = make_frame(0, size=2400, key=True)
        packets = packetizer.packetize(frame)
        for packet in packets:
            result = buffer.insert(packet, now=0.0)
        assembled, _ = result
        assert assembled.size_bytes == 2400

    def test_completed_frame_is_dead(self, packetizer):
        buffer = PacketBuffer(1)
        packets = packetizer.packetize(make_frame(0, key=True))
        for packet in packets:
            buffer.insert(packet, now=0.0)
        assert buffer.is_dead(0)
        # late duplicate for a finished frame is ignored
        assert buffer.insert(packets[0], now=1.0) is None


class TestEviction:
    def test_oldest_incomplete_frame_evicted_on_overflow(self, packetizer):
        buffer = PacketBuffer(1, PacketBufferConfig(capacity_packets=8))
        # Two incomplete frames of 3 packets each (missing last packet),
        # then a third frame pushes past capacity.
        frames = [packetizer.packetize(make_frame(i, size=2400, key=(i == 0))) for i in range(4)]
        for packets in frames[:3]:
            for packet in packets[:-1]:
                buffer.insert(packet, now=0.0)
        # capacity 8: inserting frame 3 must evict frame 0's packets
        for packet in frames[3][:-1]:
            buffer.insert(packet, now=0.1)
        assert buffer.stats.evicted_frames >= 1
        assert buffer.is_dead(0)

    def test_packets_for_evicted_frame_dropped(self, packetizer):
        buffer = PacketBuffer(1, PacketBufferConfig(capacity_packets=8))
        frames = [packetizer.packetize(make_frame(i, size=2400, key=(i == 0))) for i in range(4)]
        held_back = frames[0][-1]
        for packets in frames:
            for packet in packets[:-1]:
                buffer.insert(packet, now=0.0)
        assert buffer.is_dead(0)
        assert buffer.insert(held_back, now=1.0) is None

    def test_drop_frame_explicit(self, packetizer):
        buffer = PacketBuffer(1)
        packets = packetizer.packetize(make_frame(0, key=True))
        buffer.insert(packets[0], now=0.0)
        assert buffer.drop_frame(0)
        assert buffer.is_dead(0)
        assert buffer.packet_count == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PacketBufferConfig(capacity_packets=2)

    def test_packet_count_tracks_inserts_and_completions(self, packetizer):
        buffer = PacketBuffer(1)
        packets = packetizer.packetize(make_frame(0, key=True))
        for packet in packets[:-1]:
            buffer.insert(packet, now=0.0)
        assert buffer.packet_count == len(packets) - 1
        buffer.insert(packets[-1], now=0.0)
        assert buffer.packet_count == 0
