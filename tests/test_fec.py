"""Tests for XOR FEC codec and both FEC controllers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fec import (
    ConvergeFecController,
    WebRtcFecController,
    XorCodec,
    XorFecGroup,
    webrtc_protection_factor,
)

payloads_strategy = st.lists(
    st.binary(min_size=1, max_size=64), min_size=2, max_size=10
)


class TestXorCodec:
    def test_recovers_missing_payload(self):
        payloads = [b"hello", b"world!!", b"abc"]
        fec = XorCodec.encode(payloads)
        for missing_index in range(3):
            received = list(payloads)
            received[missing_index] = None
            recovered = XorCodec.recover(received, fec)
            assert recovered[missing_index].startswith(payloads[missing_index])

    @given(payloads_strategy, st.data())
    def test_recovery_property(self, payloads, data):
        index = data.draw(st.integers(0, len(payloads) - 1))
        fec = XorCodec.encode(payloads)
        received = list(payloads)
        received[index] = None
        recovered = XorCodec.recover(received, fec)
        original = payloads[index]
        # Recovery pads with zeros to the longest payload; the prefix
        # must match the original exactly.
        assert recovered[index][: len(original)] == original
        assert all(b == 0 for b in recovered[index][len(original):])

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            XorCodec.encode([])

    def test_rejects_double_loss(self):
        fec = XorCodec.encode([b"a", b"b", b"c"])
        with pytest.raises(ValueError):
            XorCodec.recover([None, None, b"c"], fec)

    def test_rejects_zero_loss(self):
        fec = XorCodec.encode([b"a", b"b"])
        with pytest.raises(ValueError):
            XorCodec.recover([b"a", b"b"], fec)


class TestXorFecGroup:
    def test_recovers_single_missing(self):
        group = XorFecGroup(fec_seq=100, protected_seqs=[1, 2, 3])
        group.mark_media_received(1)
        group.mark_media_received(3)
        group.mark_fec_received()
        assert group.try_recover() == 2
        assert group.missing_seqs == []

    def test_no_recovery_without_fec(self):
        group = XorFecGroup(fec_seq=100, protected_seqs=[1, 2])
        group.mark_media_received(1)
        assert group.try_recover() is None

    def test_no_recovery_with_two_missing(self):
        group = XorFecGroup(fec_seq=100, protected_seqs=[1, 2, 3])
        group.mark_media_received(1)
        group.mark_fec_received()
        assert group.try_recover() is None

    def test_recovery_is_idempotent(self):
        group = XorFecGroup(fec_seq=100, protected_seqs=[1, 2])
        group.mark_media_received(1)
        group.mark_fec_received()
        assert group.try_recover() == 2
        assert group.try_recover() is None

    def test_ignores_unprotected_seqs(self):
        group = XorFecGroup(fec_seq=100, protected_seqs=[1, 2])
        group.mark_media_received(99)
        assert group.received_seqs == set()


class TestWebRtcTable:
    def test_zero_at_negligible_loss(self):
        assert webrtc_protection_factor(0.0) == 0.0
        assert webrtc_protection_factor(0.001) == 0.0

    def test_aggressive_at_one_percent(self):
        # Fig. 12: ~40 FEC packets per 100 media at 1% loss.
        assert webrtc_protection_factor(0.01) == pytest.approx(0.40)

    def test_monotone_in_loss(self):
        losses = [0.005, 0.01, 0.03, 0.05, 0.10, 0.5]
        factors = [webrtc_protection_factor(l) for l in losses]
        assert factors == sorted(factors)

    def test_keyframe_doubling(self):
        base = webrtc_protection_factor(0.05)
        assert webrtc_protection_factor(0.05, is_keyframe=True) == pytest.approx(
            min(2 * base, 1.0)
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            webrtc_protection_factor(1.5)


class TestWebRtcFecController:
    def test_no_fec_without_loss(self):
        controller = WebRtcFecController()
        assert controller.num_fec_packets(20, is_keyframe=False) == 0

    def test_fec_count_tracks_table(self):
        controller = WebRtcFecController()
        for _ in range(20):
            controller.on_loss_report(0.01)
        count = controller.num_fec_packets(100, is_keyframe=False)
        assert count == pytest.approx(40, abs=5)

    def test_loss_smoothing(self):
        controller = WebRtcFecController()
        controller.on_loss_report(0.10)
        assert 0 < controller.aggregate_loss < 0.10

    def test_rejects_bad_loss(self):
        controller = WebRtcFecController()
        with pytest.raises(ValueError):
            controller.on_loss_report(-0.1)

    def test_zero_media_packets(self):
        assert WebRtcFecController().num_fec_packets(0, False) == 0


class TestConvergeFecController:
    def test_no_fec_below_threshold(self):
        controller = ConvergeFecController()
        assert controller.num_fec_packets(0, 100, 0.0, now=0.0) == 0
        assert controller.num_fec_packets(0, 100, 0.001, now=0.0) == 0

    def test_fec_proportional_to_loss(self):
        controller = ConvergeFecController()
        low = sum(
            controller.num_fec_packets(0, 100, 0.01, now=i * 0.03)
            for i in range(100)
        )
        controller_high = ConvergeFecController()
        high = sum(
            controller_high.num_fec_packets(0, 100, 0.05, now=i * 0.03)
            for i in range(100)
        )
        assert high == pytest.approx(5 * low, rel=0.2)

    def test_fractional_carry_accumulates(self):
        """Tiny rounds below the round-up threshold eventually emit
        FEC via the carry instead of flooring at 0 forever."""
        controller = ConvergeFecController()
        total = sum(
            controller.num_fec_packets(0, 10, 0.005, now=i * 0.033)
            for i in range(100)
        )
        # exact would be 10*0.005*100 = 5
        assert 3 <= total <= 8

    def test_round_up_protects_exposed_rounds(self):
        """A round with meaningful loss exposure gets at least one FEC
        packet even when the proportional count floors to zero."""
        controller = ConvergeFecController()
        assert controller.num_fec_packets(0, 20, 0.02, now=0.0) == 1

    def test_nack_raises_beta(self):
        controller = ConvergeFecController()
        controller.num_fec_packets(0, 30, 0.02, now=0.0)
        before = controller.beta(0)
        controller.on_nack(0, 10, now=0.01)
        assert controller.beta(0) > before

    def test_beta_decays(self):
        controller = ConvergeFecController()
        controller.num_fec_packets(0, 30, 0.02, now=0.0)
        controller.on_nack(0, 10, now=0.01)
        peak = controller.beta(0)
        controller.num_fec_packets(0, 30, 0.02, now=10.0)
        assert controller.beta(0) < peak

    def test_beta_capped(self):
        controller = ConvergeFecController()
        controller.num_fec_packets(0, 5, 0.02, now=0.0)
        controller.on_nack(0, 1000, now=0.01)
        assert controller.beta(0) <= 4.0

    def test_never_more_fec_than_media(self):
        controller = ConvergeFecController()
        controller.on_nack(0, 100, now=0.0)
        assert controller.num_fec_packets(0, 5, 0.2, now=0.1) <= 5

    def test_protection_fraction_capped(self):
        controller = ConvergeFecController()
        controller.num_fec_packets(0, 100, 0.2, now=0.0)
        controller.on_nack(0, 500, now=0.01)
        total = sum(
            controller.num_fec_packets(0, 100, 0.2, now=0.02 + i * 0.033)
            for i in range(30)
        )
        assert total <= 0.27 * 100 * 30

    def test_paths_are_independent(self):
        controller = ConvergeFecController()
        controller.num_fec_packets(0, 30, 0.02, now=0.0)
        controller.on_nack(0, 20, now=0.01)
        assert controller.beta(1) == 1.0

    def test_rejects_bad_loss(self):
        controller = ConvergeFecController()
        with pytest.raises(ValueError):
            controller.num_fec_packets(0, 10, 2.0, now=0.0)
