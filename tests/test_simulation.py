"""Tests for the discrete-event simulation core."""

import pytest

from repro.simulation import (
    PeriodicProcess,
    RandomStreams,
    SimProfiler,
    Simulator,
)
from repro.simulation.events import _COMPACT_MIN_ENTRIES, EventQueue
from repro.simulation.random import derive_seed


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("first"))
        queue.push(1.0, lambda: order.append("second"))
        queue.pop().callback()
        queue.pop().callback()
        assert order == ["first", "second"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_cancel_then_peek_empty(self):
        queue = EventQueue()
        only = queue.push(1.0, lambda: None)
        only.cancel()
        assert queue.peek_time() is None
        assert queue.live == 0

    def test_live_excludes_cancelled(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(4)]
        events[1].cancel()
        assert len(queue) == 4
        assert queue.live == 3

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert queue.live == 1

    def test_cancel_after_pop_does_not_corrupt_live(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop() is event
        event.cancel()  # already out of the heap: must not count
        assert queue.live == 1
        assert queue.pop() is not None

    def test_compaction_trims_heap_and_preserves_order(self):
        queue = EventQueue()
        events = [
            queue.push(float(i), lambda i=i: i)
            for i in range(2 * _COMPACT_MIN_ENTRIES)
        ]
        # Cancelling just over half the entries crosses the compaction
        # threshold; the heap should shrink to the survivors.
        for event in events[: _COMPACT_MIN_ENTRIES + 1]:
            event.cancel()
        assert len(queue) == _COMPACT_MIN_ENTRIES - 1
        assert queue.live == len(queue)
        times = []
        while True:
            event = queue.pop()
            if event is None:
                break
            times.append(event.time)
        assert times == sorted(times)
        assert len(times) == _COMPACT_MIN_ENTRIES - 1

    def test_compaction_below_min_entries_is_lazy(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        for event in events[:8]:
            event.cancel()
        # Under the size floor nothing is rebuilt; cancelled entries
        # stay until popped over.
        assert len(queue) == 10
        assert queue.live == 2

    def test_explicit_compact_resets_counter(self):
        queue = EventQueue()
        keep = queue.push(5.0, lambda: None)
        for i in range(5):
            queue.push(float(i), lambda: None).cancel()
        queue.compact()
        assert len(queue) == 1
        assert queue.live == 1
        assert queue.pop() is keep

    def test_reschedule_reuses_event_object(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append("tick"))
        assert queue.pop() is event
        event.dispatch()
        again = queue.reschedule(event, 2.0)
        assert again is event
        assert queue.peek_time() == 2.0
        queue.pop().dispatch()
        assert fired == ["tick", "tick"]

    def test_reschedule_while_queued_rejected(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        with pytest.raises(RuntimeError):
            queue.reschedule(event, 2.0)

    def test_rescheduled_event_ties_break_by_rearm_order(self):
        queue = EventQueue()
        order = []
        event = queue.push(0.0, lambda: order.append("rearmed"))
        queue.pop()
        queue.push(1.0, lambda: order.append("fresh"))
        queue.reschedule(event, 1.0)
        queue.pop().dispatch()
        queue.pop().dispatch()
        assert order == ["fresh", "rearmed"]


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_event_at_until_boundary_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [2]

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_stop_halts_dispatch(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == []

    def test_stop_mid_event_keeps_queue_resumable(self):
        sim = Simulator()
        fired = []

        def stop_and_record():
            fired.append(sim.now)
            sim.stop()

        sim.schedule(1.0, stop_and_record)
        sim.schedule(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]
        assert sim.pending_events() == 1
        # A second run picks up exactly where the stop left off.
        sim.run()
        assert fired == [1.0, 2.0]

    def test_schedule_at_exactly_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(sim.now))
        assert sim.run(until=2.0) == 2.0
        assert fired == [2.0]

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        assert sim.run(until=5.0) == 5.0
        assert sim.now == 5.0

    def test_pending_events_reports_live_only(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        doomed = sim.schedule(2.0, lambda: None)
        doomed.cancel()
        assert sim.pending_events() == 1

    def test_events_dispatched_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None).cancel()
        sim.schedule(3.0, lambda: None)
        sim.run()
        assert sim.events_dispatched == 2

    def test_schedule_with_arg_passes_it(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "payload")
        sim.schedule_at(2.0, seen.append, None)
        sim.run()
        assert seen == ["payload", None]

    def test_simulator_reschedule_rearms_event(self):
        sim = Simulator()
        ticks = []
        holder = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 3:
                holder["event"] = sim.reschedule(holder["event"], 1.0)

        holder["event"] = sim.schedule(1.0, tick)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_profile_hook_sees_every_dispatch(self):
        sim = Simulator()
        seen = []
        fired = []

        def hook(event):
            seen.append(event.time)
            event.dispatch()

        sim.profile_hook = hook
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert seen == [1.0, 2.0]
        assert fired == ["a", "b"]


class TestPeriodicProcess:
    def test_fires_at_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 0.5, lambda: ticks.append(sim.now))
        sim.run(until=2.0)
        assert ticks == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now), start_delay=0.25)
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_cancels_future_ticks(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 0.5, lambda: ticks.append(sim.now))
        sim.schedule(1.1, process.stop)
        sim.run(until=3.0)
        assert ticks == [0.0, 0.5, 1.0]
        assert not process.running

    def test_interval_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda: None)


class TestSimProfiler:
    def test_accounts_events_and_buckets(self):
        sim = Simulator()
        profiler = SimProfiler()
        profiler.attach(sim)
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b"]
        report = profiler.report()
        assert report["events_total"] == 2
        assert report["seconds_total"] >= 0.0
        # Test-local lambdas don't belong to any repro subsystem.
        assert set(report["subsystems"]) == {"other"}
        assert report["subsystems"]["other"]["events"] == 2

    def test_periodic_ticks_attributed_to_wrapped_callback(self):
        sim = Simulator()
        profiler = SimProfiler()
        profiler.attach(sim)
        ticks = []
        PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.0)
        report = profiler.report()
        # The tick callback lives in this test module, not in
        # repro.simulation: the profiler must unwrap PeriodicProcess.
        assert set(report["subsystems"]) == {"other"}
        assert report["subsystems"]["other"]["events"] == len(ticks)

    def test_wrap_section_times_and_detaches(self):
        class Worker:
            def compute(self, value):
                return value * 2

        worker = Worker()
        original = worker.compute
        profiler = SimProfiler()
        profiler.wrap_section("work", worker, "compute")
        assert worker.compute(21) == 42
        report = profiler.report()
        assert report["sections"]["work"]["calls"] == 1
        assert report["sections"]["work"]["seconds"] >= 0.0
        profiler.detach_sections()
        assert worker.compute == original

    def test_attach_call_profiles_a_real_run(self):
        from repro.core.api import build_call_config, run_call
        from repro.core.config import SystemKind
        from repro.experiments.common import scenario_paths

        duration, seed = 2.0, 1
        profiler = SimProfiler()
        baseline = run_call(
            build_call_config(SystemKind("converge"), duration=duration,
                              seed=seed),
            scenario_paths("driving", duration, seed),
        )
        profiled = run_call(
            build_call_config(SystemKind("converge"), duration=duration,
                              seed=seed),
            scenario_paths("driving", duration, seed),
            profiler=profiler,
        )
        # Profiling must not perturb behaviour.
        assert profiled.summary.average_fps == baseline.summary.average_fps
        assert (
            profiled.summary.frames_rendered == baseline.summary.frames_rendered
        )
        report = profiler.report()
        assert report["events_total"] > 0
        assert "paths" in report["subsystems"]
        assert report["sections"]["scheduler.assign"]["calls"] > 0
        assert profiler.format_report().startswith("subsystem")


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("loss")
        b = RandomStreams(7).stream("loss")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent_of_creation_order(self):
        one = RandomStreams(7)
        two = RandomStreams(7)
        one.stream("x")
        draw_one = one.stream("y").random()
        draw_two = two.stream("y").random()
        assert draw_one == draw_two

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_stream_is_cached(self):
        streams = RandomStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_fork_derives_new_seed(self):
        root = RandomStreams(7)
        child = root.fork("exp1")
        assert child.seed != root.seed
        assert child.seed == RandomStreams(7).fork("exp1").seed

    def test_derive_seed_is_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(2, "x")
